"""Benchmark E-ABL — design-choice ablation sweeps (DESIGN.md section 5).

Not a paper artifact: quantifies the sensitivity of the co-design to the
selection threshold, pipeline depth, sub-kernel granularity, CPU-fallback
bound and pool size.
"""

from repro.experiments import ablations

from conftest import emit


def test_ablations(benchmark):
    """All five ablation sweeps on AlexNet."""
    text = benchmark.pedantic(ablations.run_all, rounds=1, iterations=1)
    emit("ablations", text)
