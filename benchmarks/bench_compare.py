"""Benchmark E-CMP — cross-architecture comparison: every model on each rival hardware backend."""

from repro.experiments import compare

from conftest import emit


def test_compare(benchmark):
    """One full cross-backend comparison grid."""
    result = benchmark.pedantic(compare.run, rounds=1, iterations=1)
    emit("compare", compare.format_result(result))
