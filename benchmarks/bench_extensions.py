"""Benchmark E-EXT — extension studies beyond the paper's evaluation.

Multi-stack scaling and the training-vs-inference contrast (see
repro/experiments/extensions.py).
"""

from repro.experiments import extensions

from conftest import emit


def test_extensions(benchmark):
    """Multi-stack sweep + inference contrast."""
    text = benchmark.pedantic(extensions.main, rounds=1, iterations=1)
    emit("extensions", text)
