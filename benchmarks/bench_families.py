"""Benchmark E-FAM — modern workload families: transformer attention, GNN message passing, sparse embedding."""

import pytest

from repro.experiments import families

from conftest import emit


@pytest.mark.parametrize("model", families.FAMILY_MODELS)
def test_families(benchmark, model):
    """One family's full characterization: profile, classification,
    per-backend placement, fault sweep."""
    result = benchmark.pedantic(
        families.run, kwargs={"models": (model,)}, rounds=1, iterations=1
    )
    emit(f"families_{model}", families.format_result(result))
