"""Benchmark E-FAULTS — regenerates the fault-resilience sweep."""

from repro.experiments import faults

from conftest import emit


def test_faults(benchmark):
    """One full regeneration of the fault-resilience artifact."""
    result = benchmark.pedantic(faults.run, rounds=1, iterations=1)
    emit("faults", faults.format_result(result))
