"""Benchmark E-FIG10 — regenerates Figure 10: comparison with Neurocube."""

from repro.experiments import fig10

from conftest import emit


def test_fig10(benchmark):
    """One full regeneration of the Figure 10 artifact."""
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    emit("fig10", fig10.format_result(result))
