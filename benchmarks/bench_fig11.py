"""Benchmark E-FIG11 — regenerates Figure 11: 3D-memory frequency scaling."""

from repro.experiments import fig11

from conftest import emit


def test_fig11(benchmark):
    """One full regeneration of the Figure 11 artifact."""
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    emit("fig11", fig11.format_result(result))
