"""Benchmark E-FIG12 — regenerates Figure 12: programmable-PIM scaling (1P/4P/16P)."""

from repro.experiments import fig12

from conftest import emit


def test_fig12(benchmark):
    """One full regeneration of the Figure 12 artifact."""
    result = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    emit("fig12", fig12.format_result(result))
