"""Benchmark E-FIG13 — regenerates Figure 13: execution time with/without RC and OP."""

from repro.experiments import fig13

from conftest import emit


def test_fig13(benchmark):
    """One full regeneration of the Figure 13 artifact."""
    result = benchmark.pedantic(fig13.run, rounds=1, iterations=1)
    emit("fig13", fig13.format_result(result))
