"""Benchmark E-FIG14 — regenerates Figure 14: energy with/without RC and OP."""

from repro.experiments import fig14

from conftest import emit


def test_fig14(benchmark):
    """One full regeneration of the Figure 14 artifact."""
    result = benchmark.pedantic(fig14.run, rounds=1, iterations=1)
    emit("fig14", fig14.format_result(result))
