"""Benchmark E-FIG15 — regenerates Figure 15: fixed-PIM utilization with RC and OP."""

from repro.experiments import fig15

from conftest import emit


def test_fig15(benchmark):
    """One full regeneration of the Figure 15 artifact."""
    result = benchmark.pedantic(fig15.run, rounds=1, iterations=1)
    emit("fig15", fig15.format_result(result))
