"""Benchmark E-FIG16 — regenerates Figure 16: mixed-workload co-running.

The six co-run cases (CNN x {LSTM, Word2vec}) are by far the heaviest
simulations in the suite (merged multi-tenant graphs); the benchmark runs
them once and reports the improvement over sequential execution.
"""

from repro.experiments import fig16

from conftest import emit


def test_fig16(benchmark):
    """One full regeneration of the Figure 16 artifact (six co-run cases)."""
    result = benchmark.pedantic(fig16.run, rounds=1, iterations=1)
    emit("fig16", fig16.format_result(result))
    for case in result.values():
        assert case.improvement > 0.4, f"{case.cnn}+{case.non_cnn} regressed"
