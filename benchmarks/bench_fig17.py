"""Benchmark E-FIG17 — regenerates Figure 17: EDP and power vs PIM frequency."""

from repro.experiments import fig17

from conftest import emit


def test_fig17(benchmark):
    """One full regeneration of the Figure 17 artifact."""
    result = benchmark.pedantic(fig17.run, rounds=1, iterations=1)
    emit("fig17", fig17.format_result(result))
