"""Benchmark E-FIG2 — regenerates Figure 2: four categories of NN training operations."""

from repro.experiments import fig2

from conftest import emit


def test_fig2(benchmark):
    """One full regeneration of the Figure 2 artifact."""
    result = benchmark.pedantic(fig2.run, rounds=1, iterations=1)
    emit("fig2", fig2.format_result(result))
