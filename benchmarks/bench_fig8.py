"""Benchmark E-FIG8 — regenerates Figure 8: execution-time breakdown, 5 models x 5 configs."""

from repro.experiments import fig8

from conftest import emit


def test_fig8(benchmark):
    """One full regeneration of the Figure 8 artifact."""
    result = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    emit("fig8", fig8.format_result(result))
