"""Benchmark E-FIG9 — regenerates Figure 9: normalized dynamic energy."""

from repro.experiments import fig9

from conftest import emit


def test_fig9(benchmark):
    """One full regeneration of the Figure 9 artifact."""
    result = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    emit("fig9", fig9.format_result(result))
