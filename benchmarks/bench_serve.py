"""Benchmark SERVE — ``repro serve`` request latency and throughput.

An in-process daemon (fresh throwaway cache) answers one cold request
(real simulation) and then a warm load of identical requests served from
the report store.  Reported: cold latency, warm p50/p99 (milliseconds),
and sustained warm requests per second.  ``tools/check_perf.py`` gates
the warm p99 against the budget committed in ``BENCH_summary.json``.
"""

import os
import tempfile

from repro.serve import start_in_thread
from repro.serve.bench import run_load

from conftest import emit

REQUEST = {"model": "alexnet", "steps": 2}
WARM_ITERATIONS = 50


def _measure() -> dict:
    prior = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        handle = start_in_thread(workers=2)
        try:
            cold = run_load(handle.host, handle.port, REQUEST, iterations=1)
            warm = run_load(
                handle.host, handle.port, REQUEST, iterations=WARM_ITERATIONS
            )
        finally:
            handle.stop()
            if prior is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = prior
    return {"cold": cold, "warm": warm}


def test_serve(benchmark):
    """Cold + warm serving profile of one daemon."""
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    cold, warm = result["cold"], result["warm"]
    emit(
        "serve",
        "\n".join(
            [
                f"cold request        {cold['mean_ms']:10.1f} ms",
                f"warm p50            {warm['p50_ms']:10.2f} ms",
                f"warm p99            {warm['p99_ms']:10.2f} ms",
                f"warm throughput     {warm['rps']:10.1f} req/s "
                f"({WARM_ITERATIONS} requests)",
            ]
        ),
    )
    assert warm["p99_ms"] > 0 and warm["rps"] > 0
