"""Benchmark E-TABLE1 — regenerates Table I: operation profiling of VGG-19, AlexNet and DCGAN."""

from repro.experiments import table1

from conftest import emit


def test_table1(benchmark):
    """One full regeneration of the Table I artifact."""
    result = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    emit("table1", table1.format_result(result))
