"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation.  The rendered rows are printed (visible with ``pytest -s``) and
saved under ``benchmarks/results/`` so a benchmark run leaves the full set
of paper-shaped artifacts on disk.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print and persist one experiment's rendered output."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
