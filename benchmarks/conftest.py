"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation.  The rendered rows are printed (visible with ``pytest -s``) and
saved under ``benchmarks/results/`` so a benchmark run leaves the full set
of paper-shaped artifacts on disk.

The session additionally writes ``BENCH_summary.json`` at the repository
root: per-figure wall-clock plus simulation-cache hit/miss deltas, so a
timing regression (or an unexpectedly cold cache) is visible at a glance.
"""

from __future__ import annotations

import pathlib
import time

from repro.experiments.common import write_atomic
from repro.sim import cache as sim_cache
from repro.sim.results import canonical_dumps

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SUMMARY_PATH = pathlib.Path(__file__).parent.parent / "BENCH_summary.json"

_records: dict = {}
_starts: dict = {}


def pytest_runtest_setup(item):
    _starts[item.nodeid] = (time.perf_counter(), sim_cache.stats())


def pytest_runtest_teardown(item):
    start = _starts.pop(item.nodeid, None)
    if start is None:
        return
    t0, stats0 = start
    stats1 = sim_cache.stats()
    _records[item.nodeid] = {
        "wall_clock_s": round(time.perf_counter() - t0, 4),
        "cache": {k: stats1[k] - stats0[k] for k in stats1},
    }


def pytest_sessionfinish(session, exitstatus):
    if not _records:
        return
    summary = {
        "total_wall_clock_s": round(
            sum(r["wall_clock_s"] for r in _records.values()), 4
        ),
        "cache_totals": {
            k: sum(r["cache"][k] for r in _records.values())
            for k in next(iter(_records.values()))["cache"]
        },
        "figures": _records,
    }
    # the perf budgets (tools/check_perf.py --update) live in the same
    # file; a benchmark run must not erase them
    try:
        import json

        prior = json.loads(SUMMARY_PATH.read_text())
        for budget_key in ("experiment_summary", "serve"):
            if budget_key in prior:
                summary[budget_key] = prior[budget_key]
    except (OSError, ValueError):
        pass
    write_atomic(SUMMARY_PATH, canonical_dumps(summary, indent=2) + "\n")


def emit(name: str, text: str) -> None:
    """Print and persist one experiment's rendered output (atomically —
    a kill mid-benchmark never leaves a truncated artifact)."""
    write_atomic(RESULTS_DIR / f"{name}.txt", text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
