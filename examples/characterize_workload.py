#!/usr/bin/env python
"""Workload characterization: reproduce the paper's Table I / Figure 2 story.

Profiles one training step on the host CPU with inter-operation parallelism
disabled (section II-A), prints the top compute-intensive and
memory-intensive operation types, classifies every type into the paper's
four categories, and shows which operations the runtime would select for
offloading.

Usage::

    python examples/characterize_workload.py [model] [coverage]
"""

import sys

from repro.nn.models import available_models, build_model
from repro.profiling import OpCategory, WorkloadProfiler, classify_workload
from repro.runtime import select_candidates


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "vgg-19"
    coverage = float(sys.argv[2]) if len(sys.argv) > 2 else 0.90
    if model not in available_models():
        raise SystemExit(f"unknown model {model!r}")

    graph = build_model(model)
    profile = WorkloadProfiler().profile(graph)

    print(f"== {model}: one training step on the CPU ==")
    print(f"step time {profile.step_time_s:.2f} s, "
          f"main-memory traffic {profile.total_memory_bytes / 1e9:.1f} GB\n")

    print(f"{'Top CI ops':28s} {'time%':>7s} {'#inv':>5s}   "
          f"{'Top MI ops':28s} {'mem%':>7s} {'#inv':>5s}")
    for ci, mi in zip(profile.top_compute(5), profile.top_memory(5)):
        print(f"{ci.op_type:28s} {ci.time_share:7.1%} {ci.invocations:5d}   "
              f"{mi.op_type:28s} {mi.memory_share:7.1%} {mi.invocations:5d}")

    flops = {}
    for op in graph.ops:
        flops[op.op_type] = flops.get(op.op_type, 0) + op.cost.flops
    classes = classify_workload(profile, flops)
    print("\nFigure-2 categories:")
    for category in OpCategory:
        members = sorted(t for t, c in classes.items() if c is category)
        if members:
            print(f"  class {int(category)} ({category.name.lower()}):")
            print(f"    {', '.join(members)}")

    selection = select_candidates(profile, coverage=coverage)
    print(f"\nOffload candidates at x={coverage:.0%} "
          f"(global-index selection, section III-C):")
    for ranked in selection.ranked:
        marker = "*" if ranked.op_type in selection.candidate_types else " "
        print(f"  {marker} {ranked.op_type:32s} global_index="
              f"{ranked.global_index:3d}  time={ranked.time_s:8.3f}s  "
              f"mem={ranked.memory_bytes / 1e9:7.2f}GB")
    print(f"\nselected types cover {selection.time_coverage:.1%} of step time")


if __name__ == "__main__":
    main()
