#!/usr/bin/env python
"""Compare one model across the paper's five system configurations.

The Figure-8/9 view for a single workload: per-step time broken into
operation / data-movement / synchronization, plus dynamic energy normalized
to Hetero PIM.

Usage::

    python examples/compare_configurations.py [model]
"""

import sys

from repro.api import list_models, simulate
from repro.baselines import CONFIGURATION_ORDER


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "dcgan"
    if model not in list_models():
        raise SystemExit(f"unknown model {model!r}")

    print(f"== {model} on the five evaluated configurations ==\n")

    results = {
        name: simulate(model, name).result for name in CONFIGURATION_ORDER
    }

    hetero = results["hetero-pim"]
    header = (f"{'config':12s} {'step time':>12s} {'op':>10s} {'dm':>10s} "
              f"{'sync':>10s} {'E_dyn (J)':>10s} {'E norm':>7s} {'vs hetero':>10s}")
    print(header)
    print("-" * len(header))
    for name, r in results.items():
        b = r.step_breakdown
        print(
            f"{name:12s} {r.step_time_s * 1e3:10.2f} ms "
            f"{b.operation_s * 1e3:8.2f} ms {b.data_movement_s * 1e3:8.2f} ms "
            f"{b.sync_s * 1e3:8.2f} ms "
            f"{r.step_dynamic_energy_j:10.3f} "
            f"{r.step_dynamic_energy_j / hetero.step_dynamic_energy_j:6.2f}x "
            f"{r.step_time_s / hetero.step_time_s:9.2f}x"
        )

    print(
        f"\nHetero PIM fixed-function utilization: "
        f"{hetero.fixed_pim_utilization:.0%} "
        f"(pool of 444 vector multiplier/adder pairs)"
    )
    print(
        f"Speedup over CPU {results['cpu'].step_time_s / hetero.step_time_s:.1f}x, "
        f"over Progr PIM {results['prog-pim'].step_time_s / hetero.step_time_s:.1f}x, "
        f"over Fixed PIM {results['fixed-pim'].step_time_s / hetero.step_time_s:.1f}x"
    )


if __name__ == "__main__":
    main()
