#!/usr/bin/env python
"""Bring your own model: build a custom network and train it on hetero PIM.

Demonstrates the public graph-building API: a small residual CNN is
assembled with :class:`~repro.nn.layers.GraphBuilder`, the backward pass
and optimizer ops are generated automatically, and the result runs through
the same runtime as the paper's models.

Usage::

    python examples/custom_model.py
"""

from repro.nn.layers import GraphBuilder
from repro.runtime import HeterogeneousPimRuntime


def build_tiny_resnet(batch_size: int = 16):
    """An 8-layer residual CNN over CIFAR-shaped inputs."""
    b = GraphBuilder("tiny-resnet", batch_size=batch_size, dataset="cifar-10")
    x = b.input((batch_size, 32, 32, 3))
    x = b.conv2d(x, 32, (3, 3), name="stem")

    for i, channels in enumerate((32, 64)):
        stride = 1 if channels == x.shape[-1] else 2
        shortcut = x
        if stride != 1 or x.shape[-1] != channels:
            shortcut = b.conv2d(
                x, channels, (1, 1), stride=(stride, stride),
                activation=None, name=f"block{i}/proj",
            )
        h = b.conv2d(x, channels, (3, 3), stride=(stride, stride),
                     name=f"block{i}/conv1")
        h = b.conv2d(h, channels, (3, 3), activation=None,
                     name=f"block{i}/conv2")
        h = b.add(h, shortcut, name=f"block{i}/residual")
        x = b.relu(h, name=f"block{i}/out")

    x = b.avg_pool(x, (x.shape[1], x.shape[2]), (1, 1), name="gap")
    x = b.flatten(x)
    x = b.dense(x, 10, activation=None, name="logits")
    b.softmax_loss(x, 10)
    print(f"model has {b.num_parameters() / 1e3:.0f}k trainable parameters")
    return b.finish()


def main() -> None:
    graph = build_tiny_resnet()
    print(f"graph: {graph.num_ops} ops "
          f"({dict(graph.invocation_counts().most_common(5))} ...)\n")

    runtime = HeterogeneousPimRuntime()
    result = runtime.train(graph)
    print(f"step time on Hetero PIM: {result.step_time_s * 1e3:.3f} ms")
    print(f"dynamic energy:          {result.step_dynamic_energy_j * 1e3:.1f} mJ")
    print(f"fixed-PIM utilization:   {result.fixed_pim_utilization:.0%}")
    print(f"offloaded op types:      "
          f"{sorted(runtime.last_selection.candidate_types)}")


if __name__ == "__main__":
    main()
