#!/usr/bin/env python
"""Logic-die design-space exploration (paper section IV-D).

Derives the fixed-function PIM budget from the area/power envelope (the
paper's 444 units), sweeps the programmable/fixed trade-off and the pool
size, and shows the thermal-aware bank placement.

Usage::

    python examples/design_space.py [model]
"""

import sys

from repro.config import default_config
from repro.experiments.ablations import sweep_fixed_units
from repro.hardware.area import LogicDieBudget, explore_prog_pim_tradeoff
from repro.hardware.hmc import StackGeometry
from repro.hardware.placement import place_fixed_pims
from repro.nn.models import available_models


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    if model not in available_models():
        raise SystemExit(f"unknown model {model!r}")
    cfg = default_config()
    budget = LogicDieBudget()

    print("== logic-die budget ==")
    print(f"  die area {budget.die_area_mm2:.0f} mm^2, "
          f"{budget.compute_area_fraction:.0%} available for PIM logic "
          f"({budget.compute_area_mm2:.1f} mm^2), "
          f"power envelope {budget.power_budget_w:.0f} W")

    print("\n== programmable/fixed trade-off (constant area) ==")
    print(f"  {'ARM PIMs':>8s} {'fixed units':>12s} {'area mm^2':>10s} "
          f"{'power W':>8s}")
    for point in explore_prog_pim_tradeoff(
        budget, cfg.fixed_pim, cfg.prog_pim, max_prog_pims=16
    ):
        if point.n_prog_pims in (1, 2, 4, 8, 16):
            print(f"  {point.n_prog_pims:8d} {point.n_fixed_units:12d} "
                  f"{point.area_used_mm2:10.1f} {point.power_used_w:8.1f}")

    print("\n== thermal-aware placement of the 444 units over 32 banks ==")
    geometry = StackGeometry(cfg.stack)
    placement = place_fixed_pims(geometry, cfg.fixed_pim.n_units)
    for row in range(geometry.rows):
        cells = []
        for col in range(geometry.cols):
            bank = geometry.bank(row * geometry.cols + col)
            cells.append(
                f"{placement.units_in(bank.index):3d}{bank.zone.value[0]}"
            )
        print("  " + " ".join(cells))
    print("  (c=corner, e=edge, c/e banks carry more units than center)")

    print(f"\n== data-locality mapping of {model}'s MAC work (sec IV-D) ==")
    from repro.experiments.common import cached_graph
    from repro.runtime.locality import analyze_locality
    report = analyze_locality(cached_graph(model), placement)
    print(f"  {len(report.assignments)} pool-eligible operations")
    print(f"  {report.colocated_unit_fraction:.0%} of granted unit-slots sit "
          f"in their input data's bank")
    print(f"  {report.fully_colocated_ops} ops fully co-located; bank load "
          f"imbalance {report.load_imbalance:.2f}x")

    print(f"\n== pool-size sweep on {model} (Hetero PIM) ==")
    sweep = sweep_fixed_units(model, unit_counts=(111, 222, 444, 888))
    print(f"  {'units':>6s} {'step time':>12s} {'E_dyn (J)':>10s} {'util':>6s}")
    for units, r in sweep.items():
        print(f"  {units:6d} {r.step_time_s * 1e3:10.2f} ms "
              f"{r.step_dynamic_energy_j:10.3f} "
              f"{r.fixed_pim_utilization:6.0%}")
    print("\nthe area-derived 444-unit point sits at the knee: fewer units "
          "saturate,\nmore units go idle (diminishing returns).")


if __name__ == "__main__":
    main()
