#!/usr/bin/env python
"""PLL frequency sweep: the paper's Figure 11 / Figure 17 study.

Scales the PIM working frequency (1x / 2x / 4x of the 312.5 MHz HMC 2.0
clock) and reports step time, energy-delay product and average power
against the GPU reference — reproducing the finding that higher PIM
frequency is *more* energy-efficient and overtakes the GPU.

Usage::

    python examples/frequency_sweep.py [model]
"""

import sys

from repro.api import list_models, simulate
from repro.config import FREQUENCY_SCALES


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    if model not in list_models():
        raise SystemExit(f"unknown model {model!r}")

    gpu = simulate(model, "gpu").result
    print(f"== {model}: PIM frequency scaling (GPU reference: "
          f"{gpu.step_time_s * 1e3:.2f} ms, {gpu.average_power_w:.0f} W) ==\n")

    print(f"{'freq':>5s} {'step time':>12s} {'vs GPU':>8s} {'EDP (J*s)':>12s} "
          f"{'power (W)':>10s} {'GPU power ratio':>16s}")
    best = None
    for scale in FREQUENCY_SCALES:
        r = simulate(model, "hetero-pim", frequency_scale=scale).result
        edp = r.edp()
        if best is None or edp < best[1]:
            best = (scale, edp)
        print(
            f"{scale:4.0f}x {r.step_time_s * 1e3:10.2f} ms "
            f"{gpu.step_time_s / r.step_time_s:7.2f}x {edp:12.5f} "
            f"{r.average_power_w:10.1f} "
            f"{gpu.average_power_w / r.average_power_w:15.2f}x"
        )

    print(f"\nmost energy-efficient point: {best[0]:.0f}x "
          f"(paper section VI-G finds 4x for all five models)")


if __name__ == "__main__":
    main()
