#!/usr/bin/env python
"""Mixed-workload co-running: the paper's Figure 16 / section VI-F study.

Co-runs a CNN model (full heterogeneous system) with a non-CNN tenant
(restricted to CPU + programmable PIM "when they are idle") and compares
against sequential time-sharing of the machine.

Usage::

    python examples/mixed_workload.py [cnn] [non_cnn]
"""

import sys

from repro.experiments.fig16 import run_case
from repro.nn.models import CNN_MODELS, NON_CNN_MODELS


def main() -> None:
    cnn = sys.argv[1] if len(sys.argv) > 1 else "inception-v3"
    non_cnn = sys.argv[2] if len(sys.argv) > 2 else "lstm"
    if cnn not in CNN_MODELS:
        raise SystemExit(f"cnn must be one of {CNN_MODELS}")
    if non_cnn not in NON_CNN_MODELS:
        raise SystemExit(f"non_cnn must be one of {NON_CNN_MODELS}")

    print(f"== co-running {cnn} (full system) with {non_cnn} "
          f"(CPU + programmable PIM only) ==\n")
    case = run_case(cnn, non_cnn)

    k = case.non_cnn_steps_per_cnn_step
    print(f"solo {cnn} step:                {case.solo_cnn_s * 1e3:9.2f} ms")
    print(f"solo {non_cnn} step (restricted): {case.solo_non_cnn_s * 1e3:9.2f} ms")
    print(f"tenant rate: {k} {non_cnn} steps per {cnn} step\n")
    print(f"sequential (time-shared):       {case.sequential_s * 1e3:9.2f} ms")
    print(f"co-run (this work):             {case.corun_s * 1e3:9.2f} ms")
    print(f"improvement:                    {case.improvement:+9.0%}")
    print("\npaper section VI-F reports 69%-83% across its six co-run cases;")
    print("the win comes from filling CPU/programmable-PIM idle periods that")
    print("dependences within a single model would otherwise leave unused.")


if __name__ == "__main__":
    main()
