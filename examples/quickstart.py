#!/usr/bin/env python
"""Quickstart: train one AlexNet step on the heterogeneous PIM system.

Builds the training-step graph, runs the full runtime pipeline (device
initialization, binary generation, step-1 profiling, candidate selection,
dynamic scheduling) and prints what the paper's evaluation would report for
this run.

Usage::

    python examples/quickstart.py [model]

``model`` defaults to ``alexnet``; any of the seven paper workloads works
(vgg-19, alexnet, dcgan, resnet-50, inception-v3, lstm, word2vec).
"""

import sys

from repro.nn.models import available_models, build_model
from repro.runtime import HeterogeneousPimRuntime


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    if model not in available_models():
        raise SystemExit(
            f"unknown model {model!r}; choose from {available_models()}"
        )

    print(f"Building one training step of {model} ...")
    graph = build_model(model)
    print(f"  {graph.num_ops} operations, batch size {graph.batch_size}, "
          f"dataset {graph.dataset}")

    runtime = HeterogeneousPimRuntime()
    print("\nPlatform (extended OpenCL mapping):")
    for device, pes in runtime.device_summary().items():
        print(f"  {device:16s} {pes:4d} processing elements")

    print("\nCompiling kernels (binary generation, paper Figure 4) ...")
    kernels = runtime.compile(graph)
    n_fixed = sum(1 for k in kernels.values() if len(k.binaries) > 1)
    print(f"  {len(kernels)} kernels, {n_fixed} with PIM binaries")

    print("\nTraining (profile -> select -> schedule -> simulate) ...")
    result = runtime.train(graph)
    selection = runtime.last_selection
    print(f"  offload candidates: {sorted(selection.candidate_types)}")
    print(f"  selection covers {selection.time_coverage:.0%} of step time "
          f"(target {selection.target_coverage:.0%})")

    b = result.step_breakdown
    print(f"\nPer-step results on {result.config_name}:")
    print(f"  step time          {result.step_time_s * 1e3:10.2f} ms")
    print(f"    operation        {b.operation_s * 1e3:10.2f} ms")
    print(f"    data movement    {b.data_movement_s * 1e3:10.2f} ms")
    print(f"    synchronization  {b.sync_s * 1e3:10.2f} ms")
    print(f"  dynamic energy     {result.step_dynamic_energy_j:10.2f} J")
    print(f"  average power      {result.average_power_w:10.1f} W")
    print(f"  fixed-PIM utilization {result.fixed_pim_utilization:7.0%}")


if __name__ == "__main__":
    main()
