#!/usr/bin/env python
"""Visualize the runtime's schedule as an ASCII Gantt chart.

Runs one model on Hetero PIM with timeline recording enabled and renders
where every operation executed — the CPU lanes, the programmable PIM, and
the fixed-function pool — making the operation pipeline's backfilling
visible.

Usage::

    python examples/schedule_timeline.py [model] [width]
"""

import sys

from repro.baselines import build_configuration
from repro.nn.models import available_models, build_model
from repro.sim.simulation import Simulation


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "dcgan"
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 100
    if model not in available_models():
        raise SystemExit(f"unknown model {model!r}")

    config, policy = build_configuration("hetero-pim")
    sim = Simulation(build_model(model), policy, config, record_timeline=True)
    result = sim.run()
    timeline = sim.timeline

    print(f"== {model} on {result.config_name}: "
          f"{result.step_time_s * 1e3:.2f} ms/step ==\n")
    print(timeline.render(width=width))

    print("\nper-device load:")
    for device in ("cpu", "prog", "fixed"):
        entries = timeline.on_device(device)
        if not entries:
            continue
        busy = timeline.device_busy_s(device)
        peak = timeline.concurrency_profile(device)
        print(f"  {device:6s} {len(entries):5d} tasks, "
              f"{busy * 1e3:9.2f} ms task-time, peak concurrency {peak}")
    print(f"\nfixed-pool utilization over its duty window: "
          f"{result.fixed_pim_utilization:.0%}")


if __name__ == "__main__":
    main()
