#!/usr/bin/env python
"""Visualize the runtime's schedule as an ASCII Gantt chart.

Runs one model on Hetero PIM with observability enabled and renders where
every operation executed — the CPU lanes, the programmable PIM, and the
fixed-function pool — making the operation pipeline's backfilling visible.
Optionally exports the same schedule as a Chrome/Perfetto trace.

Usage::

    python examples/schedule_timeline.py [model] [width] [trace.json]
"""

import sys

from repro.api import list_models, simulate


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "dcgan"
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 100
    trace_out = sys.argv[3] if len(sys.argv) > 3 else None
    if model not in list_models():
        raise SystemExit(f"unknown model {model!r}")

    report = simulate(model, "hetero-pim", observe=True)
    result = report.result
    timeline = report.timeline

    print(f"== {model} on {result.config_name}: "
          f"{result.step_time_s * 1e3:.2f} ms/step ==\n")
    print(timeline.render(width=width))

    print("\nper-device load:")
    busy_fraction = report.device_busy_fraction
    queue_wait = report.queue_wait_s
    for device in ("cpu", "prog", "fixed"):
        entries = timeline.on_device(device)
        if not entries:
            continue
        busy = timeline.device_busy_s(device)
        peak = timeline.concurrency_profile(device)
        print(f"  {device:6s} {len(entries):5d} tasks, "
              f"{busy * 1e3:9.2f} ms task-time, peak concurrency {peak}, "
              f"busy {busy_fraction.get(device, 0.0):4.0%}, "
              f"queued {queue_wait.get(device, 0.0) * 1e3:8.2f} ms")
    print(f"\nfixed-pool utilization over its duty window: "
          f"{result.fixed_pim_utilization:.0%}")

    if trace_out:
        n = report.save_trace(trace_out)
        print(f"\nwrote {n} Chrome Trace events to {trace_out} "
              f"(open in ui.perfetto.dev)")


if __name__ == "__main__":
    main()
