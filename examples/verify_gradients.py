#!/usr/bin/env python
"""Semantic validation of the graph substrate: numeric gradient checking.

The simulator treats graphs as cost structures, but the same graphs are
numerically executable: this example builds a small CNN, runs its forward
AND builder-generated backward operations on real numpy arrays, and
verifies every parameter gradient against central finite differences of
the loss — demonstrating that the tape-based backward construction in
``repro.nn.layers`` computes mathematically correct gradients.

Usage::

    python examples/verify_gradients.py
"""

from repro.nn.layers import GraphBuilder
from repro.nn.numeric import NumericExecutor, check_gradients, random_feeds


def build_small_cnn():
    b = GraphBuilder("verify-cnn", batch_size=2)
    x = b.input((2, 8, 8, 3))
    h = b.conv2d(x, 4, (3, 3), stride=(2, 2), name="conv1")
    h2 = b.conv2d(h, 4, (3, 3), activation=None, name="conv2")
    h = b.relu(b.add(h, h2, name="residual"), name="relu_res")
    h = b.max_pool(h, (2, 2), (2, 2), name="pool")
    branch = b.conv2d(h, 2, (1, 1), name="branch")
    h = b.concat([h, branch], name="concat")
    h = b.flatten(h)
    h = b.dense(h, 16, name="fc1")
    logits = b.dense(h, 5, activation=None, name="logits")
    b.softmax_loss(logits, 5)
    return b.finish()


def main() -> None:
    graph = build_small_cnn()
    print(f"graph: {graph.num_ops} ops "
          f"(incl. {graph.invocation_counts()['Conv2DBackpropFilter']} "
          f"Conv2DBackpropFilter, residual AddN merge, concat Slices)")

    feeds = random_feeds(graph, seed=42)
    executor = NumericExecutor(graph)
    env = executor.run(feeds)
    print(f"forward+backward executed numerically; "
          f"loss = {executor.loss(env):.4f}")

    print("\nchecking every parameter gradient against finite differences:")
    errors = check_gradients(graph, feeds, samples_per_param=4, seed=42)
    for name in sorted(errors):
        print(f"  {name:20s} max relative error {errors[name]:.2e}")
    print("\nall gradients verified — the backward graphs the simulator "
          "schedules\nare the mathematically correct ones.")


if __name__ == "__main__":
    main()
