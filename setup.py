"""Legacy setup shim: enables editable installs on toolchains without PEP 660."""

from setuptools import setup

setup()
