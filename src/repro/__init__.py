"""repro — reproduction of "Processing-in-Memory for Energy-efficient
Neural Network Training: A Heterogeneous Approach" (MICRO 2018).

Public API tour:

* :mod:`repro.nn` — TensorFlow-flavoured op-graph substrate and model zoo.
* :mod:`repro.profiling` — workload characterization (paper Table I, Fig 2).
* :mod:`repro.hardware` — device models: 3D stack, fixed-function PIMs,
  programmable PIM, host CPU, GPU, power/area/thermal.
* :mod:`repro.pimcl` — the extended-OpenCL programming model.
* :mod:`repro.runtime` — profiling-driven scheduler with recursive kernels
  (RC) and the operation pipeline (OP).
* :mod:`repro.sim` — discrete-event simulator and metrics.
* :mod:`repro.baselines` — the five evaluated configurations + Neurocube.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from .config import (
    FREQUENCY_SCALES,
    PROG_PIM_COUNTS,
    CPUConfig,
    FixedPIMConfig,
    GPUConfig,
    ProgPIMConfig,
    RuntimeConfig,
    StackConfig,
    SystemConfig,
    default_config,
)
from .errors import ReproError

__version__ = "1.1.0"

__all__ = [
    "CPUConfig",
    "FREQUENCY_SCALES",
    "FixedPIMConfig",
    "GPUConfig",
    "PROG_PIM_COUNTS",
    "ProgPIMConfig",
    "ReproError",
    "RunReport",
    "RuntimeConfig",
    "SimulateOptions",
    "StackConfig",
    "SystemConfig",
    "api",
    "default_config",
    "list_backends",
    "simulate",
    "__version__",
]

#: Facade entry points, loaded lazily so that ``import repro`` stays cheap
#: and config-only consumers pull in no simulator modules.
_LAZY = {
    "api": ("repro.api", None),
    "simulate": ("repro.api", "simulate"),
    "SimulateOptions": ("repro.api", "SimulateOptions"),
    "list_backends": ("repro.api", "list_backends"),
    "RunReport": ("repro.obs.report", "RunReport"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value
