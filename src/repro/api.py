"""Unified facade over the simulator: one call, one report.

:func:`simulate` is the supported entry point for running any paper model
on any evaluated system configuration.  It hides the graph builder, the
baseline factory, the content-addressed result cache and the observability
plumbing behind a single signature and always returns a
:class:`~repro.obs.report.RunReport`::

    from repro.api import simulate

    report = simulate("alexnet", "hetero-pim", steps=3)
    print(report.step_time_s, report.device_busy_fraction)
    report.save_trace("trace.json")   # needs observe=True (see below)

Pass ``observe=True`` (or an existing
:class:`~repro.obs.metrics.MetricsRegistry`) to run the simulation live
with schedule-timeline recording — the report can then export a
Chrome/Perfetto trace.  Unobserved calls go through the result cache
(:mod:`repro.sim.cache`) and are typically instant on a warm cache; the
numbers in the report are identical either way, because the simulator's
accounting is always on.

The CLI (``python -m repro run``), the experiment scripts and the examples
all call through this module; the older graph-level entry points remain
importable but warn.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, Optional, Tuple, Union

from .config import SystemConfig, default_config
from .nn.graph import Graph
from .nn.models import available_models, build_model
from .obs.metrics import MetricsRegistry
from .obs.report import RunReport
from .sim import cache as sim_cache
from .sim.policy import SchedulingPolicy
from .sim.simulation import Simulation

#: Named configurations accepted by :func:`simulate` on the default
#: backend (the paper's five evaluated systems plus the Neurocube
#: comparison point).  Other backends declare their own configuration
#: names — see :func:`list_backends` and
#: :meth:`repro.hardware.registry.HardwareBackend.configurations`.
CONFIGURATIONS = ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim", "neurocube")

#: Backend used when none is requested (the reproduced paper's design).
DEFAULT_BACKEND = "hmc-hetero"

_graph_cache: Dict[Tuple[str, Optional[int]], Graph] = {}

#: Resolved ``SystemConfig`` instances keyed by (backend, configuration
#: name, base identity).  Returning the *same* config object per name
#: lets the downstream id-keyed memoizers (config signatures, cost
#: tables) hit instead of re-deriving; policies stay fresh per call
#: because ``prepare()`` mutates them.  Entries tied to an explicit base
#: evict with it.
_resolved_config_cache: Dict[Tuple[str, str, Optional[int]], SystemConfig] = {}

#: Frequency-scaled variants of the default configuration, keyed by scale
#: (the section VI-D sweep re-resolves the same handful of scales).
_scaled_base_cache: Dict[float, SystemConfig] = {}


def list_models() -> Tuple[str, ...]:
    """Names accepted as :func:`simulate`'s ``model`` argument."""
    return tuple(available_models())


def list_configurations(backend: str = DEFAULT_BACKEND) -> Tuple[str, ...]:
    """Names accepted as :func:`simulate`'s ``config`` argument for
    ``backend`` (default: the paper's six named configurations)."""
    if backend == DEFAULT_BACKEND:
        return CONFIGURATIONS
    from .hardware import registry

    return registry.get(backend).configurations


def list_backends() -> Tuple[str, ...]:
    """Registered hardware-backend names (see
    :mod:`repro.hardware.registry`)."""
    from .hardware import registry

    return registry.list_backends()


def cached_graph(model: str, batch_size: Optional[int] = None) -> Graph:
    """Build (or fetch) the training-step graph for ``model``."""
    key = (model, batch_size)
    if key not in _graph_cache:
        _graph_cache[key] = build_model(model, batch_size)
    return _graph_cache[key]


def resolve_configuration(
    config_name: Optional[str] = None,
    base: Optional[SystemConfig] = None,
    backend: str = DEFAULT_BACKEND,
) -> Tuple[SystemConfig, SchedulingPolicy]:
    """Instantiate a named configuration of a registered backend.

    ``config_name=None`` selects the backend's default configuration
    (``"hetero-pim"`` on the default backend).  Raises
    :class:`~repro.errors.UnknownBackendError` for an unregistered
    ``backend`` name.
    """
    from .hardware import registry

    be = registry.get(backend)
    if config_name is None:
        config_name = be.default_configuration
    system, policy = registry.build(backend, config_name, base)
    key = (backend, config_name, id(base) if base is not None else None)
    cached = _resolved_config_cache.get(key)
    if cached is None:
        _resolved_config_cache[key] = system
        if base is not None:
            weakref.finalize(base, _resolved_config_cache.pop, key, None)
    else:
        system = cached
    return system, policy


def clear_caches() -> None:
    """Drop cached graphs and simulation results (memory and disk tiers)."""
    _graph_cache.clear()
    _resolved_config_cache.clear()
    _scaled_base_cache.clear()
    sim_cache.clear()


def cache_usage() -> Dict[str, int]:
    """Result-cache counters plus disk-tier footprint, one flat dict."""
    usage = dict(sim_cache.stats())
    usage.update(sim_cache.disk_usage())
    return usage


def prune_cache(max_bytes: int) -> Dict[str, int]:
    """LRU-prune the disk result tier to ``max_bytes`` (see
    :func:`repro.sim.cache.prune`); the ``repro cache prune`` CLI calls
    this."""
    return sim_cache.prune(max_bytes)


def last_batch_supervision():
    """Supervision counts of the most recent experiment batch (or None).

    A :class:`~repro.obs.report.BatchSupervision`: retries, watchdog
    timeouts, worker crashes/respawns and quarantined-job fingerprints
    recorded by the crash-safe runner
    (:mod:`repro.experiments.runner`).
    """
    from .experiments import runner  # local: experiments imports api

    return runner.last_supervision()


@dataclass(frozen=True)
class SimulateOptions:
    """Behavioral options of one :func:`simulate` call, as one object.

    The growing keyword set (``observe``/``faults``/``validate``/
    ``surrogate``/``backend``) folds into this dataclass: build one and
    pass it as ``simulate(..., options=opts)``.  The legacy keywords keep
    working and, when explicitly supplied, override the corresponding
    option field.  The *resolved* options of every call are recorded on
    ``report.options``.
    """

    #: Registered hardware backend to simulate on (:func:`list_backends`).
    backend: str = DEFAULT_BACKEND
    #: Live run with timeline recording (bool or a MetricsRegistry).
    observe: Union[bool, MetricsRegistry, None] = None
    #: Optional :class:`~repro.faults.FaultSpec` to inject.
    faults: Optional[object] = None
    #: Run under the invariant checker (None = ``REPRO_VALIDATE`` env).
    validate: Optional[bool] = None
    #: Answer from the learned cost surrogate when possible.
    surrogate: bool = False

    def merged(
        self,
        *,
        backend: Optional[str] = None,
        observe=None,
        faults=None,
        validate: Optional[bool] = None,
        surrogate: bool = False,
    ) -> "SimulateOptions":
        """This options object with explicitly-passed legacy keywords
        overriding the corresponding fields (unset keywords defer)."""
        updates: Dict[str, object] = {}
        if backend is not None:
            updates["backend"] = backend
        if observe is not None:
            updates["observe"] = observe
        if faults is not None:
            updates["faults"] = faults
        if validate is not None:
            updates["validate"] = validate
        if surrogate:
            updates["surrogate"] = True
        return _dc_replace(self, **updates) if updates else self


def _resolve_run(
    model: str,
    config: Optional[str],
    batch_size: Optional[int],
    frequency_scale: float,
    base: Optional[SystemConfig],
    backend: str,
) -> Tuple[Graph, SystemConfig, SchedulingPolicy, str]:
    """Resolve one request to concrete simulator inputs.

    Shared by :func:`simulate` and :class:`Session` so that a served
    request and a direct call always agree on the graph/config/policy
    (and therefore on the cache fingerprint).  Returns ``(graph, system,
    policy, resolved_config_name)``.
    """
    if frequency_scale != 1.0:
        if base is None:
            scaled = _scaled_base_cache.get(frequency_scale)
            if scaled is None:
                scaled = default_config().with_frequency_scale(frequency_scale)
                _scaled_base_cache[frequency_scale] = scaled
            base = scaled
        else:
            base = base.with_frequency_scale(frequency_scale)
    graph = cached_graph(model, batch_size)
    if config is None:
        from .hardware import registry

        config = registry.get(backend).default_configuration
    system, policy = resolve_configuration(config, base, backend=backend)
    return graph, system, policy, config


def _resolved_options_record(
    opts: SimulateOptions,
    config_name: str,
    steps: int,
    batch_size: Optional[int],
    frequency_scale: float,
    validate: bool,
) -> Dict[str, object]:
    """JSON-safe record of one call's resolved options (for the report)."""
    return {
        "backend": opts.backend,
        "config": config_name,
        "steps": steps,
        "batch_size": batch_size,
        "frequency_scale": frequency_scale,
        "observe": bool(opts.observe),
        "validate": bool(validate),
        "surrogate": bool(opts.surrogate),
        "faults": opts.faults is not None,
    }


def simulate(
    model: str,
    config: Optional[str] = None,
    steps: int = 3,
    *,
    batch_size: Optional[int] = None,
    frequency_scale: float = 1.0,
    base: Optional[SystemConfig] = None,
    observe=None,
    faults=None,
    validate: Optional[bool] = None,
    surrogate: bool = False,
    backend: Optional[str] = None,
    options: Optional[SimulateOptions] = None,
) -> RunReport:
    """Simulate one training run of ``model`` on configuration ``config``.

    Parameters
    ----------
    model:
        A model-zoo name (:func:`list_models`).
    config:
        A configuration name (:func:`list_configurations`); ``None``
        selects the backend's default configuration (``"hetero-pim"`` on
        the default backend).
    steps:
        Measured training steps (positive).
    batch_size:
        Override the model's default mini-batch size.
    frequency_scale:
        PIM PLL multiplier (paper section VI-D); applied on top of
        ``base`` (or the default configuration).
    base:
        Optional base :class:`~repro.config.SystemConfig` to derive the
        configuration from.
    observe:
        ``None``/``False`` — serve from the result cache, no timeline.
        ``True`` or a :class:`~repro.obs.metrics.MetricsRegistry` — run
        live with timeline recording (enables ``report.save_trace``); a
        supplied registry additionally receives the run's metrics.
    faults:
        Optional :class:`~repro.faults.FaultSpec`.  The run injects the
        spec's fault events and reacts (retries, offload re-selection,
        graceful degradation) so every training step still completes; the
        fault/recovery log lands on ``report.faults``.  The spec is part
        of the cache fingerprint.
    validate:
        Run under the invariant checker (:mod:`repro.validate`).  The
        simulation executes live with a timeline and every
        conservation/consistency law is asserted — including equivalence
        with any previously cached result and with the serialization
        round-trip — raising :class:`~repro.errors.InvariantViolation`
        on the first broken one.  A passing run's report carries a
        ``validation`` summary.  Defaults to the ``REPRO_VALIDATE``
        environment knob (so CI can validate whole suites unchanged).
    surrogate:
        Answer from the learned cost surrogate (:mod:`repro.surrogate`)
        instead of simulating: microsecond-scale *estimated* results with
        declared error bands (``report.surrogate``).  Falls back to exact
        simulation — recorded on ``report.surrogate["mode"]`` — when no
        trained model exists, the query is out of the trained domain, or
        ``observe``/``validate`` demand a real run.  Estimates are never
        written to the result cache.
    backend:
        A registered hardware backend (:func:`list_backends`); default
        ``"hmc-hetero"``, the reproduced paper's design.  The backend
        name joins the simulation-cache fingerprint.
    options:
        A :class:`SimulateOptions` carrying the behavioral keywords as
        one object.  Explicitly-passed legacy keywords override the
        corresponding option fields.  The resolved options land on
        ``report.options`` either way.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    opts = (options if options is not None else SimulateOptions()).merged(
        backend=backend,
        observe=observe,
        faults=faults,
        validate=validate,
        surrogate=surrogate,
    )
    observe, faults = opts.observe, opts.faults
    validate, surrogate = opts.validate, opts.surrogate
    graph, system, policy, config = _resolve_run(
        model, config, batch_size, frequency_scale, base, opts.backend
    )
    if validate is None:
        validate = sim_cache.validation_enabled()
    options_record = _resolved_options_record(
        opts, config, steps, batch_size, frequency_scale, validate
    )

    surrogate_info = None
    if surrogate and not (observe or validate):
        from .surrogate import SurrogateUnavailable, estimate_run

        try:
            result = estimate_run(
                graph, policy, system, steps=steps, faults=faults
            )
        except SurrogateUnavailable as exc:
            surrogate_info = {"mode": "exact", "reason": str(exc)}
        else:
            metrics = result.metrics or {}
            surrogate_info = {
                "mode": "surrogate",
                "tier": int(metrics.get("surrogate.tier", 0)),
                "bands": {
                    "step_time_rel": metrics.get(
                        "surrogate.band.step_time_rel"
                    ),
                    "dynamic_energy_rel": metrics.get(
                        "surrogate.band.dynamic_energy_rel"
                    ),
                    "total_energy_rel": metrics.get(
                        "surrogate.band.total_energy_rel"
                    ),
                },
            }
            return RunReport(
                result=result,
                surrogate=surrogate_info,
                options=options_record,
            )
    elif surrogate:
        surrogate_info = {
            "mode": "exact",
            "reason": "observe/validate requires an exact simulation",
        }

    validation = None
    if observe or validate:
        registry = observe if isinstance(observe, MetricsRegistry) else None
        sim = Simulation(
            graph,
            policy,
            config=system,
            steps=steps,
            record_timeline=True,
            observe=registry,
            faults=faults,
            validate=validate,
        )
        fingerprint = sim_cache.run_fingerprint(
            graph, policy, system, steps, faults=faults
        )
        # a validated run must agree with whatever the cache would have
        # served in its place — look that up before overwriting it.  The
        # lookup stays outside the report's cache-stats window: it is a
        # checker internal, and counting it would make reports (and the
        # traces they export) differ between cold and warm caches.
        prior = sim_cache.get(fingerprint) if validate else None
        before = sim_cache.stats()
        result = sim.run()
        if validate:
            validation = _validation_summary(result, prior)
        # warm the cache: observed runs produce the same result record
        sim_cache.put(
            fingerprint,
            result,
            meta=sim_cache.object_meta(result, graph, system, faults=faults),
        )
        timeline = sim.timeline if observe else None
    else:
        before = sim_cache.stats()
        result = sim_cache.simulate_cached(
            graph, policy, system, steps=steps, faults=faults
        )
        timeline = None
    after = sim_cache.stats()
    delta = {k: after[k] - before.get(k, 0) for k in after}

    return RunReport(
        result=result,
        timeline=timeline,
        cache_stats=delta,
        validation=validation,
        surrogate=surrogate_info,
        options=options_record,
    )


def canonical_report(report: RunReport) -> RunReport:
    """``report`` with call-local jitter removed.

    Cache statistics (cold vs warm) and the live timeline are properties
    of one *call*, not of the simulated run; dropping them makes
    ``to_json()`` byte-identical for the same request whatever the cache
    temperature or worker interleaving.  The serve daemon stores and
    serves exactly this form, and ``repro run --report-out`` writes it,
    so the two are byte-comparable.
    """
    return RunReport(
        result=report.result,
        validation=report.validation,
        surrogate=report.surrogate,
        options=report.options,
    )


class Session:
    """Stateful, tenant-aware facade path over :func:`simulate`.

    Long-lived consumers — the serve daemon foremost — need three things
    the one-shot function does not expose:

    * a **tenant identity** under which all cache traffic is accounted
      (:func:`repro.sim.cache.tenant_scope`);
    * the **request fingerprint** *before* running, so identical
      in-flight requests can be deduplicated onto one simulation;
    * **canonical reports** (:func:`canonical_report`) whose JSON is
      byte-identical for the same request no matter when, or on which
      cache temperature, it was answered.

    A ``Session`` is cheap (no resources besides the process-wide caches
    it shares) and safe to call from worker threads.
    """

    def __init__(self, tenant: str = "default"):
        if not tenant or "/" in tenant or tenant.startswith("."):
            raise ValueError(f"invalid tenant name {tenant!r}")
        self.tenant = tenant

    def fingerprint(
        self,
        model: str,
        config: Optional[str] = None,
        steps: int = 3,
        *,
        batch_size: Optional[int] = None,
        frequency_scale: float = 1.0,
        backend: Optional[str] = None,
        surrogate: bool = False,
    ) -> str:
        """Content fingerprint of the request — the dedup/report key.

        Identical requests (after config/backend defaulting) map to the
        same fingerprint; a surrogate-answered request can never collide
        with the exact simulation of the same inputs.
        """
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        graph, system, policy, _name = _resolve_run(
            model,
            config,
            batch_size,
            frequency_scale,
            None,
            backend if backend is not None else DEFAULT_BACKEND,
        )
        digest = sim_cache.run_fingerprint(graph, policy, system, steps)
        return f"{digest}-est" if surrogate else digest

    def simulate(
        self,
        model: str,
        config: Optional[str] = None,
        steps: int = 3,
        *,
        batch_size: Optional[int] = None,
        frequency_scale: float = 1.0,
        backend: Optional[str] = None,
        surrogate: bool = False,
    ) -> RunReport:
        """Run (or fetch) one simulation under this session's tenant and
        return the canonical report (see :func:`canonical_report`)."""
        with sim_cache.tenant_scope(self.tenant):
            report = simulate(
                model,
                config,
                steps,
                batch_size=batch_size,
                frequency_scale=frequency_scale,
                surrogate=surrogate,
                backend=backend,
            )
        return canonical_report(report)


def _validation_summary(result, prior) -> Dict[str, object]:
    """Run the cache/serialization equivalence checks for a validated run
    (the live invariants already ran inside ``Simulation.run``) and build
    the report's ``validation`` summary."""
    from .sim.results import RunResult
    from .validate.invariants import (
        RESULT_INVARIANTS,
        SIMULATION_INVARIANTS,
        check_cache_equivalence,
    )

    check_cache_equivalence(result, prior, source="result cache")
    check_cache_equivalence(
        result,
        RunResult.from_json(result.to_json()),
        source="serialization round-trip",
    )
    return {
        "invariants": list(RESULT_INVARIANTS + SIMULATION_INVARIANTS),
        "cache_equivalence": "checked" if prior is not None else "cold",
        "passed": True,
    }
