"""Evaluated system configurations and prior-work comparison points."""

from .configs import (
    CONFIGURATION_ORDER,
    CpuPolicy,
    FixedPimPolicy,
    GpuPolicy,
    ProgPimPolicy,
    build_configuration,
    make_cpu,
    make_fixed_pim,
    make_gpu,
    make_hetero_pim,
    make_prog_pim,
)
from .neurocube import NEUROCUBE_VAULTS, NeurocubePolicy, make_neurocube

__all__ = [
    "CONFIGURATION_ORDER",
    "CpuPolicy",
    "FixedPimPolicy",
    "GpuPolicy",
    "NEUROCUBE_VAULTS",
    "NeurocubePolicy",
    "ProgPimPolicy",
    "build_configuration",
    "make_cpu",
    "make_fixed_pim",
    "make_gpu",
    "make_hetero_pim",
    "make_neurocube",
    "make_prog_pim",
]
