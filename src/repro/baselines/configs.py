"""The five evaluated system configurations (paper section VI).

* **CPU** — all operations on the host processor;
* **GPU** — all operations on the discrete GPU (GTX 1080 Ti);
* **Progr PIM** — programmable PIMs only: "as many ARM-based programmable
  cores as needed by workloads" within the logic-die area, no runtime
  scheduling;
* **Fixed PIM** — fixed-function PIMs execute the offloadable operations
  (host-coordinated, no RC/OP); everything else runs on the CPU;
* **Hetero PIM** — the full co-design with the profiling-driven runtime.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional, Tuple

from ..config import SystemConfig, default_config
from ..errors import ReproError
from ..nn.ops import OffloadClass, Op
from ..runtime.scheduler import HeteroPimPolicy
from ..sim.policy import SchedulingPolicy


class CpuPolicy(SchedulingPolicy):
    """All operations on the host CPU (sequential executor)."""

    name = "CPU"
    cpu_slots = 1

    def placements(self, op: Op) -> Tuple[str, ...]:
        return ("cpu",)


class GpuPolicy(SchedulingPolicy):
    """All operations on the GPU; minibatches staged over PCIe."""

    name = "GPU"
    cpu_slots = 1
    uses_gpu = True

    def placements(self, op: Op) -> Tuple[str, ...]:
        if op.offload_class is OffloadClass.HOST:
            return ("cpu",)
        return ("gpu",)


class ProgPimPolicy(SchedulingPolicy):
    """Programmable PIMs only, no runtime scheduling (paper "Progr PIM").

    Executes operations "on as many ARM-based programmable cores as needed
    by workloads": a wide operation gangs up to ``prog_gang_limit`` PIMs.
    """

    name = "Progr PIM"
    cpu_slots = 1
    prog_gang_limit = 16

    def placements(self, op: Op) -> Tuple[str, ...]:
        if op.offload_class is OffloadClass.HOST:
            return ("cpu",)
        return ("prog",)


class FixedPimPolicy(SchedulingPolicy):
    """Fixed-function PIMs for offloadable work, CPU for the rest.

    No recursive kernels (every sub-kernel dispatch is a host round trip),
    no operation pipeline (the pool is exclusive per operation), no
    profiling-driven selection.
    """

    name = "Fixed PIM"
    cpu_slots = 2

    def placements(self, op: Op) -> Tuple[str, ...]:
        cls = op.offload_class
        if cls is OffloadClass.FIXED:
            return ("fixed", "cpu")
        if cls is OffloadClass.HYBRID:
            return ("hybrid_host", "cpu")
        return ("cpu",)


def _prog_only_config(base: SystemConfig) -> SystemConfig:
    """Scale out ARM PIMs "as needed by workloads" (one per bank).

    The paper's Progr-PIM configuration is not area-constrained: it
    idealizes a cluster per memory bank so that workload-level parallelism
    is never the limiter — its weakness is per-PIM throughput.
    """
    return replace(
        base,
        prog_pim=replace(base.prog_pim, n_pims=base.stack.banks),
        # the pool exists physically unused; keep one unit to satisfy
        # invariants, it is never scheduled
        fixed_pim=replace(base.fixed_pim, n_units=1),
    )


def make_cpu(base: SystemConfig) -> Tuple[SystemConfig, SchedulingPolicy]:
    return base, CpuPolicy()


def make_gpu(base: SystemConfig) -> Tuple[SystemConfig, SchedulingPolicy]:
    return base, GpuPolicy()


def make_prog_pim(base: SystemConfig) -> Tuple[SystemConfig, SchedulingPolicy]:
    return _prog_only_config(base), ProgPimPolicy()


def make_fixed_pim(base: SystemConfig) -> Tuple[SystemConfig, SchedulingPolicy]:
    return base, FixedPimPolicy()


def make_hetero_pim(
    base: SystemConfig,
    recursive_kernels: bool = True,
    operation_pipeline: bool = True,
) -> Tuple[SystemConfig, SchedulingPolicy]:
    return base, HeteroPimPolicy(
        recursive_kernels=recursive_kernels,
        operation_pipeline=operation_pipeline,
    )


_BUILDERS: Dict[str, Callable[[SystemConfig], Tuple[SystemConfig, SchedulingPolicy]]] = {
    "cpu": make_cpu,
    "gpu": make_gpu,
    "prog-pim": make_prog_pim,
    "fixed-pim": make_fixed_pim,
    "hetero-pim": make_hetero_pim,
}

#: Display order used throughout the evaluation figures.
CONFIGURATION_ORDER = ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim")


def build_configuration(
    name: str, base: Optional[SystemConfig] = None
) -> Tuple[SystemConfig, SchedulingPolicy]:
    """(config, policy) pair for one of the five evaluated configurations."""
    if base is None:
        base = default_config()
    try:
        return _BUILDERS[name](base)
    except KeyError:
        raise ReproError(
            f"unknown configuration {name!r}; available: {CONFIGURATION_ORDER}"
        ) from None
