"""Neurocube comparison model (paper section VI-C, Figure 10).

Neurocube (Kim et al., ISCA 2016) integrates homogeneous *programmable*
processing elements — one per HMC vault, each with a small MAC array — in
the logic die.  Two structural differences from the heterogeneous design
drive the paper's comparison results:

1. no fixed-function pool: all work runs on the 16 vault PEs, whose
   aggregate throughput is far below 444 vectorized multiplier/adder pairs;
2. no runtime scheduling: no recursive kernels, no operation pipeline, no
   profiling-driven placement.

The PE array is modeled as a 16-PIM programmable cluster whose per-PE MAC
throughput follows Neurocube's published configuration (one MAC array per
vault at the stack frequency), scaled by the same calibration margin as the
rest of the devices (DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from ..config import SystemConfig, default_config
from ..nn.ops import OffloadClass, Op
from ..sim.policy import SchedulingPolicy

#: Vault count of the HMC organization Neurocube targets.
NEUROCUBE_VAULTS = 16
#: Effective FLOPs per PE per stack cycle (MAC array width x 2, calibrated).
NEUROCUBE_FLOPS_PER_PE_CYCLE = 256.0


class NeurocubePolicy(SchedulingPolicy):
    """Everything on the homogeneous PE array; host only for bookkeeping."""

    name = "Neurocube"
    cpu_slots = 1
    prog_gang_limit = 16

    def placements(self, op: Op) -> Tuple[str, ...]:
        if op.offload_class is OffloadClass.HOST:
            return ("cpu",)
        return ("prog",)


def make_neurocube(
    base: SystemConfig = None,
) -> Tuple[SystemConfig, SchedulingPolicy]:
    """(config, policy) for the Neurocube comparison point."""
    if base is None:
        base = default_config()
    config = replace(
        base,
        prog_pim=replace(
            base.prog_pim,
            name="Neurocube PE array",
            n_pims=NEUROCUBE_VAULTS,
            cores_per_pim=1,
            frequency_hz=base.stack.base_frequency_hz,
            flops_per_core_cycle=NEUROCUBE_FLOPS_PER_PE_CYCLE,
            other_flop_penalty=2.0,
            dynamic_power_w_per_pim=2.8,
            area_mm2_per_pim=1.5,
        ),
        fixed_pim=replace(base.fixed_pim, n_units=1),
    )
    return config, NeurocubePolicy()
