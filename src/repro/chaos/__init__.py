"""Deterministic infrastructure-chaos injection (the infra mirror of
:mod:`repro.faults`).

Public surface:

* :class:`~repro.chaos.spec.ChaosSpec` / :class:`~repro.chaos.spec.ChaosRule`
  — seeded, JSON-round-trippable experiment descriptions;
* :func:`~repro.chaos.injector.activate` /
  :func:`~repro.chaos.injector.deactivate` /
  :func:`~repro.chaos.injector.active` — in-process activation (the
  ``REPRO_CHAOS`` env var reaches child processes);
* the site hooks :func:`~repro.chaos.injector.mangle`,
  :func:`~repro.chaos.injector.maybe_delay` and
  :func:`~repro.chaos.injector.maybe_kill` called by the storage and
  serve layers.
"""

from .injector import (
    CHAOS_ENV,
    ChaosInjector,
    activate,
    active,
    corrupt_bytes,
    deactivate,
    mangle,
    maybe_delay,
    maybe_kill,
)
from .spec import (
    CHAOS_KINDS,
    CHAOS_SITES,
    ChaosRule,
    ChaosSpec,
    ChaosSpecError,
    make_spec,
)

__all__ = [
    "CHAOS_ENV",
    "CHAOS_KINDS",
    "CHAOS_SITES",
    "ChaosInjector",
    "ChaosRule",
    "ChaosSpec",
    "ChaosSpecError",
    "activate",
    "active",
    "corrupt_bytes",
    "deactivate",
    "make_spec",
    "mangle",
    "maybe_delay",
    "maybe_kill",
]
