"""The chaos injector: deterministic fault firing at compiled-in sites.

The storage and serve layers call the tiny module-level hooks here
(:func:`mangle`, :func:`maybe_delay`, :func:`maybe_kill`) at their named
sites.  With no spec active every hook is a no-op costing one attribute
load, so production paths pay nothing.  With a spec active (in-process
via :func:`activate`, or inherited by child processes through the
``REPRO_CHAOS`` environment variable) each hook consults the injector,
which decides *deterministically* — occurrence indices and a seeded hash,
never wall-clock or :mod:`random` state — whether this occurrence fires.

Corruption is surgical on purpose: :func:`corrupt_bytes` takes a
``protect`` prefix length so injected damage lands in an object's payload
while its self-describing header (repair metadata + checksum) stays
intact — mirroring the dominant real-world case where rot hits the bulk
of a file, and keeping the ``fsck --repair`` invariant ("100% of injected
damage repaired byte-identically") honest rather than vacuous.
"""

from __future__ import annotations

import errno
import hashlib
import os
import signal
import threading
import time
from typing import Dict, Optional

from .spec import ChaosRule, ChaosSpec

#: Environment variable carrying a spec: JSON text, or ``@path`` to a file.
CHAOS_ENV = "REPRO_CHAOS"


class ChaosInjector:
    """Counts site occurrences and fires matching rules deterministically."""

    def __init__(self, spec: ChaosSpec):
        self.spec = spec
        self._counts: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}
        self._lock = threading.Lock()

    def _hash(self, site: str, occurrence: int) -> int:
        token = f"{self.spec.seed}:{site}:{occurrence}".encode()
        return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")

    def _claim(self, site: str, rule_index: int) -> bool:
        """Claim a cross-process once-marker; first claimant wins."""
        from ..sim import cache as sim_cache

        claims = sim_cache.cache_dir() / "chaos-claims"
        marker = claims / f"{site}.{rule_index}.{self.spec.seed}"
        try:
            claims.mkdir(parents=True, exist_ok=True)
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # No writable cache dir: fall back to per-process limiting.
            return True
        os.close(fd)
        return True

    def fire(self, site: str) -> Optional[ChaosRule]:
        """Count one occurrence of ``site``; return the rule that fires."""
        with self._lock:
            occurrence = self._counts.get(site, 0)
            self._counts[site] = occurrence + 1
            for index, rule in enumerate(self.spec.rules):
                if rule.site != site:
                    continue
                if rule.limit and self._fired.get(index, 0) >= rule.limit:
                    continue
                hit = occurrence in rule.at or (
                    rule.one_in > 0
                    and self._hash(site, occurrence) % rule.one_in == 0
                )
                if not hit:
                    continue
                if rule.once and not self._claim(site, index):
                    continue
                self._fired[index] = self._fired.get(index, 0) + 1
                return rule
        return None

    def occurrences(self, site: str) -> int:
        with self._lock:
            return self._counts.get(site, 0)


_active: Optional[ChaosInjector] = None
_env_cache: Optional[str] = None
_env_injector: Optional[ChaosInjector] = None
_env_lock = threading.Lock()


def activate(spec: ChaosSpec) -> ChaosInjector:
    """Install ``spec`` as this process's injector (tests, harnesses)."""
    global _active
    _active = ChaosInjector(spec)
    return _active


def deactivate() -> None:
    global _active
    _active = None


def active() -> Optional[ChaosInjector]:
    """The current injector: explicit activation wins over ``REPRO_CHAOS``."""
    if _active is not None:
        return _active
    raw = os.environ.get(CHAOS_ENV, "").strip()
    if not raw:
        return None
    global _env_cache, _env_injector
    with _env_lock:
        if raw != _env_cache:
            text = raw
            if raw.startswith("@"):
                with open(raw[1:], "r", encoding="utf-8") as fh:
                    text = fh.read()
            _env_injector = ChaosInjector(ChaosSpec.from_json(text))
            _env_cache = raw
        return _env_injector


def corrupt_bytes(
    data: bytes, rule: ChaosRule, seed: int, token: str, protect: int = 0
) -> bytes:
    """Damage ``data`` deterministically, never before byte ``protect``."""
    span = len(data) - protect
    if span <= 0:
        return data
    digest = hashlib.sha256(
        f"{seed}:{rule.kind}:{token}".encode()
    ).digest()
    offset = protect + int.from_bytes(digest[:8], "big") % span
    if rule.kind == "torn_write":
        return data[:offset]
    # bit_flip: XOR one bit, guaranteed to change the byte.
    bit = digest[8] % 8
    flipped = bytes([data[offset] ^ (1 << bit)])
    return data[:offset] + flipped + data[offset + 1 :]


def mangle(site: str, data: bytes, token: str, protect: int = 0) -> bytes:
    """File-write hook: return the bytes to actually write at ``site``.

    ``enospc`` raises :class:`OSError` (errno ENOSPC) as the real disk
    would; ``slow_io`` sleeps; ``torn_write``/``bit_flip`` return damaged
    bytes.  ``token`` keys the corruption offset (use the object's
    fingerprint/id so damage is stable across runs).
    """
    injector = active()
    if injector is None:
        return data
    rule = injector.fire(site)
    if rule is None:
        return data
    if rule.kind == "enospc":
        raise OSError(errno.ENOSPC, f"chaos: injected ENOSPC at {site}")
    if rule.kind == "slow_io":
        time.sleep(rule.delay_s)
        return data
    return corrupt_bytes(data, rule, injector.spec.seed, token, protect)


def maybe_delay(site: str) -> None:
    """Latency hook: sleep if a ``slow_io`` rule fires at ``site``."""
    injector = active()
    if injector is None:
        return
    rule = injector.fire(site)
    if rule is not None and rule.kind == "slow_io":
        time.sleep(rule.delay_s)


def maybe_kill(site: str) -> None:
    """Process-death hook: SIGKILL this process if a rule fires."""
    injector = active()
    if injector is None:
        return
    rule = injector.fire(site)
    if rule is not None and rule.kind == "worker_kill":
        os.kill(os.getpid(), signal.SIGKILL)
