"""Declarative, seeded infrastructure-chaos specifications.

:mod:`repro.faults` injects *device* faults into the simulated hardware;
this module is its infrastructure mirror: it injects *harness* faults —
torn writes, bit flips, ENOSPC, slow I/O, worker kills — into the real
processes that run and serve simulations.  A :class:`ChaosSpec` is a
seed plus a list of :class:`ChaosRule` entries naming an injection
*site* (a named hook compiled into the cache/journal/daemon write paths)
and a fault *kind*; the same spec always fires at the same occurrences,
so every chaos experiment is replayable and CI-gateable
(``tools/check_chaos.py``).

Specs round-trip through JSON and are activated either in-process
(:func:`repro.chaos.injector.activate`) or across process boundaries via
the ``REPRO_CHAOS`` environment variable (JSON text, or ``@path`` to a
spec file) — worker processes inherit the env, so a supervised pool can
be killed deterministically from the outside.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from ..errors import ReproError

#: Every fault kind the injector knows how to apply.
CHAOS_KINDS = ("torn_write", "bit_flip", "enospc", "slow_io", "worker_kill")

#: Every compiled-in injection site.
CHAOS_SITES = (
    "cache.object_write",
    "journal.append",
    "serve.report_write",
    "serve.execute",
    "worker.kill",
)

#: Which kinds make sense at which sites.  File-write sites accept the
#: data-corrupting and I/O kinds; ``serve.execute`` only slows down;
#: ``worker.kill`` only kills.
_SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    "cache.object_write": ("torn_write", "bit_flip", "enospc", "slow_io"),
    "journal.append": ("torn_write", "bit_flip", "enospc", "slow_io"),
    "serve.report_write": ("torn_write", "bit_flip", "enospc", "slow_io"),
    "serve.execute": ("slow_io",),
    "worker.kill": ("worker_kill",),
}


class ChaosSpecError(ReproError):
    """Raised for a malformed chaos specification."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosSpecError(message)


@dataclass(frozen=True)
class ChaosRule:
    """One injection rule: fire fault ``kind`` at site ``site``.

    A rule fires at the site's ``at`` occurrence indices (0-based, counted
    per process) and/or pseudo-randomly at ``1/one_in`` of occurrences
    (seeded — the same occurrences every run).  ``limit`` caps total
    firings per process; ``once`` caps firings *across* processes by
    claiming a marker file under the cache directory, which is how a
    worker-kill rule murders exactly one worker out of a pool instead of
    every respawned replacement.
    """

    site: str
    kind: str
    at: Tuple[int, ...] = ()
    one_in: int = 0
    limit: int = 0
    once: bool = False
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        _require(
            self.site in CHAOS_SITES,
            f"unknown chaos site {self.site!r} "
            f"(sites: {', '.join(CHAOS_SITES)})",
        )
        _require(
            self.kind in CHAOS_KINDS,
            f"unknown chaos kind {self.kind!r} "
            f"(kinds: {', '.join(CHAOS_KINDS)})",
        )
        _require(
            self.kind in _SITE_KINDS[self.site],
            f"kind {self.kind!r} cannot fire at site {self.site!r} "
            f"(allowed: {', '.join(_SITE_KINDS[self.site])})",
        )
        _require(
            isinstance(self.at, tuple)
            and all(isinstance(n, int) and n >= 0 for n in self.at),
            f"'at' must be non-negative occurrence indices, got {self.at!r}",
        )
        _require(
            isinstance(self.one_in, int) and self.one_in >= 0,
            f"'one_in' must be a non-negative integer, got {self.one_in!r}",
        )
        _require(
            bool(self.at) or self.one_in > 0,
            "rule must name 'at' occurrences and/or a 'one_in' rate",
        )
        _require(
            isinstance(self.limit, int) and self.limit >= 0,
            f"'limit' must be a non-negative integer, got {self.limit!r}",
        )
        _require(
            isinstance(self.delay_s, (int, float)) and self.delay_s >= 0,
            f"'delay_s' must be a non-negative number, got {self.delay_s!r}",
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "kind": self.kind,
            "at": list(self.at),
            "one_in": self.one_in,
            "limit": self.limit,
            "once": self.once,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosRule":
        _require(isinstance(data, dict), "chaos rule must be a JSON object")
        unknown = sorted(
            set(data)
            - {"site", "kind", "at", "one_in", "limit", "once", "delay_s"}
        )
        _require(not unknown, f"unknown chaos rule field(s): {', '.join(unknown)}")
        at = data.get("at", ())
        _require(
            isinstance(at, (list, tuple)),
            f"'at' must be a list of occurrence indices, got {at!r}",
        )
        once = data.get("once", False)
        _require(isinstance(once, bool), f"'once' must be a boolean, got {once!r}")
        return cls(
            site=data.get("site", ""),
            kind=data.get("kind", ""),
            at=tuple(at),
            one_in=data.get("one_in", 0),
            limit=data.get("limit", 0),
            once=once,
            delay_s=data.get("delay_s", 0.05),
        )


@dataclass(frozen=True)
class ChaosSpec:
    """A seed plus rules — one deterministic chaos experiment."""

    seed: int = 0
    rules: Tuple[ChaosRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"'seed' must be an integer, got {self.seed!r}",
        )
        _require(
            isinstance(self.rules, tuple)
            and all(isinstance(rule, ChaosRule) for rule in self.rules),
            "'rules' must be a tuple of ChaosRule",
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosSpec":
        _require(isinstance(data, dict), "chaos spec must be a JSON object")
        unknown = sorted(set(data) - {"seed", "rules"})
        _require(not unknown, f"unknown chaos spec field(s): {', '.join(unknown)}")
        rules = data.get("rules", [])
        _require(
            isinstance(rules, (list, tuple)),
            f"'rules' must be a list, got {rules!r}",
        )
        return cls(
            seed=data.get("seed", 0),
            rules=tuple(ChaosRule.from_dict(rule) for rule in rules),
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosSpecError(f"chaos spec is not valid JSON: {exc}")
        return cls.from_dict(data)


def make_spec(seed: int, rules: Iterable[ChaosRule]) -> ChaosSpec:
    """Convenience constructor used by tests and ``tools/check_chaos.py``."""
    return ChaosSpec(seed=seed, rules=tuple(rules))
