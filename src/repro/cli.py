"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one model on one configuration via
  :func:`repro.api.simulate` and print the per-step report (optionally
  with an ASCII schedule timeline and/or a Chrome/Perfetto trace file);
* ``profile`` — Table-I style CPU characterization of a model;
* ``experiment`` — regenerate one paper table/figure by id (journaled:
  an interrupted batch is resumable);
* ``resume`` — re-run an interrupted ``experiment`` batch; journaled-
  complete jobs are free cache hits, artifacts come out byte-identical
  to an uninterrupted run;
* ``cache`` — inspect (``stats``) or LRU-prune (``prune``) the on-disk
  simulation result cache;
* ``trace`` — export a model trace to JSON (``--format ops`` for the raw
  operation trace, ``--format chrome`` for a Chrome Trace Event schedule);
* ``faults`` — inject a (seeded or file-supplied) fault spec into a run
  and report the resilience overhead against the fault-free baseline;
* ``validate`` — paper-fidelity gate: simulate the Fig 8/9/Table 1
  experiments (cache-backed) and check every speedup/energy ratio against
  the golden bands in :mod:`repro.validate.golden` (a trained cost
  surrogate's declared error bands print alongside);
* ``surrogate`` — train (``train``) or evaluate (``eval``) the learned
  cost surrogate (:mod:`repro.surrogate`) from already-cached simulation
  results; ``run --surrogate`` / ``experiment --surrogate`` then answer
  from it;
* ``serve`` — long-lived HTTP/JSON simulation service
  (:mod:`repro.serve`): request dedup, per-tenant quotas, journal-backed
  restart recovery, byte-identical stored reports;
* ``models`` / ``configs`` / ``backends`` — list available workloads,
  configurations and registered hardware backends.

Experiment artifacts print to **stdout** only; progress/journal banners
go to stderr, so redirected artifacts stay byte-comparable across
interrupted-and-resumed and uninterrupted runs.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from . import api, experiments
from .baselines import CONFIGURATION_ORDER
from .errors import (
    ExecutionError,
    FidelityError,
    Interrupted,
    InvariantViolation,
    PoisonJob,
    ReproError,
    UnknownBackendError,
)
from .nn.models import available_models, build_model
from .profiling import WorkloadProfiler
from .sim.trace_io import export_trace
from .units import GB, KB, MB, TB

EXPERIMENT_IDS = (
    "table1", "fig2", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "fig16", "fig17", "ablations", "compare",
    "extensions", "families", "faults", "summary",
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


_SIZE_SUFFIXES = {"K": KB, "M": MB, "G": GB, "T": TB}


def _byte_size(text: str) -> int:
    """Parse a byte budget: plain int or with a K/M/G/T suffix."""
    raw = text.strip().upper().removesuffix("B")
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a size: {text!r} (use e.g. 500000, 500K, 1.5G)"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text!r}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous-PIM NN-training reproduction (MICRO 2018)",
    )
    parser.add_argument(
        "--jobs", "-j", type=_positive_int, default=None, metavar="N",
        help="worker processes for independent simulations "
             "(default: $REPRO_JOBS or 1)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one model on one configuration")
    run.add_argument("model", choices=available_models())
    run.add_argument(
        "--config", default=None, metavar="NAME",
        help="configuration of the chosen backend (default: the "
             "backend's default, 'hetero-pim' on hmc-hetero); "
             "see 'repro configs'",
    )
    run.add_argument(
        "--backend", default=None, metavar="NAME",
        help="registered hardware backend to simulate on "
             "(default: hmc-hetero); see 'repro backends'",
    )
    run.add_argument("--steps", type=_positive_int, default=None,
                     help="training steps to simulate (default: 3)")
    run.add_argument("--frequency-scale", type=float, default=1.0,
                     help="PIM PLL multiplier (paper studies 1/2/4)")
    run.add_argument("--batch-size", type=int, default=None)
    run.add_argument("--timeline", action="store_true",
                     help="print an ASCII schedule timeline")
    run.add_argument("--trace-out", metavar="PATH", default=None,
                     help="write the schedule as Chrome Trace Event JSON "
                          "(open in chrome://tracing or ui.perfetto.dev)")
    run.add_argument("--validate", action="store_true",
                     help="run under the invariant checker "
                          "(conservation/consistency laws; see "
                          "docs/architecture.md §11)")
    run.add_argument("--surrogate", action="store_true",
                     help="answer from the learned cost surrogate "
                          "(estimated, with error bands) when possible; "
                          "train one first with 'repro surrogate train'")
    run.add_argument(
        "--report-out", metavar="PATH", default=None,
        help="write the canonical RunReport JSON (the byte-identical "
             "form 'repro serve' stores and serves) to PATH",
    )

    profile = sub.add_parser("profile", help="CPU characterization (Table I)")
    profile.add_argument("model", choices=available_models())
    profile.add_argument("--top", type=int, default=5)

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("id", choices=EXPERIMENT_IDS)
    experiment.add_argument(
        "--run-id", default=None, metavar="ID",
        help="journal run id (default: generated); pass it to "
             "'repro resume' after an interruption",
    )
    experiment.add_argument(
        "--surrogate", action="store_true",
        help="answer per-run queries from the learned cost surrogate "
             "where possible (estimated artifacts, NOT byte-identical "
             "to exact ones); falls back to simulation per query",
    )
    experiment.add_argument(
        "--steps-small", action="store_true",
        help="small smoke-test mode where the experiment supports it "
             "(currently 'compare': fewer models, 1 step) — artifacts "
             "are NOT comparable to full-mode ones",
    )

    resume = sub.add_parser(
        "resume",
        help="resume an interrupted experiment batch from its run journal",
    )
    resume.add_argument(
        "run_id", nargs="?", default=None,
        help="journal run id (default: the most recent run)",
    )

    cache_cmd = sub.add_parser(
        "cache", help="inspect or prune the simulation result cache"
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats", help="hit/miss counters and disk usage")
    prune = cache_sub.add_parser(
        "prune", help="evict least-recently-used disk entries to a budget"
    )
    prune.add_argument(
        "--max-bytes", type=_byte_size, required=True, metavar="N",
        help="keep the disk tier at or below this size "
             "(plain bytes or K/M/G/T suffix)",
    )
    fsck = cache_sub.add_parser(
        "fsck",
        help="verify every stored object, journal and serve report "
             "against its checksum",
    )
    fsck.add_argument(
        "--repair", action="store_true",
        help="quarantine damaged files and recompute them from their "
             "embedded metadata / journaled requests",
    )
    fsck.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )

    trace = sub.add_parser("trace", help="export a model trace to JSON")
    trace.add_argument("model", choices=available_models())
    trace.add_argument("output")
    trace.add_argument("--steps", type=_positive_int, default=1)
    trace.add_argument(
        "--format", choices=("ops", "chrome"), default="ops",
        help="ops: raw operation trace; chrome: simulated schedule in "
             "Chrome Trace Event format",
    )
    trace.add_argument(
        "--config", default="hetero-pim",
        choices=list(CONFIGURATION_ORDER) + ["neurocube"],
        help="configuration to simulate (chrome format only)",
    )

    faults = sub.add_parser(
        "faults",
        help="inject faults into a run and report the resilience overhead",
    )
    faults.add_argument("model", choices=available_models())
    faults.add_argument(
        "--config", default="hetero-pim",
        choices=list(CONFIGURATION_ORDER) + ["neurocube"],
    )
    faults.add_argument("--steps", type=_positive_int, default=3)
    faults.add_argument(
        "--seed", type=int, default=1,
        help="fault-generation seed (ignored with --spec)",
    )
    faults.add_argument(
        "--events", type=int, default=2,
        help="number of faults to generate (ignored with --spec)",
    )
    faults.add_argument(
        "--spec", metavar="PATH", default=None,
        help="JSON FaultSpec to inject instead of generating one",
    )
    faults.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the faulted run's schedule + fault lane as Chrome "
             "Trace Event JSON",
    )

    validate = sub.add_parser(
        "validate",
        help="check Fig 8/9/Table 1 numbers against the paper's golden bands",
    )
    validate.add_argument(
        "--models", nargs="+", default=None, choices=available_models(),
        metavar="MODEL",
        help="models to gate (default: the three fast ones; "
             "--full for all five evaluated models)",
    )
    validate.add_argument(
        "--full", action="store_true",
        help="gate all five evaluated models (slower on a cold cache)",
    )
    validate.add_argument(
        "--quiet", action="store_true",
        help="print failures only",
    )

    surrogate = sub.add_parser(
        "surrogate",
        help="train/evaluate the learned cost surrogate from cached results",
    )
    surrogate_sub = surrogate.add_subparsers(
        dest="surrogate_command", required=True
    )
    surrogate_sub.add_parser(
        "train",
        help="fit the surrogate on cached simulation results and save it",
    )
    surrogate_sub.add_parser(
        "eval",
        help="score the saved surrogate against cached exact results",
    )

    serve = sub.add_parser(
        "serve",
        help="HTTP/JSON simulation service (dedup, quotas, durable reports)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="address to bind (default: loopback; put a reverse proxy "
             "in front for anything else)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = ephemeral; the bound port is "
             "printed to stderr)",
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=2,
        help="simulation worker threads draining the request queue "
             "(default: 2)",
    )
    serve.add_argument(
        "--quota", default=None, metavar="RATE[:BURST]",
        help="per-tenant admission quota: RATE fresh simulations per "
             "second, optional BURST bucket size (default: unlimited; "
             "dedup'd and stored-report requests are never charged)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=0, metavar="N",
        help="bound the admission queue at N waiting requests; excess "
             "load is shed with 503 + Retry-After (default: 0 = "
             "unbounded)",
    )
    serve.add_argument(
        "--no-resume", action="store_true",
        help="do not recover accepted-but-unserved requests from "
             "prior daemons' journals on startup",
    )

    sub.add_parser("models", help="list available training workloads")
    sub.add_parser("configs", help="list evaluated system configurations")
    sub.add_parser(
        "backends",
        help="list registered hardware backends and their configurations",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    observe = bool(args.timeline or args.trace_out)
    try:
        report = api.simulate(
            args.model,
            args.config,
            args.steps if args.steps is not None else 3,
            batch_size=args.batch_size,
            frequency_scale=args.frequency_scale,
            observe=observe,
            validate=bool(args.validate) or None,
            surrogate=bool(args.surrogate),
            backend=args.backend,
        )
    except UnknownBackendError as exc:
        # mirror the cache-stats missing-state UX: names, no traceback
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except InvariantViolation as exc:
        print(f"validation FAILED: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        # e.g. a configuration name the chosen backend does not have
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = report.result
    b = result.step_breakdown
    surrogate = report.surrogate
    if surrogate is not None and surrogate["mode"] == "exact":
        print(f"surrogate unavailable ({surrogate['reason']}); "
              "simulated exactly", file=sys.stderr)
    print(f"{args.model} on {result.config_name} "
          f"(PLL {args.frequency_scale:g}x, {result.steps} steps)")
    if surrogate is not None and surrogate["mode"] == "surrogate":
        bands = surrogate["bands"]
        print("  ESTIMATED by the cost surrogate (no simulation ran); "
              "declared error bands:")
        print(f"    step time +/-{bands['step_time_rel']:.1%}, "
              f"dynamic energy +/-{bands['dynamic_energy_rel']:.1%}, "
              f"total energy +/-{bands['total_energy_rel']:.1%}")
    print(f"  step time          {result.step_time_s * 1e3:10.3f} ms")
    print(f"    operation        {b.operation_s * 1e3:10.3f} ms")
    print(f"    data movement    {b.data_movement_s * 1e3:10.3f} ms")
    print(f"    synchronization  {b.sync_s * 1e3:10.3f} ms")
    print(f"  dynamic energy     {result.step_dynamic_energy_j:10.3f} J/step")
    print(f"  average power      {result.average_power_w:10.1f} W")
    print(f"  EDP                {result.edp():10.5f} J*s")
    print(f"  pool utilization   {result.fixed_pim_utilization:10.0%}")
    busy = report.device_busy_fraction
    if busy:
        lanes = "  ".join(f"{d} {f:.0%}" for d, f in busy.items())
        print(f"  device busy        {lanes}")
    if report.validation is not None:
        checked = len(report.validation.get("invariants", ()))
        print(f"  validation         {checked} invariants ok "
              f"(cache {report.validation.get('cache_equivalence')})")
    if args.trace_out:
        n = report.save_trace(args.trace_out)
        print(f"  trace              {n} events -> {args.trace_out}")
    if args.timeline and report.timeline is not None:
        print()
        print(report.timeline.render())
    if args.report_out:
        from pathlib import Path

        from .experiments.common import write_atomic

        text = api.canonical_report(report).to_json() + "\n"
        write_atomic(Path(args.report_out), text)
        print(f"  report             -> {args.report_out}", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    profile = WorkloadProfiler().profile(build_model(args.model))
    print(f"{args.model}: step {profile.step_time_s:.3f} s, "
          f"{profile.total_memory_bytes / GB:.2f} GB main-memory traffic")
    print(f"\n{'op type':32s} {'time%':>7s} {'mem%':>7s} {'#inv':>5s}")
    for t in profile.top_compute(args.top):
        print(f"{t.op_type:32s} {t.time_share:7.1%} "
              f"{t.memory_share:7.1%} {t.invocations:5d}")
    return 0


def _run_journaled_experiment(experiment_id: str, journal) -> int:
    """Run one experiment module under a journal; artifact on stdout,
    supervision/progress on stderr."""
    from .experiments import runner

    module = getattr(experiments, experiment_id)
    try:
        with runner.attach_journal(journal):
            module.main()
    except Interrupted:
        print(
            f"interrupted — completed jobs are journaled and cached; "
            f"resume with: repro resume {journal.run_id}",
            file=sys.stderr,
        )
        return 130
    except PoisonJob as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    journal.record_event("complete")
    supervision = runner.last_supervision()
    if supervision is not None:
        print(f"batch: {supervision.summary()}", file=sys.stderr)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments.journal import RunJournal

    try:
        journal = RunJournal.create(
            "experiment", {"id": args.id}, run_id=args.run_id
        )
    except ExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"run id: {journal.run_id}", file=sys.stderr)
    use_surrogate = bool(getattr(args, "surrogate", False))
    if use_surrogate:
        print(
            "surrogate mode: per-run numbers are estimates with error "
            "bands, not exact simulations",
            file=sys.stderr,
        )
    from .experiments import compare
    from .experiments.common import set_surrogate

    prior = set_surrogate(use_surrogate)
    prior_small = compare.set_small(bool(getattr(args, "steps_small", False)))
    try:
        return _run_journaled_experiment(args.id, journal)
    finally:
        set_surrogate(prior)
        compare.set_small(prior_small)
        journal.close()


def _cmd_resume(args: argparse.Namespace) -> int:
    from .experiments.journal import RunJournal, latest_run_id

    run_id = args.run_id if args.run_id is not None else latest_run_id()
    if run_id is None:
        print(
            "error: no journaled runs to resume — start one with "
            "'repro experiment <id>' first",
            file=sys.stderr,
        )
        return 1
    try:
        journal = RunJournal.load(run_id)
    except ExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    header = journal.header
    if header.get("kind") != "experiment":
        print(
            f"error: journal {run_id!r} is a {header.get('kind')!r} run, "
            "not a resumable experiment",
            file=sys.stderr,
        )
        return 1
    experiment_id = header["spec"]["id"]
    if experiment_id not in EXPERIMENT_IDS:
        print(
            f"error: journal {run_id!r} names unknown experiment "
            f"{experiment_id!r}",
            file=sys.stderr,
        )
        return 1
    done = len(journal.completed_fingerprints())
    state = "complete" if journal.is_complete() else "incomplete"
    print(
        f"resuming {run_id}: experiment {experiment_id} "
        f"({state}, {done} jobs journaled done — cache makes them free)",
        file=sys.stderr,
    )
    try:
        return _run_journaled_experiment(experiment_id, journal)
    finally:
        journal.close()


def _cmd_cache(args: argparse.Namespace) -> int:
    from .sim import cache as sim_cache

    if args.cache_command == "stats":
        cache_path = sim_cache.cache_dir()
        usage = sim_cache.disk_usage()
        if usage["disk_entries"] == 0:
            state = "missing" if not cache_path.is_dir() else "empty"
            print(
                f"error: result cache at {cache_path} is {state} — run a "
                "simulation first (e.g. 'repro run alexnet') or point "
                "REPRO_CACHE_DIR at an existing cache",
                file=sys.stderr,
            )
            return 1
        print(f"cache dir     {cache_path}")
        print(f"disk entries  {usage['disk_entries']}")
        print(f"disk bytes    {usage['disk_bytes']}")
        for key, value in sorted(sim_cache.stats().items()):
            print(f"{key:13s} {value}")
        tenants = sim_cache.tenant_disk_usage()
        if tenants["tenants"]:
            # entries referenced by several tenants are counted once in
            # the union/shared lines — per-tenant rows overlap by design
            print("tenants:")
            for name, row in sorted(tenants["tenants"].items()):
                print(f"  {name:15s} {row['entries']:6d} entries "
                      f"{row['bytes']:12d} bytes")
            print(f"  {'(shared)':15s} {tenants['shared_entries']:6d} entries "
                  f"{tenants['shared_bytes']:12d} bytes "
                  "(referenced by >1 tenant; counted once below)")
            print(f"  {'(union)':15s} {tenants['union_entries']:6d} entries "
                  f"{tenants['union_bytes']:12d} bytes")
        return 0
    if args.cache_command == "prune":
        outcome = sim_cache.prune(args.max_bytes)
        print(
            f"pruned {outcome['removed_entries']} entries "
            f"({outcome['removed_bytes']} bytes); "
            f"kept {outcome['kept_entries']} entries "
            f"({outcome['kept_bytes']} bytes) <= {args.max_bytes}"
        )
        return 0
    if args.cache_command == "fsck":
        from .sim import fsck as fsck_mod

        report = fsck_mod.fsck(repair=args.repair)
        print(fsck_mod.to_json(report) if args.json else fsck_mod.render(report))
        return 0 if fsck_mod.clean(report) else 1
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.format == "chrome":
        report = api.simulate(
            args.model, args.config, args.steps, observe=True
        )
        n = report.save_trace(args.output)
        print(f"wrote {n} trace events ({args.steps} steps of {args.model} "
              f"on {report.config_name}) to {args.output}")
        return 0
    graph = build_model(args.model)
    n = export_trace(graph, args.steps, args.output)
    print(f"wrote {n} task records ({args.steps} steps of {args.model}) "
          f"to {args.output}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .faults import FaultSpec
    from .hardware.hmc import StackGeometry

    baseline = api.simulate(args.model, args.config, args.steps)
    if args.spec is not None:
        spec = FaultSpec.from_json(Path(args.spec).read_text())
    else:
        system, _policy = api.resolve_configuration(args.config)
        spec = FaultSpec.generate(
            seed=args.seed,
            horizon_s=baseline.makespan_s,
            n_events=args.events,
            banks=len(StackGeometry(system.stack).banks),
            pool_units=system.fixed_pim.n_units,
            prog_pims=system.prog_pim.n_pims,
        )
    faulted = api.simulate(
        args.model,
        args.config,
        args.steps,
        faults=spec,
        observe=bool(args.trace_out),
    )
    counts = faulted.fault_counts
    base_t, fault_t = baseline.step_time_s, faulted.step_time_s
    base_e = baseline.step_dynamic_energy_j
    fault_e = faulted.step_dynamic_energy_j
    print(f"{args.model} on {faulted.config_name} "
          f"({faulted.steps} steps, {len(spec.events)} injected faults)")
    print(f"  step time   {base_t * 1e3:10.3f} ms -> {fault_t * 1e3:10.3f} ms "
          f"({(fault_t / base_t - 1):+8.1%})")
    print(f"  energy/step {base_e:10.3f} J  -> {fault_e:10.3f} J  "
          f"({(fault_e / base_e - 1):+8.1%})")
    print(f"  recovery    {counts['retries']} retries, "
          f"{counts['degradations']} degradations, "
          f"{counts['reselections']} offload re-selections")
    for event in spec.events:
        print(f"    t={event.time_s * 1e3:9.3f} ms  {event!r}")
    if args.trace_out:
        n = faulted.save_trace(args.trace_out)
        print(f"  trace       {n} events -> {args.trace_out}")
    return 0


def _cmd_surrogate(args: argparse.Namespace) -> int:
    from .surrogate import evaluate_from_cache, model_path, train_from_cache
    from .surrogate.model import TARGETS

    if args.surrogate_command == "train":
        model, misses = train_from_cache()
        meta = model.meta
        print(f"trained on {meta['rows']} cached runs -> {model_path()}")
        for target in TARGETS:
            head = model.heads[target]
            print(f"  {target:24s} in-sample mean "
                  f"{head['insample_mean_rel']:.2%}, "
                  f"LOO mean {head['loo_mean_rel']:.2%}, "
                  f"band +/-{head['band_key_rel']:.1%}")
        if misses:
            print(f"  ({len(misses)} training points not cached — run "
                  "'repro experiment summary' to add them)",
                  file=sys.stderr)
        return 0
    if args.surrogate_command == "eval":
        outcome = evaluate_from_cache()
        print(f"evaluated on {outcome['rows']} cached runs")
        ok = True
        for target, agg in outcome["aggregate"].items():
            within = "yes" if agg["within_band"] else "NO"
            print(f"  {target:24s} mean {agg['mean_rel_error']:.2%}, "
                  f"max {agg['max_rel_error']:.2%}, "
                  f"band +/-{agg['band_rel']:.1%}, within band: {within}")
            if agg["mean_rel_error"] > 0.05 or not agg["within_band"]:
                ok = False
        print("PASS (mean error <= 5%, all points within declared bands)"
              if ok else
              "FAIL (mean error > 5% or a point outside its declared band)")
        return 0 if ok else 2
    raise AssertionError(
        f"unhandled surrogate command {args.surrogate_command!r}"
    )


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validate import EVAL_MODELS, FAST_MODELS, evaluate, failures

    if args.models:
        models = tuple(args.models)
    else:
        models = EVAL_MODELS if args.full else FAST_MODELS
    print(
        f"fidelity gate: {', '.join(models)} over Fig 8/9/Table 1 "
        "golden bands",
        file=sys.stderr,
    )
    findings = evaluate(models)
    failed = failures(findings)
    for finding in findings:
        if finding.ok and args.quiet:
            continue
        print(finding.render())
    print(
        f"{len(findings) - len(failed)}/{len(findings)} fidelity checks "
        "within tolerance"
    )
    _print_surrogate_bands()
    if failed:
        print(
            f"error: {len(failed)} golden band(s) violated — see "
            "docs/architecture.md §11 for the tolerance policy",
            file=sys.stderr,
        )
        return 1
    return 0


def _print_surrogate_bands() -> None:
    """Print the trained surrogate's declared error bands next to the
    golden-band verdicts (so one gate shows both tolerances); a missing
    model only notes itself on stderr."""
    from .surrogate import SurrogateUnavailable, load_model
    from .surrogate.model import TARGETS

    try:
        model = load_model()
    except SurrogateUnavailable as exc:
        print(f"surrogate error bands: none ({exc})", file=sys.stderr)
        return
    bands = ", ".join(
        f"{t} +/-{model.band_rel(t):.1%}" for t in TARGETS
    )
    print(f"surrogate error bands (leave-one-out, declared): {bands}")


def _parse_quota(text: Optional[str]) -> tuple:
    """Parse ``--quota RATE[:BURST]`` into ``(rate, burst)``."""
    if text is None:
        return 0.0, None
    raw_rate, sep, raw_burst = text.partition(":")
    try:
        rate = float(raw_rate)
        burst = float(raw_burst) if sep else None
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a quota: {text!r} (use RATE or RATE:BURST, e.g. 2 or 2:10)"
        )
    if rate <= 0:
        raise argparse.ArgumentTypeError(
            f"quota rate must be > 0, got {raw_rate!r}"
        )
    if burst is not None and burst < 1:
        raise argparse.ArgumentTypeError(
            f"quota burst must be >= 1, got {raw_burst!r}"
        )
    return rate, burst


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import ServeDaemon

    try:
        rate, burst = _parse_quota(args.quota)
    except argparse.ArgumentTypeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def announce(daemon: ServeDaemon) -> None:
        quota = f"{rate:g}/s" if rate else "unlimited"
        print(
            f"repro serve listening on {daemon.host}:{daemon.port} "
            f"({daemon.workers} workers, quota {quota}, "
            f"{daemon.stats.recovered} requests recovered)",
            file=sys.stderr,
            flush=True,
        )

    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        workers=args.workers,
        quota_rate=rate,
        quota_burst=burst,
        max_queue=args.max_queue,
        resume=not args.no_resume,
        on_start=announce,
    )
    try:
        asyncio.run(daemon.run())
    except OSError as exc:  # e.g. port already bound
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("repro serve drained and stopped", file=sys.stderr)
    return 0


def _set_sigint(handler) -> None:
    """Best-effort SIGINT handler swap (no-op off the main thread)."""
    try:
        signal.signal(signal.SIGINT, handler)
    except (ValueError, OSError):
        pass


def main(argv: Optional[List[str]] = None) -> int:
    # Pin the default KeyboardInterrupt handler so an inherited SIG_IGN
    # (some CI runners) cannot make Ctrl-C a no-op, and the exit path
    # below is the only SIGINT story this process has.
    _set_sigint(signal.default_int_handler)
    args = _build_parser().parse_args(argv)
    if args.jobs is not None:
        from .experiments import runner

        runner.set_jobs(args.jobs)
    try:
        code = _dispatch(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        code = 130
    # Dispatch is done and the exit code is decided: shield interpreter
    # teardown (atexit hooks, executor joins) so a late signal from a
    # driver that double-taps Ctrl-C cannot flip a clean exit into a
    # raw -SIGINT death.
    _set_sigint(signal.SIG_IGN)
    return code


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "validate":
        try:
            return _cmd_validate(args)
        except (InvariantViolation, FidelityError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.command == "surrogate":
        from .surrogate import SurrogateUnavailable

        try:
            return _cmd_surrogate(args)
        except SurrogateUnavailable as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.command == "models":
        print("\n".join(available_models()))
        return 0
    if args.command == "configs":
        print("\n".join(list(CONFIGURATION_ORDER) + ["neurocube"]))
        return 0
    if args.command == "backends":
        return _cmd_backends()
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_backends() -> int:
    from .hardware import registry

    for name in registry.list_backends():
        descriptor = registry.get(name).describe()
        configs = ", ".join(descriptor.configurations)
        default = descriptor.default_configuration
        print(f"{name}")
        print(f"  {descriptor.description}")
        print(f"  configurations: {configs} (default: {default})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
