"""System configuration for the heterogeneous-PIM reproduction.

Two classes of constants live here (see DESIGN.md section 5):

* **Structural constants taken from the paper**: 444 fixed-function PIMs, 32
  memory banks, 312.5 MHz HMC 2.0 base frequency, a 4-core 2 GHz in-order ARM
  Cortex-A9 programmable PIM, the Xeon E5-2630 v3 host, the GTX 1080 Ti
  comparison GPU and its per-model utilizations (paper section V-D), and the
  x = 90% offload-coverage threshold of the runtime selection algorithm.

* **Calibrated constants**: effective throughputs, bandwidths, per-event
  overheads and energy coefficients.  The paper derives absolute numbers from
  RTL synthesis (Synopsys DC/PrimeTime) and real-machine measurements that
  cannot be rerun here; these constants are tuned so the *relative* results
  land inside the bands the paper reports (DESIGN.md section 4).  The most
  important calibrated value is ``FixedPIMConfig.simd_width``: the paper
  models each fixed-function PIM as a multiplier+adder pair, but the
  throughput implied by its end-to-end results requires each pair to process
  a short vector per cycle; we make that lane width explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from .errors import HardwareConfigError
from .units import GB, GB_S, GHZ, MHZ, US


@dataclass(frozen=True)
class CPUConfig:
    """Host processor model (paper Table IV: Intel Xeon E5-2630 v3)."""

    name: str = "Xeon E5-2630 v3"
    cores: int = 8
    frequency_hz: float = 2.4 * GHZ
    #: Effective FLOP/s for well-blocked dense kernels.  Peak AVX2 FMA on
    #: the 8-core Haswell is 614 GFLOP/s; MKL reaches ~80% on large GEMMs.
    #: Per-op-type TensorFlow kernel efficiencies (repro.nn.ops) scale this
    #: down for everything that is not a well-blocked forward kernel.
    effective_flops: float = 500e9
    #: Effective main-memory bandwidth available to one streaming operation.
    mem_bandwidth: float = 24 * GB_S
    #: Throughput penalty for "other" (non multiply-add) work relative to
    #: MAC work; branches and transcendental functions are slower.
    other_flop_penalty: float = 2.0
    dynamic_power_w: float = 45.0
    static_power_w: float = 23.0

    @property
    def effective_flops_per_core(self) -> float:
        return self.effective_flops / self.cores


@dataclass(frozen=True)
class GPUConfig:
    """Discrete GPU model (paper Table IV: NVIDIA GTX 1080 Ti)."""

    name: str = "GTX 1080 Ti"
    peak_flops: float = 11.3e12
    #: FLOP efficiency achieved *within* utilized periods (cuDNN kernels do
    #: not run at peak even when the SMs are busy).
    achieved_efficiency: float = 1.0
    mem_bandwidth: float = 484 * GB_S
    #: Host-device interconnect used for minibatch staging.
    pcie_bandwidth: float = 12 * GB_S
    #: Fraction of each step's host-device traffic *not* hidden behind
    #: computation (the paper's breakdown shows only the exposed part).
    exposed_transfer_fraction: float = 0.35
    #: Device-memory capacity; models whose per-step resident working set
    #: exceeds it swap activations over PCIe each step (vDNN-style).
    memory_bytes: float = 11 * GB  # capacities are binary; bandwidths (_S) decimal
    #: Fraction of swap traffic not hidden behind computation.
    exposed_swap_fraction: float = 0.35
    kernel_launch_overhead_s: float = 8 * US
    dynamic_power_w: float = 190.0
    static_power_w: float = 55.0
    #: Average utilization per training model measured by the authors
    #: (paper section V-D).  Models absent from the dict use ``default``.
    utilization: Dict[str, float] = field(
        default_factory=lambda: {
            "inception-v3": 0.62,
            "resnet-50": 0.44,
            "alexnet": 0.30,
            "vgg-19": 0.63,
            "dcgan": 0.28,
            "default": 0.45,
        }
    )

    def utilization_for(self, model_name: str) -> float:
        return self.utilization.get(model_name, self.utilization["default"])


@dataclass(frozen=True)
class StackConfig:
    """3D die-stacked memory (HMC 2.0 parameters, paper section V-A)."""

    banks: int = 32
    #: HMC 2.0 specification frequency, also the PIM working frequency.
    base_frequency_hz: float = 312.5 * MHZ
    #: Frequency multiplier applied by the PLL (paper section VI-D studies
    #: 1x / 2x / 4x).
    frequency_scale: float = 1.0
    #: Aggregate internal bandwidth available to in-stack compute at 1x.
    internal_bandwidth: float = 320 * GB_S
    #: Energy of an in-stack access vs. an off-chip CPU<->DRAM access.
    internal_pj_per_byte: float = 6.0
    #: DRAM-array activity power while in-stack compute keeps banks open
    #: (beyond the per-byte transfer energy).
    active_power_w: float = 8.0
    external_pj_per_byte: float = 22.0
    background_power_w: float = 6.0

    @property
    def frequency_hz(self) -> float:
        return self.base_frequency_hz * self.frequency_scale

    @property
    def bandwidth(self) -> float:
        """Internal bandwidth of the DRAM arrays.

        The PLL scales the logic-die clock (PIM compute); the DRAM banks
        themselves do not speed up, so in-stack bandwidth is flat across
        the frequency study — one reason the paper's gains from frequency
        scaling are sublinear.
        """
        return self.internal_bandwidth


@dataclass(frozen=True)
class FixedPIMConfig:
    """Pool of fixed-function PIMs (multiplier + adder pairs).

    The paper distributes 444 pairs over the 32 banks of the logic die
    (section IV-D).  ``simd_width`` is the calibrated per-pair vector lane
    count (see module docstring).
    """

    n_units: int = 444
    #: Per-unit streaming-port share is a hardware property of the bank
    #: interface, sized for the reference 444-unit design: one unit can
    #: stream at most ``stack.bandwidth / reference_units`` regardless of
    #: how many units a configuration instantiates.
    reference_units: int = 444
    simd_width: int = 32
    #: MACs retired per lane per cycle (a pair = one multiply + one add).
    macs_per_lane_cycle: float = 1.0
    #: Per-unit power at the base clock (area/power DSE); consistent with
    #: ``pj_per_mac`` x ``simd_width`` x 312.5 MHz.
    mw_per_unit: float = 120.0
    #: Energy per multiply-accumulate (32-bit FP pair incl. local SRAM
    #: traffic).  Work-based: at constant voltage the energy of one MAC
    #: does not change with the PLL setting — power rises with frequency
    #: because the same work completes sooner.
    pj_per_mac: float = 12.0
    area_mm2_per_unit: float = 0.055
    #: Host-initiated kernel launch / completion-sync latency.
    host_launch_overhead_s: float = 25 * US
    #: Launch from the programmable PIM (recursive kernel): in-stack, cheap.
    pim_launch_overhead_s: float = 0.6 * US
    #: MACs per loadable fixed-function sub-kernel: the pool executes
    #: fine-grained micro-kernels ("frequent operation-spawning", section
    #: II-C), so a large MAC core dispatches macs/quota launches — cheap
    #: from the programmable PIM, expensive as host round trips.
    subkernel_macs: float = 50e6

    def macs_per_second(self, frequency_hz: float, units: int) -> float:
        """Aggregate MAC throughput of ``units`` pairs at ``frequency_hz``."""
        if units < 0 or units > self.n_units:
            raise HardwareConfigError(
                f"requested {units} fixed-function units, pool has {self.n_units}"
            )
        return units * self.simd_width * self.macs_per_lane_cycle * frequency_hz


@dataclass(frozen=True)
class ProgPIMConfig:
    """Programmable PIM: ARM Cortex-A9, four 2 GHz in-order cores."""

    name: str = "ARM Cortex-A9"
    n_pims: int = 1
    cores_per_pim: int = 4
    frequency_hz: float = 2.0 * GHZ
    #: Sustained NEON FLOPs per core per cycle (in-order A9).
    flops_per_core_cycle: float = 4.0
    #: In-order cores handle branchy "other" work relatively well compared
    #: to their MAC throughput; penalty < CPU's.
    other_flop_penalty: float = 1.5
    dynamic_power_w_per_pim: float = 9.0
    area_mm2_per_pim: float = 4.4
    host_launch_overhead_s: float = 25 * US
    sync_overhead_s: float = 1.2 * US

    @property
    def flops(self) -> float:
        """Aggregate FLOP/s across all programmable PIMs."""
        return (
            self.n_pims
            * self.cores_per_pim
            * self.frequency_hz
            * self.flops_per_core_cycle
        )


@dataclass(frozen=True)
class RuntimeConfig:
    """Software runtime parameters (paper section III-C)."""

    #: The selection algorithm offloads top global-index operations covering
    #: this fraction of one profiled step's execution time (x = 90).
    offload_coverage: float = 0.90
    #: Recursive PIM kernel calls (RC) enabled.
    recursive_kernels: bool = True
    #: Operation pipeline (OP) across steps enabled.
    operation_pipeline: bool = True
    #: Number of future steps the pipeline may draw backfill work from.
    pipeline_depth: int = 1
    #: Number of simulated steps per measurement (steady state).
    measured_steps: int = 3
    #: CPU-side executor slots for concurrent operations (inter-op
    #: parallelism of the host runtime).
    cpu_slots: int = 2
    #: A candidate operation falls back from a busy PIM to the CPU only if
    #: its profiled CPU time is within this factor of its PIM time —
    #: principle 2's "avoid CPU idling" without moving 100x-slower work to
    #: the host (the runtime knows both costs from step-1 profiling).
    cpu_fallback_slowdown_limit: float = 4.0


@dataclass(frozen=True)
class SystemConfig:
    """Complete system: host + GPU + 3D stack with heterogeneous PIMs."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    gpu: GPUConfig = field(default_factory=GPUConfig)
    stack: StackConfig = field(default_factory=StackConfig)
    fixed_pim: FixedPIMConfig = field(default_factory=FixedPIMConfig)
    prog_pim: ProgPIMConfig = field(default_factory=ProgPIMConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    #: Hardware backend this configuration belongs to (a name registered in
    #: :mod:`repro.hardware.registry`).  Participates in cache/optable
    #: fingerprints so two backends with numerically identical sub-configs
    #: never share cached results.
    backend: str = "hmc-hetero"

    def with_backend(self, backend: str) -> "SystemConfig":
        """Return a copy tagged as belonging to ``backend``."""
        return replace(self, backend=backend)

    def with_frequency_scale(self, scale: float) -> "SystemConfig":
        """Return a copy with the PIM/stack PLL set to ``scale`` (1, 2, 4)."""
        if scale <= 0:
            raise HardwareConfigError(f"frequency scale must be positive: {scale}")
        return replace(self, stack=replace(self.stack, frequency_scale=scale))

    def with_stacks(self, n_stacks: int) -> "SystemConfig":
        """Return a copy scaled to ``n_stacks`` memory stacks.

        An extension beyond the paper's single-stack evaluation: each
        additional stack contributes its own logic die (another 444
        fixed-function units and another programmable PIM), its own
        internal bandwidth, and its own background power.  The host-side
        runtime and CPU are shared.
        """
        if n_stacks < 1:
            raise HardwareConfigError("at least one memory stack is required")
        return replace(
            self,
            stack=replace(
                self.stack,
                internal_bandwidth=self.stack.internal_bandwidth * n_stacks,
                background_power_w=self.stack.background_power_w * n_stacks,
                active_power_w=self.stack.active_power_w * n_stacks,
            ),
            fixed_pim=replace(
                self.fixed_pim,
                n_units=self.fixed_pim.n_units * n_stacks,
                reference_units=self.fixed_pim.reference_units * n_stacks,
            ),
            prog_pim=replace(
                self.prog_pim, n_pims=self.prog_pim.n_pims * n_stacks
            ),
        )

    def with_prog_pims(self, n_pims: int, area_trade_units: int = 8) -> "SystemConfig":
        """Return a copy with ``n_pims`` programmable PIMs at constant area.

        The logic-die area is fixed (paper section VI-D): every programmable
        PIM beyond the first displaces ``area_trade_units`` fixed-function
        pairs.
        """
        if n_pims < 1:
            raise HardwareConfigError("at least one programmable PIM is required")
        displaced = (n_pims - 1) * area_trade_units
        remaining = self.fixed_pim.n_units - displaced
        if remaining <= 0:
            raise HardwareConfigError(
                f"{n_pims} programmable PIMs displace all fixed-function units"
            )
        return replace(
            self,
            prog_pim=replace(self.prog_pim, n_pims=n_pims),
            fixed_pim=replace(self.fixed_pim, n_units=remaining),
        )

    @property
    def pim_frequency_hz(self) -> float:
        """Working frequency of the fixed-function PIMs (= stack clock)."""
        return self.stack.frequency_hz

    @property
    def prog_pim_frequency_hz(self) -> float:
        """Programmable-PIM clock; scales with the same PLL as the stack."""
        return self.prog_pim.frequency_hz * self.stack.frequency_scale

    def fixed_pool_macs_per_second(self, units: int | None = None) -> float:
        n = self.fixed_pim.n_units if units is None else units
        return self.fixed_pim.macs_per_second(self.pim_frequency_hz, n)


#: Frequency-scaling design points studied in the paper (section VI-D).
FREQUENCY_SCALES: Tuple[float, ...] = (1.0, 2.0, 4.0)

#: Programmable-PIM scaling design points (1P / 4P / 16P, section VI-D).
PROG_PIM_COUNTS: Tuple[int, ...] = (1, 4, 16)


def default_config() -> SystemConfig:
    """The paper's baseline system configuration."""
    return SystemConfig()
