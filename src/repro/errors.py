"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed dataflow graphs (cycles, dangling tensors, ...)."""


class ShapeError(GraphError):
    """Raised when tensor shapes are inconsistent with an operation."""


class UnknownOpError(GraphError):
    """Raised when an operation type is not present in the op registry."""


class UnclassifiedOpError(ReproError):
    """Raised in strict classification when profiled op types have no
    flop-count entry (Figure 2 would silently bucket them as zero-flop).

    Attributes:
        op_types: The sorted tuple of unclassifiable op type names.
    """

    def __init__(self, op_types):
        self.op_types = tuple(sorted(op_types))
        names = ", ".join(self.op_types)
        super().__init__(
            f"cannot classify op types without flop counts: {names}; "
            "pass strict=False to classify them as CPU fallback"
        )


class HardwareConfigError(ReproError):
    """Raised for physically inconsistent hardware configurations."""


class BackendError(HardwareConfigError):
    """Raised by the hardware-backend registry (:mod:`repro.hardware.registry`)."""


class UnknownBackendError(BackendError):
    """Raised when a backend name is not registered.

    Carries the ``available`` names so CLIs can print them instead of a
    traceback (mirroring the missing-cache-state behavior).
    """

    def __init__(self, name: str, available=()):
        self.backend = name
        self.available = tuple(available)
        listing = ", ".join(self.available) if self.available else "none"
        super().__init__(
            f"unknown hardware backend {name!r} — registered backends: {listing}"
        )


class DuplicateBackendError(BackendError):
    """Raised when a backend name is registered twice.

    Re-registering a name would silently reroute every simulation keyed on
    it; plugins must pick a fresh name (or ``unregister`` first).
    """


class PlacementError(HardwareConfigError):
    """Raised when fixed-function PIM placement violates the bank budget."""


class SchedulingError(ReproError):
    """Raised when the runtime scheduler reaches an inconsistent state."""


class SimulationError(ReproError):
    """Raised by the discrete-event engine for invalid event sequences."""


class InvariantViolation(SimulationError):
    """Raised when a simulation breaks a conservation/consistency invariant.

    The runtime invariant checker (:mod:`repro.validate`) asserts
    accounting laws over every validated run — busy fractions in [0, 1],
    the occupancy histogram summing to the makespan, energy components
    summing to the total, dependence-ordered starts, quiescent devices at
    completion, cache/fresh equivalence.  A violation names the broken
    ``invariant`` and the offending ``subject`` (op uid, device lane or
    field) so the failure is actionable, not a bare assert.
    """

    def __init__(self, invariant: str, subject: str, detail: str):
        super().__init__(f"invariant {invariant!r} violated by {subject}: {detail}")
        self.invariant = invariant
        self.subject = subject
        self.detail = detail


class FidelityError(ReproError):
    """Raised when a run's numbers drift outside the paper's golden bands.

    The paper-fidelity gate (:mod:`repro.validate.golden`) compares
    measured speedup/energy ratios against the paper-reported values with
    explicit per-figure tolerances; ``repro validate`` and
    ``tools/check_fidelity.py`` raise this when any check fails.
    """


class ProgrammingModelError(ReproError):
    """Raised for misuse of the extended-OpenCL programming model objects."""


class KernelBuildError(ProgrammingModelError):
    """Raised when kernel binary generation (code extraction) fails."""


class ExecutionError(ReproError):
    """Raised by the experiment execution layer (supervised pool, journal).

    Distinct from :class:`SimulationError`: these errors concern the
    *harness* that runs batches of simulations — worker processes, job
    scheduling, journaling — never the simulated hardware itself.
    """


class JobTimeout(ExecutionError):
    """Raised (and recorded) when a job exceeds the per-job watchdog
    timeout (``REPRO_JOB_TIMEOUT``) on every allowed attempt."""


class PoisonJob(ExecutionError):
    """Raised after a supervised batch completes with quarantined jobs.

    The batch itself finishes — every healthy job's result is cached and
    journaled — and then this error reports the jobs that exhausted their
    retry budget.  ``failures`` holds one
    :class:`~repro.experiments.runner.JobFailure` per quarantined job
    (fingerprint, failure kind, last exception, attempt count).
    """

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)


class Interrupted(ExecutionError):
    """Raised when a batch is interrupted (SIGINT/SIGTERM).

    Completed results are already flushed to the cache and journal when
    this propagates; ``run_id`` (when a journal was active) names the
    journal to pass to ``repro resume``.
    """

    def __init__(self, message: str, run_id=None):
        super().__init__(message)
        self.run_id = run_id


class CacheInconsistency(ExecutionError):
    """Raised when the result cache contradicts itself mid-batch — e.g. a
    job the runner just completed and stored cannot be read back."""


class CorruptObjectError(ReproError):
    """Raised when a stored artifact fails its integrity check.

    Covers disk-cache objects, journal lines and stored serve reports:
    the bytes on disk do not parse, or do not match their embedded
    sha256 checksum.  Carries the offending ``path`` and a one-line
    ``reason``.  Readers never serve the bytes: the cache quarantines
    the object (a counted, recomputable miss) and ``repro cache fsck
    --repair`` recomputes it from its embedded metadata.
    """

    def __init__(self, path, reason: str, fingerprint=None):
        super().__init__(f"corrupt object {path}: {reason}")
        self.path = str(path)
        self.reason = reason
        self.fingerprint = fingerprint


class CorruptJournalError(ExecutionError):
    """Raised by a strict journal load when an interior line is damaged.

    The tolerant default loader merely *counts* damaged lines
    (``RunJournal.corrupt_lines``) — a dropped ``done`` line only costs a
    recompute on resume — but auditors (``repro cache fsck``) load
    strictly so mid-file corruption is surfaced, not skipped.
    """


class ServeError(ReproError):
    """Raised by the simulation-as-a-service layer (:mod:`repro.serve`)."""


class ProtocolError(ServeError):
    """Raised for a malformed or invalid service request.

    Carries the HTTP ``status`` the daemon should answer with (400 for
    bad bodies/fields, 404 for unknown resources, and so on).
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class QuotaExceeded(ServeError):
    """Raised when a tenant's token bucket has no capacity left."""
