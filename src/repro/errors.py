"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed dataflow graphs (cycles, dangling tensors, ...)."""


class ShapeError(GraphError):
    """Raised when tensor shapes are inconsistent with an operation."""


class UnknownOpError(GraphError):
    """Raised when an operation type is not present in the op registry."""


class HardwareConfigError(ReproError):
    """Raised for physically inconsistent hardware configurations."""


class PlacementError(HardwareConfigError):
    """Raised when fixed-function PIM placement violates the bank budget."""


class SchedulingError(ReproError):
    """Raised when the runtime scheduler reaches an inconsistent state."""


class SimulationError(ReproError):
    """Raised by the discrete-event engine for invalid event sequences."""


class ProgrammingModelError(ReproError):
    """Raised for misuse of the extended-OpenCL programming model objects."""


class KernelBuildError(ProgrammingModelError):
    """Raised when kernel binary generation (code extraction) fails."""
