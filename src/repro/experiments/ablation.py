"""Shared RC/OP ablation runs for Figures 13, 14 and 15 (section VI-E).

The paper isolates the software impact by toggling the two runtime
techniques: recursive PIM kernel calls (RC) and the operation pipeline
(OP).  The same four Hetero-PIM variants feed the execution-time (Fig 13),
energy (Fig 14) and utilization (Fig 15) views; Figures 13/14 additionally
reference the Fixed-PIM and Progr-PIM hardware baselines.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..baselines import make_hetero_pim
from ..config import default_config
from ..sim.results import RunResult
from ..sim.simulation import simulate
from .common import cached_graph

#: (label, recursive_kernels, operation_pipeline), presentation order.
VARIANTS: Tuple[Tuple[str, bool, bool], ...] = (
    ("no RC/OP", False, False),
    ("RC", True, False),
    ("OP", False, True),
    ("RC+OP", True, True),
)

_cache: Dict[Tuple[str, str], RunResult] = {}


def run_variant(model: str, label: str) -> RunResult:
    """Simulate ``model`` under one RC/OP variant of Hetero PIM (cached)."""
    key = (model, label)
    if key not in _cache:
        settings = {name: (rc, op) for name, rc, op in VARIANTS}
        try:
            rc, op = settings[label]
        except KeyError:
            raise ValueError(
                f"unknown variant {label!r}; options: {sorted(settings)}"
            ) from None
        config, policy = make_hetero_pim(
            default_config(), recursive_kernels=rc, operation_pipeline=op
        )
        _cache[key] = simulate(cached_graph(model), policy, config)
    return _cache[key]


def run_all_variants(
    models: Tuple[str, ...]
) -> Dict[str, Dict[str, RunResult]]:
    return {
        model: {label: run_variant(model, label) for label, _rc, _op in VARIANTS}
        for model in models
    }
