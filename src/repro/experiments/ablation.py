"""Shared RC/OP ablation runs for Figures 13, 14 and 15 (section VI-E).

The paper isolates the software impact by toggling the two runtime
techniques: recursive PIM kernel calls (RC) and the operation pipeline
(OP).  The same four Hetero-PIM variants feed the execution-time (Fig 13),
energy (Fig 14) and utilization (Fig 15) views; Figures 13/14 additionally
reference the Fixed-PIM and Progr-PIM hardware baselines.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..baselines import make_hetero_pim
from ..config import default_config
from ..sim.results import RunResult
from . import runner
from .common import cached_graph

#: (label, recursive_kernels, operation_pipeline), presentation order.
VARIANTS: Tuple[Tuple[str, bool, bool], ...] = (
    ("no RC/OP", False, False),
    ("RC", True, False),
    ("OP", False, True),
    ("RC+OP", True, True),
)

_SETTINGS = {label: (rc, op) for label, rc, op in VARIANTS}


def _variant_job(model: str, label: str) -> runner.Job:
    try:
        rc, op = _SETTINGS[label]
    except KeyError:
        raise ValueError(
            f"unknown variant {label!r}; options: {sorted(_SETTINGS)}"
        ) from None
    config, policy = make_hetero_pim(
        default_config(), recursive_kernels=rc, operation_pipeline=op
    )
    return (cached_graph(model), policy, config, None)


def run_variant(model: str, label: str, exact: bool = False) -> RunResult:
    """Simulate ``model`` under one RC/OP variant of Hetero PIM (cached).

    In surrogate mode (:func:`repro.experiments.common.set_surrogate`)
    the aggregate step-time/energy targets come from the cost surrogate —
    the variant grid is part of its training set.  Pass ``exact=True``
    when the caller needs event-level fields estimates cannot carry
    (Figure 15 reads pool utilization).
    """
    from .common import run_job

    return run_job(*_variant_job(model, label), exact=exact)


def run_all_variants(
    models: Tuple[str, ...], exact: bool = False
) -> Dict[str, Dict[str, RunResult]]:
    from .common import surrogate_enabled

    if exact or not surrogate_enabled():
        # fan the (model x variant) grid over the worker pool; the
        # per-variant lookups below then hit the warm cache
        runner.run_jobs(
            [
                _variant_job(m, label)
                for m in models
                for label, _rc, _op in VARIANTS
            ]
        )
    return {
        model: {
            label: run_variant(model, label, exact=exact)
            for label, _rc, _op in VARIANTS
        }
        for model in models
    }
