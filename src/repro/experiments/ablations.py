"""Ablation sweeps over the co-design's load-bearing choices.

Beyond the paper's own sensitivity studies (Figures 11/12), these sweeps
quantify the design decisions DESIGN.md section 5 calls out:

* ``sweep_selection_coverage`` — the x% threshold of the candidate-selection
  algorithm (the paper fixes x = 90);
* ``sweep_pipeline_depth`` — how many future steps the operation pipeline
  may draw backfill work from;
* ``sweep_subkernel_granularity`` — the micro-kernel size that determines
  host-launch pressure (what RC amortizes);
* ``sweep_fallback_limit`` — the profile-aware CPU-fallback slowdown bound
  realizing scheduling principle 2;
* ``sweep_fixed_units`` — logic-die design space: pool sizes around the
  area-derived 444 units.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence, Tuple

from ..baselines import make_hetero_pim
from ..config import default_config
from ..sim.results import RunResult
from . import runner
from .common import cached_graph
from .report import TextTable, format_seconds


def _hetero_jobs(model: str, configs: Sequence, **policy_kwargs):
    """One runner job per base config (fresh policy each — prepare() is
    per-(graph, config))."""
    jobs = []
    for config in configs:
        cfg, policy = make_hetero_pim(config, **policy_kwargs)
        jobs.append((cached_graph(model), policy, cfg, None))
    return jobs


# ---------------------------------------------------------------------------
# sweeps
# ---------------------------------------------------------------------------
def sweep_selection_coverage(
    model: str = "alexnet",
    coverages: Sequence[float] = (0.5, 0.7, 0.9, 0.99),
) -> Dict[float, RunResult]:
    """Vary the x% offload-coverage threshold of section III-C."""
    configs = [
        replace(c, runtime=replace(c.runtime, offload_coverage=x))
        for x in coverages
        for c in (default_config(),)
    ]
    return dict(zip(coverages, runner.run_jobs(_hetero_jobs(model, configs))))


def sweep_pipeline_depth(
    model: str = "alexnet",
    depths: Sequence[int] = (0, 1, 2, 4),
) -> Dict[int, RunResult]:
    """Vary the cross-step lookahead of the operation pipeline."""
    configs = [
        replace(c, runtime=replace(c.runtime, pipeline_depth=depth))
        for depth in depths
        for c in (default_config(),)
    ]
    return dict(zip(depths, runner.run_jobs(_hetero_jobs(model, configs))))


def sweep_subkernel_granularity(
    model: str = "alexnet",
    quotas: Sequence[float] = (10e6, 50e6, 250e6, 1e12),
) -> Dict[float, Tuple[RunResult, RunResult]]:
    """Vary the loadable micro-kernel size; returns (with RC, without RC).

    Finer granularity inflates host-launch counts, which is precisely the
    overhead recursive kernels amortize — the gap between the pair widens
    as the quota shrinks.
    """
    configs = [
        replace(c, fixed_pim=replace(c.fixed_pim, subkernel_macs=quota))
        for quota in quotas
        for c in (default_config(),)
    ]
    with_rc = _hetero_jobs(model, configs, recursive_kernels=True)
    without = _hetero_jobs(model, configs, recursive_kernels=False)
    results = runner.run_jobs(with_rc + without)
    n = len(configs)
    return {
        quota: (results[i], results[n + i])
        for i, quota in enumerate(quotas)
    }


def sweep_fallback_limit(
    model: str = "alexnet",
    limits: Sequence[float] = (1.0, 2.0, 4.0, 16.0, 1e9),
) -> Dict[float, RunResult]:
    """Vary the profile-aware CPU-fallback slowdown bound (principle 2).

    A bound of ~1 forbids almost all host stealing; an unbounded limit
    reproduces the naive fallback that drags slow operations to the CPU.
    """
    configs = [
        replace(c, runtime=replace(c.runtime, cpu_fallback_slowdown_limit=limit))
        for limit in limits
        for c in (default_config(),)
    ]
    return dict(zip(limits, runner.run_jobs(_hetero_jobs(model, configs))))


def sweep_fixed_units(
    model: str = "alexnet",
    unit_counts: Sequence[int] = (111, 222, 444, 888),
) -> Dict[int, RunResult]:
    """Design-space sweep around the area-derived 444-unit pool."""
    configs = [
        replace(c, fixed_pim=replace(c.fixed_pim, n_units=units))
        for units in unit_counts
        for c in (default_config(),)
    ]
    return dict(
        zip(unit_counts, runner.run_jobs(_hetero_jobs(model, configs)))
    )


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def format_sweep(
    title: str, results: Dict, key_label: str
) -> str:
    table = TextTable([key_label, "Step time", "E_dyn (J)", "Pool util"])
    for key, result in results.items():
        if isinstance(result, tuple):  # (with RC, without RC)
            rc, no_rc = result
            table.add_row(
                key,
                f"{format_seconds(rc.step_time_s)} / "
                f"{format_seconds(no_rc.step_time_s)} (no RC)",
                rc.step_dynamic_energy_j,
                f"{rc.fixed_pim_utilization:.0%}",
            )
        else:
            table.add_row(
                key,
                format_seconds(result.step_time_s),
                result.step_dynamic_energy_j,
                f"{result.fixed_pim_utilization:.0%}",
            )
    return f"== {title} ==\n{table.render()}"


def run_all(model: str = "alexnet") -> str:
    """Run every ablation for one model and render the report."""
    blocks = [
        format_sweep(
            f"{model}: selection coverage (x%)",
            sweep_selection_coverage(model),
            "coverage",
        ),
        format_sweep(
            f"{model}: operation-pipeline depth",
            sweep_pipeline_depth(model),
            "depth",
        ),
        format_sweep(
            f"{model}: sub-kernel granularity (MACs/launch, RC vs no RC)",
            sweep_subkernel_granularity(model),
            "quota",
        ),
        format_sweep(
            f"{model}: CPU-fallback slowdown limit",
            sweep_fallback_limit(model),
            "limit",
        ),
        format_sweep(
            f"{model}: fixed-function pool size",
            sweep_fixed_units(model),
            "units",
        ),
    ]
    return "\n\n".join(blocks)


def main() -> str:
    text = run_all()
    print(text)
    return text


if __name__ == "__main__":
    main()
