"""Shared experiment plumbing: cached model builds and simulation runs."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..baselines import build_configuration, make_neurocube
from ..config import SystemConfig, default_config
from ..nn.graph import Graph
from ..nn.models import build_model
from ..sim.results import RunResult
from ..sim.simulation import simulate

#: The five CNN models of the main evaluation, in figure order.
EVAL_MODELS = ("vgg-19", "alexnet", "dcgan", "resnet-50", "inception-v3")

#: The five system configurations, in figure order.
EVAL_CONFIGS = ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim")

_graph_cache: Dict[Tuple[str, Optional[int]], Graph] = {}
_run_cache: Dict[Tuple, RunResult] = {}


def cached_graph(model: str, batch_size: Optional[int] = None) -> Graph:
    """Build (or fetch) the training-step graph for ``model``."""
    key = (model, batch_size)
    if key not in _graph_cache:
        _graph_cache[key] = build_model(model, batch_size)
    return _graph_cache[key]


def run_model_on(
    model: str,
    config_name: str,
    base: Optional[SystemConfig] = None,
    steps: Optional[int] = None,
    cache_key: Optional[Tuple] = None,
) -> RunResult:
    """Simulate ``model`` on one named configuration (cached).

    ``cache_key`` must uniquely identify any non-default ``base``; passing a
    modified config without a key disables caching for that run.
    """
    key = None
    if base is None:
        key = (model, config_name, steps)
    elif cache_key is not None:
        key = (model, config_name, steps) + tuple(cache_key)
    if key is not None and key in _run_cache:
        return _run_cache[key]
    if config_name == "neurocube":
        config, policy = make_neurocube(base if base is not None else default_config())
    else:
        config, policy = build_configuration(config_name, base)
    result = simulate(cached_graph(model), policy, config, steps=steps)
    if key is not None:
        _run_cache[key] = result
    return result


def clear_caches() -> None:
    """Drop cached graphs and runs (used by tests that mutate configs)."""
    _graph_cache.clear()
    _run_cache.clear()
