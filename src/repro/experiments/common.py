"""Shared experiment plumbing: cached model builds and simulation runs."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..baselines import build_configuration, make_neurocube
from ..config import SystemConfig, default_config
from ..nn.graph import Graph
from ..nn.models import build_model
from ..sim import cache as sim_cache
from ..sim.policy import SchedulingPolicy
from ..sim.results import RunResult

#: The five CNN models of the main evaluation, in figure order.
EVAL_MODELS = ("vgg-19", "alexnet", "dcgan", "resnet-50", "inception-v3")

#: The five system configurations, in figure order.
EVAL_CONFIGS = ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim")

_graph_cache: Dict[Tuple[str, Optional[int]], Graph] = {}


def cached_graph(model: str, batch_size: Optional[int] = None) -> Graph:
    """Build (or fetch) the training-step graph for ``model``."""
    key = (model, batch_size)
    if key not in _graph_cache:
        _graph_cache[key] = build_model(model, batch_size)
    return _graph_cache[key]


def resolve_configuration(
    config_name: str, base: Optional[SystemConfig] = None
) -> Tuple[SystemConfig, SchedulingPolicy]:
    """Instantiate a named configuration (``EVAL_CONFIGS`` or ``neurocube``)."""
    if config_name == "neurocube":
        return make_neurocube(base if base is not None else default_config())
    return build_configuration(config_name, base)


def run_model_on(
    model: str,
    config_name: str,
    base: Optional[SystemConfig] = None,
    steps: Optional[int] = None,
) -> RunResult:
    """Simulate ``model`` on one named configuration (cached).

    The cache key is a content fingerprint of the resolved (graph, policy,
    config, steps) — see :mod:`repro.sim.cache` — so modified ``base``
    configs are always cached and can never collide with the defaults.
    """
    config, policy = resolve_configuration(config_name, base)
    return sim_cache.simulate_cached(
        cached_graph(model), policy, config, steps=steps
    )


def clear_caches() -> None:
    """Drop cached graphs and simulation results (memory and disk tiers)."""
    _graph_cache.clear()
    sim_cache.clear()
