"""Shared experiment plumbing: cached model builds and simulation runs.

Thin delegation layer over :mod:`repro.api` — the experiments predate the
facade and keep their graph-level ``run_model_on`` (returning the cached
:class:`~repro.sim.results.RunResult`), while :func:`run_report_on`
exposes the report-level view for callers that want observability fields.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from .. import api
from ..api import cached_graph, clear_caches, resolve_configuration  # noqa: F401
from ..config import SystemConfig
from ..sim import cache as sim_cache
from ..sim.results import RunResult

#: The five CNN models of the main evaluation, in figure order.
EVAL_MODELS = ("vgg-19", "alexnet", "dcgan", "resnet-50", "inception-v3")

#: The five system configurations, in figure order.
EVAL_CONFIGS = ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim")

#: When true, :func:`run_model_on` answers from the learned cost surrogate
#: (:mod:`repro.surrogate`) where it can, falling back to exact simulation
#: per query.  Off by default: artifacts stay byte-identical unless the
#: user opts in (``repro experiment --surrogate``).
_SURROGATE = False


def set_surrogate(enabled: bool) -> bool:
    """Toggle surrogate-estimated experiment runs; returns the old value."""
    global _SURROGATE
    old = _SURROGATE
    _SURROGATE = bool(enabled)
    return old


def surrogate_enabled() -> bool:
    """Whether experiment runs currently answer from the surrogate."""
    return _SURROGATE


def run_model_on(
    model: str,
    config_name: str,
    base: Optional[SystemConfig] = None,
    steps: Optional[int] = None,
) -> RunResult:
    """Simulate ``model`` on one named configuration (cached).

    The cache key is a content fingerprint of the resolved (graph, policy,
    config, steps) — see :mod:`repro.sim.cache` — so modified ``base``
    configs are always cached and can never collide with the defaults.

    In surrogate mode (:func:`set_surrogate`) the answer is an *estimated*
    result from :func:`repro.surrogate.estimate_run` — microseconds
    instead of a simulation, flagged via ``metrics["surrogate.estimated"]``
    and never written to the result cache; queries the surrogate cannot
    answer fall back to the exact path.
    """
    config, policy = resolve_configuration(config_name, base)
    if _SURROGATE:
        from ..surrogate import SurrogateUnavailable, estimate_run

        try:
            return estimate_run(
                cached_graph(model), policy, config, steps=steps
            )
        except SurrogateUnavailable:
            pass
    return sim_cache.simulate_cached(
        cached_graph(model), policy, config, steps=steps
    )


def run_job(
    graph,
    policy,
    config: SystemConfig,
    steps: Optional[int] = None,
    exact: bool = False,
) -> RunResult:
    """Run one pre-resolved (graph, policy, config) job, cached.

    The raw-job counterpart of :func:`run_model_on` for experiments whose
    jobs are not zoo-model x named-config points (ablation variants,
    mixed-workload co-runs).  Honors surrogate mode the same way; pass
    ``exact=True`` when the caller reads event-level fields only the
    simulator produces.
    """
    if _SURROGATE and not exact:
        from ..surrogate import SurrogateUnavailable, estimate_run

        try:
            return estimate_run(graph, policy, config, steps=steps)
        except SurrogateUnavailable:
            pass
    return sim_cache.simulate_cached(graph, policy, config, steps=steps)


def write_atomic(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    Every experiment figure/table/summary/trace artifact goes through
    this helper: a kill at any instant leaves either the previous
    complete file or the new complete file on disk — never a truncated
    artifact.  The temp file lives in the target directory so the final
    rename stays on one filesystem (a cross-device rename is a copy, not
    atomic).
    """
    path = Path(path)
    parent = path.parent if str(path.parent) else Path(".")
    parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def run_report_on(
    model: str,
    config_name: str,
    base: Optional[SystemConfig] = None,
    steps: Optional[int] = None,
):
    """Like :func:`run_model_on`, but returns the :class:`RunReport` view."""
    if steps is None:
        config, _ = resolve_configuration(config_name, base)
        steps = config.runtime.measured_steps
    return api.simulate(model, config_name, steps, base=base)
