"""Experiment E-CMP — cross-architecture backend comparison.

Runs every evaluated model on each registered rival hardware backend
(:mod:`repro.hardware.backends`) and reports per-model step time and
dynamic energy normalized to the paper's ``hmc-hetero`` design — a
Fig 8/Fig 9-style table across *architectures* instead of across the one
architecture's configurations:

* speedup = rival step time / hmc-hetero step time (>1 means the paper's
  design is faster);
* energy ratio = rival dynamic energy / hmc-hetero dynamic energy (>1
  means the paper's design is more efficient).

Besides printing the table, ``main()`` writes the comparison as a JSON
artifact (``compare_backends.json``, or the path in
``$REPRO_COMPARE_OUT``); :func:`validate_payload` checks its shape — the
CI smoke job runs the small mode and validates the emitted file.

Small mode (``repro experiment compare --steps-small``) shrinks the grid
to two models at one step for smoke tests; its artifacts are not
comparable to full-mode ones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ReproError
from .common import EVAL_MODELS, run_job, write_atomic
from .report import TextTable, format_seconds
from .runner import run_jobs

#: Backends compared, reference architecture first (the normalizer).
COMPARE_BACKENDS = ("hmc-hetero", "gradpim", "neurotrainer")

#: Artifact schema version (bump on shape changes).
COMPARE_SCHEMA = 1

#: Small-mode grid: the two fastest-simulating models, one step.
SMALL_MODELS = ("alexnet", "dcgan")
SMALL_STEPS = 1

_SMALL = False


def set_small(enabled: bool) -> bool:
    """Toggle the smoke-test grid (``--steps-small``); returns the old
    value."""
    global _SMALL
    old = _SMALL
    _SMALL = bool(enabled)
    return old


@dataclass(frozen=True)
class CompareCell:
    """One (backend, model) measurement plus its hmc-hetero ratios."""

    backend: str
    model: str
    step_time_s: float
    dynamic_energy_j: float
    #: rival time / hmc-hetero time (1.0 on the reference backend).
    time_vs_hetero: float
    #: rival dynamic energy / hmc-hetero dynamic energy.
    energy_vs_hetero: float


def run(
    models: Optional[Tuple[str, ...]] = None,
    backends: Tuple[str, ...] = COMPARE_BACKENDS,
    steps: Optional[int] = None,
) -> Dict[str, Dict[str, CompareCell]]:
    """The comparison grid: ``result[backend][model]``."""
    from ..nn.models import MODERN_MODELS
    from .common import cached_graph, resolve_configuration

    if models is None:
        models = SMALL_MODELS if _SMALL else EVAL_MODELS + MODERN_MODELS
    if steps is None:
        steps = SMALL_STEPS if _SMALL else None
    if COMPARE_BACKENDS[0] not in backends:
        raise ReproError(
            f"comparison needs the reference backend "
            f"{COMPARE_BACKENDS[0]!r}; got {backends}"
        )

    from .common import surrogate_enabled

    resolved = {
        backend: resolve_configuration(None, backend=backend)
        for backend in backends
    }
    if not surrogate_enabled():
        # warm the cache in one supervised fan-out (journaled, resumable)
        run_jobs(
            [
                (cached_graph(model), policy, config, steps)
                for backend, (config, policy) in resolved.items()
                for model in models
            ]
        )

    out: Dict[str, Dict[str, CompareCell]] = {}
    reference: Dict[str, object] = {}
    for backend in backends:
        config, policy = resolved[backend]
        row: Dict[str, CompareCell] = {}
        for model in models:
            result = run_job(cached_graph(model), policy, config, steps)
            if backend == COMPARE_BACKENDS[0]:
                reference[model] = result
            ref = reference[model]
            row[model] = CompareCell(
                backend=backend,
                model=model,
                step_time_s=result.step_time_s,
                dynamic_energy_j=result.step_dynamic_energy_j,
                time_vs_hetero=result.step_time_s / ref.step_time_s,
                energy_vs_hetero=(
                    result.step_dynamic_energy_j / ref.step_dynamic_energy_j
                ),
            )
        out[backend] = row
    return out


def payload(result: Dict[str, Dict[str, CompareCell]]) -> Dict[str, object]:
    """JSON-ready artifact of one comparison grid."""
    backends = list(result)
    models = list(next(iter(result.values())))
    return {
        "schema": COMPARE_SCHEMA,
        "reference_backend": COMPARE_BACKENDS[0],
        "backends": backends,
        "models": models,
        "cells": [
            {
                "backend": cell.backend,
                "model": cell.model,
                "step_time_s": cell.step_time_s,
                "dynamic_energy_j": cell.dynamic_energy_j,
                "time_vs_hetero": cell.time_vs_hetero,
                "energy_vs_hetero": cell.energy_vs_hetero,
            }
            for row in result.values()
            for cell in row.values()
        ],
    }


def validate_payload(data: Dict[str, object]) -> Dict[str, object]:
    """Shape-check one comparison artifact; returns it, raises
    :class:`~repro.errors.ReproError` on any problem (the CI smoke job
    and the tests call this on the emitted JSON)."""
    if data.get("schema") != COMPARE_SCHEMA:
        raise ReproError(
            f"compare artifact schema {data.get('schema')!r} != "
            f"{COMPARE_SCHEMA}"
        )
    backends = data.get("backends") or []
    models = data.get("models") or []
    reference = data.get("reference_backend")
    if reference not in backends:
        raise ReproError(
            f"reference backend {reference!r} missing from {backends}"
        )
    cells = data.get("cells") or []
    want = {(b, m) for b in backends for m in models}
    got = {(c.get("backend"), c.get("model")) for c in cells}
    if want != got:
        raise ReproError(
            f"compare artifact cells do not cover the grid: missing "
            f"{sorted(want - got)}, extra {sorted(got - want)}"
        )
    for cell in cells:
        for field in (
            "step_time_s",
            "dynamic_energy_j",
            "time_vs_hetero",
            "energy_vs_hetero",
        ):
            value = cell.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ReproError(
                    f"compare artifact cell {cell.get('backend')}/"
                    f"{cell.get('model')}: {field} must be positive, "
                    f"got {value!r}"
                )
        if cell["backend"] == reference and (
            cell["time_vs_hetero"] != 1.0 or cell["energy_vs_hetero"] != 1.0
        ):
            raise ReproError(
                f"reference backend ratios must be 1.0, got "
                f"{cell['time_vs_hetero']}/{cell['energy_vs_hetero']}"
            )
    return data


def artifact_path() -> str:
    """Where ``main()`` writes the JSON artifact."""
    return os.environ.get("REPRO_COMPARE_OUT", "compare_backends.json")


def format_result(result: Dict[str, Dict[str, CompareCell]]) -> str:
    table = TextTable(
        [
            "Backend",
            "Model",
            "Step time",
            "vs hetero",
            "Dyn energy (J/step)",
            "vs hetero",
        ]
    )
    for row in result.values():
        for cell in row.values():
            table.add_row(
                cell.backend,
                cell.model,
                format_seconds(cell.step_time_s),
                f"{cell.time_vs_hetero:.2f}x",
                cell.dynamic_energy_j,
                f"{cell.energy_vs_hetero:.2f}x",
            )
    return table.render()


def main() -> str:
    from ..sim.results import canonical_dumps

    result = run()
    text = format_result(result)
    print(text)
    data = validate_payload(payload(result))
    path = write_atomic(artifact_path(), canonical_dumps(data, indent=2) + "\n")
    import sys

    print(f"comparison artifact: {path}", file=sys.stderr)
    return text


if __name__ == "__main__":
    main()
