"""Extension studies beyond the paper's evaluation.

Two forward-looking questions the paper leaves open:

* **Multi-stack scaling** — the evaluation uses one memory stack; modern
  interposers carry several.  ``run_multistack`` scales the heterogeneous
  PIM to 1/2/4 stacks (each with its own 444 units and programmable PIM)
  and reports how far training throughput follows.
* **Training vs inference** — the paper's core argument is that *training*
  needs heterogeneity (complex backward operations dominate: ~2/3 of the
  FLOPs), while inference is mostly plain MAC work.  ``run_inference_contrast``
  strips the models to their forward pass and quantifies the contrast; one
  measured nuance is that pure-forward graphs are *more* sensitive to
  kernel-launch overheads (their fixed-function chains have no complex
  phases to hide launches behind), so recursive kernels matter for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..baselines import make_hetero_pim
from ..config import default_config
from ..nn.inference import backward_share, derive_inference_graph
from ..sim.cache import simulate_cached
from ..sim.results import RunResult
from . import runner
from .common import cached_graph
from .report import TextTable, format_seconds

STACK_COUNTS: Tuple[int, ...] = (1, 2, 4)


# ---------------------------------------------------------------------------
# multi-stack scaling
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MultiStackCell:
    n_stacks: int
    step_time_s: float
    speedup_vs_1: float
    dynamic_energy_j: float


def run_multistack(
    models: Tuple[str, ...] = ("vgg-19", "resnet-50"),
    stack_counts: Sequence[int] = STACK_COUNTS,
) -> Dict[str, Dict[int, MultiStackCell]]:
    jobs = []
    for model in models:
        for n in stack_counts:
            cfg, policy = make_hetero_pim(default_config().with_stacks(n))
            jobs.append((cached_graph(model), policy, cfg, None))
    fanned = runner.run_jobs(jobs)
    out: Dict[str, Dict[int, MultiStackCell]] = {}
    for i, model in enumerate(models):
        times: Dict[int, RunResult] = {
            n: fanned[i * len(stack_counts) + j]
            for j, n in enumerate(stack_counts)
        }
        base = times[stack_counts[0]].step_time_s
        out[model] = {
            n: MultiStackCell(
                n_stacks=n,
                step_time_s=r.step_time_s,
                speedup_vs_1=base / r.step_time_s,
                dynamic_energy_j=r.step_dynamic_energy_j,
            )
            for n, r in times.items()
        }
    return out


def format_multistack(result: Dict[str, Dict[int, MultiStackCell]]) -> str:
    table = TextTable(
        ["Model", "Stacks", "Step time", "Speedup vs 1", "E_dyn (J)"]
    )
    for model, row in result.items():
        for n, cell in row.items():
            table.add_row(
                model, n, format_seconds(cell.step_time_s),
                f"{cell.speedup_vs_1:.2f}x", cell.dynamic_energy_j,
            )
    return table.render()


# ---------------------------------------------------------------------------
# training vs inference
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class InferenceContrast:
    model: str
    backward_flop_share: float
    train_step_s: float
    infer_step_s: float
    train_rc_gain: float
    infer_rc_gain: float


def _rc_jobs(graph) -> Tuple[runner.Job, runner.Job]:
    """(RC+OP job, bare-hardware job) for one graph."""
    cfg_on, pol_on = make_hetero_pim(default_config())
    cfg_off, pol_off = make_hetero_pim(
        default_config(), recursive_kernels=False, operation_pipeline=False
    )
    return (graph, pol_on, cfg_on, None), (graph, pol_off, cfg_off, None)


def _rc_gain(graph) -> Tuple[float, float]:
    """(step time with RC+OP, RC+OP gain over bare hardware)."""
    job_on, job_off = _rc_jobs(graph)
    on = simulate_cached(*job_on)
    off = simulate_cached(*job_off)
    return on.step_time_s, off.step_time_s / on.step_time_s


def run_inference_contrast(
    models: Tuple[str, ...] = ("vgg-19", "alexnet", "dcgan"),
) -> Dict[str, InferenceContrast]:
    infer_graphs = {m: derive_inference_graph(cached_graph(m)) for m in models}
    runner.run_jobs(
        [
            job
            for m in models
            for g in (cached_graph(m), infer_graphs[m])
            for job in _rc_jobs(g)
        ]
    )
    out: Dict[str, InferenceContrast] = {}
    for model in models:
        train_graph = cached_graph(model)
        infer_graph = infer_graphs[model]
        train_s, train_gain = _rc_gain(train_graph)
        infer_s, infer_gain = _rc_gain(infer_graph)
        out[model] = InferenceContrast(
            model=model,
            backward_flop_share=backward_share(train_graph),
            train_step_s=train_s,
            infer_step_s=infer_s,
            train_rc_gain=train_gain,
            infer_rc_gain=infer_gain,
        )
    return out


def format_inference_contrast(result: Dict[str, InferenceContrast]) -> str:
    table = TextTable(
        ["Model", "Backward FLOP share", "Train step", "Infer step",
         "RC+OP gain (train)", "RC+OP gain (infer)"]
    )
    for model, row in result.items():
        table.add_row(
            model,
            f"{row.backward_flop_share:.0%}",
            format_seconds(row.train_step_s),
            format_seconds(row.infer_step_s),
            f"{row.train_rc_gain:.2f}x",
            f"{row.infer_rc_gain:.2f}x",
        )
    return table.render()


def main() -> str:
    text = (
        "== multi-stack scaling (extension) ==\n"
        + format_multistack(run_multistack())
        + "\n\n== training vs inference (extension) ==\n"
        + format_inference_contrast(run_inference_contrast())
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
