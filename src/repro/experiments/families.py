"""Experiment E-FAM — modern workload families characterization.

Table-1-style profiling of the post-paper workload families (transformer
attention, GNN message passing, embedding recommendation): per family it
reports the dominant compute/memory op types, the Figure-2 classification
(with the unknown-op CPU-fallback count), the offload-candidate coverage
of step time and memory traffic, the time split across offload classes
(fixed / hybrid / prog / host), step time and dynamic energy under every
registered hardware backend, and a small fault-sweep overhead row — the
evidence that the new op vocabulary flows through the full stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..nn.models import MODERN_MODELS, workload_family
from ..nn.ops import OP_TYPES
from ..profiling import (
    OpCategory,
    WorkloadProfiler,
    classify_workload,
    unclassified_ops,
)
from ..runtime.selection import select_candidates
from . import faults as faults_experiment
from .common import cached_graph, resolve_configuration, run_job
from .compare import COMPARE_BACKENDS
from .report import TextTable, format_seconds

#: One model per new family.
FAMILY_MODELS = MODERN_MODELS

#: Small per-family fault sweep (0 = fault-free baseline).
FAULT_EVENT_COUNTS = (0, 1, 2)

#: Steps simulated per (model, backend) cell.
STEPS = 2


@dataclass(frozen=True)
class BackendCell:
    """One family's placement outcome on one hardware backend."""

    backend: str
    step_time_s: float
    dynamic_energy_j: float


@dataclass(frozen=True)
class FamilyReport:
    """Characterization of one workload family's representative model."""

    model: str
    family: str
    #: Top-3 op types by time share and by memory share.
    top_compute: Tuple[Tuple[str, float], ...]
    top_memory: Tuple[Tuple[str, float], ...]
    categories: Dict[str, OpCategory]
    unclassified: int
    #: Step-time / memory-traffic share covered by the offload candidates.
    offload_time_coverage: float
    offload_memory_coverage: float
    #: Time share by offload class ("fixed" / "hybrid" / "prog" / "host").
    class_time_shares: Dict[str, float]
    backends: Dict[str, BackendCell]
    #: Fault-sweep step-time overhead vs fault-free, by event count.
    fault_time_overheads: Dict[int, float]


def run(
    models: Tuple[str, ...] = FAMILY_MODELS,
    backends: Tuple[str, ...] = COMPARE_BACKENDS,
) -> Dict[str, FamilyReport]:
    profiler = WorkloadProfiler()
    out: Dict[str, FamilyReport] = {}
    for model in models:
        graph = cached_graph(model)
        profile = profiler.profile(graph)

        flops_by_type: Dict[str, int] = {}
        for op in graph.ops:
            flops_by_type[op.op_type] = (
                flops_by_type.get(op.op_type, 0) + op.cost.flops
            )
        categories = classify_workload(profile, flops_by_type)

        selection = select_candidates(profile)
        _, mem_coverage = profile.coverage(selection.candidate_types)

        class_shares: Dict[str, float] = {}
        for t in profile.by_type:
            info = OP_TYPES.get(t.op_type)
            label = info.offload_class.value if info else "unknown"
            class_shares[label] = class_shares.get(label, 0.0) + t.time_share

        cells: Dict[str, BackendCell] = {}
        for backend in backends:
            config, policy = resolve_configuration(None, backend=backend)
            result = run_job(graph, policy, config, STEPS)
            cells[backend] = BackendCell(
                backend=backend,
                step_time_s=result.step_time_s,
                dynamic_energy_j=result.step_dynamic_energy_j,
            )

        sweep = faults_experiment.run(
            model=model, event_counts=FAULT_EVENT_COUNTS, steps=STEPS
        )
        out[model] = FamilyReport(
            model=model,
            family=workload_family(model) or "unknown",
            top_compute=tuple(
                (t.op_type, t.time_share) for t in profile.top_compute(3)
            ),
            top_memory=tuple(
                (t.op_type, t.memory_share) for t in profile.top_memory(3)
            ),
            categories=categories,
            unclassified=unclassified_ops(categories),
            offload_time_coverage=selection.time_coverage,
            offload_memory_coverage=mem_coverage,
            class_time_shares=class_shares,
            backends=cells,
            fault_time_overheads={
                n: cell.time_overhead for n, cell in sweep.items()
            },
        )
    return out


def format_result(result: Dict[str, FamilyReport]) -> str:
    blocks = []
    for model, report in result.items():
        table = TextTable(["Metric", "Value"])
        table.add_row("family", report.family)
        table.add_row(
            "top compute ops",
            ", ".join(f"{t} ({s:.1%})" for t, s in report.top_compute),
        )
        table.add_row(
            "top memory ops",
            ", ".join(f"{t} ({s:.1%})" for t, s in report.top_memory),
        )
        offload_targets = sorted(
            t for t, c in report.categories.items()
            if c is OpCategory.COMPUTE_AND_MEMORY_INTENSIVE
        )
        table.add_row("offload targets (cat 2)", ", ".join(offload_targets))
        table.add_row("unclassified op types", report.unclassified)
        table.add_row(
            "offload coverage (time)", f"{report.offload_time_coverage:.1%}"
        )
        table.add_row(
            "offload coverage (memory)",
            f"{report.offload_memory_coverage:.1%}",
        )
        table.add_row(
            "time by offload class",
            ", ".join(
                f"{label}={share:.1%}"
                for label, share in sorted(report.class_time_shares.items())
            ),
        )
        for backend, cell in report.backends.items():
            table.add_row(
                f"backend {backend}",
                f"{format_seconds(cell.step_time_s)} / "
                f"{cell.dynamic_energy_j:.3f} J/step",
            )
        table.add_row(
            "fault overhead",
            ", ".join(
                f"{n} events: {ovh:+.1%}"
                for n, ovh in sorted(report.fault_time_overheads.items())
            ),
        )
        blocks.append(f"== {model} ==\n{table.render()}")
    return "\n\n".join(blocks)


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
