"""Experiment E-FAULTS — resilience overhead under injected faults.

Sweeps generated fault specs of increasing event count against the
Hetero-PIM system and reports the time/energy overhead of completing
every training step anyway (retries, offload re-selection, graceful
degradation), relative to the fault-free run.  All specs for one sweep
derive from one seed: ``FaultSpec.generate`` draws events in a fixed
order, so the ``n``-event spec is a prefix-extension of the ``n-1``-event
one — overheads are attributable to the added fault, not to reshuffled
randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..faults import FaultSpec
from ..hardware.hmc import StackGeometry
from .common import cached_graph, resolve_configuration, run_model_on
from .report import TextTable
from .runner import run_jobs

#: Fault-event counts of the sweep (0 = the fault-free baseline row).
DEFAULT_EVENT_COUNTS = (0, 1, 2, 4, 8)

#: Seed all sweep specs derive from.
DEFAULT_SEED = 1


@dataclass(frozen=True)
class FaultCell:
    """One sweep row: resilience outcome under ``n_events`` faults."""

    n_events: int
    step_time_s: float
    time_overhead: float  # vs fault-free (0.0 for the baseline row)
    dynamic_energy_j: float
    energy_overhead: float
    retries: int
    degradations: int
    reselections: int


def _spec_for(
    n_events: int, seed: int, horizon_s: float, system
) -> FaultSpec:
    return FaultSpec.generate(
        seed=seed,
        horizon_s=horizon_s,
        n_events=n_events,
        banks=len(StackGeometry(system.stack).banks),
        pool_units=system.fixed_pim.n_units,
        prog_pims=system.prog_pim.n_pims,
    )


def run(
    model: str = "alexnet",
    config: str = "hetero-pim",
    event_counts: Tuple[int, ...] = DEFAULT_EVENT_COUNTS,
    seed: int = DEFAULT_SEED,
    steps: int = 2,
) -> Dict[int, FaultCell]:
    baseline = run_model_on(model, config, steps=steps)
    system, policy = resolve_configuration(config)
    graph = cached_graph(model)
    specs = {
        n: _spec_for(n, seed, baseline.makespan_s, system)
        for n in event_counts
        if n > 0
    }
    jobs = [
        (graph, policy, system, steps, specs[n])
        for n in sorted(specs)
    ]
    results = dict(zip(sorted(specs), run_jobs(jobs)))
    out: Dict[int, FaultCell] = {}
    for n in event_counts:
        result = baseline if n == 0 else results[n]
        counts = (
            result.faults["counts"]
            if result.faults is not None
            else {"retries": 0, "degradations": 0, "reselections": 0}
        )
        out[n] = FaultCell(
            n_events=n,
            step_time_s=result.step_time_s,
            time_overhead=result.step_time_s / baseline.step_time_s - 1.0,
            dynamic_energy_j=result.step_dynamic_energy_j,
            energy_overhead=(
                result.step_dynamic_energy_j / baseline.step_dynamic_energy_j
                - 1.0
            ),
            retries=counts["retries"],
            degradations=counts["degradations"],
            reselections=counts["reselections"],
        )
    return out


def format_result(result: Dict[int, FaultCell]) -> str:
    table = TextTable(
        [
            "Faults",
            "Step time (ms)",
            "Overhead",
            "Energy (J/step)",
            "Overhead",
            "Retries",
            "Degradations",
            "Re-selections",
        ]
    )
    for n in sorted(result):
        cell = result[n]
        table.add_row(
            n,
            cell.step_time_s * 1e3,
            f"{cell.time_overhead:+.1%}",
            cell.dynamic_energy_j,
            f"{cell.energy_overhead:+.1%}",
            cell.retries,
            cell.degradations,
            cell.reselections,
        )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
