"""Experiment E-F10 — paper Figure 10: comparison with Neurocube.

Normalized execution time and energy of Neurocube relative to Hetero PIM
for the five CNN models.  Paper band: Hetero PIM achieves at least 3x
higher performance and energy efficiency, with the gap widening for
compute-intensive models (VGG-19, Inception-v3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .common import EVAL_MODELS, run_model_on
from .report import TextTable


@dataclass(frozen=True)
class Fig10Row:
    model: str
    hetero_step_s: float
    neurocube_step_s: float
    hetero_energy_j: float
    neurocube_energy_j: float

    @property
    def time_ratio(self) -> float:
        """Neurocube time / Hetero time (paper plots this normalization)."""
        return self.neurocube_step_s / self.hetero_step_s

    @property
    def energy_ratio(self) -> float:
        return self.neurocube_energy_j / self.hetero_energy_j


def run(models: Tuple[str, ...] = EVAL_MODELS) -> Dict[str, Fig10Row]:
    out: Dict[str, Fig10Row] = {}
    for model in models:
        hetero = run_model_on(model, "hetero-pim")
        neurocube = run_model_on(model, "neurocube")
        out[model] = Fig10Row(
            model=model,
            hetero_step_s=hetero.step_time_s,
            neurocube_step_s=neurocube.step_time_s,
            hetero_energy_j=hetero.step_dynamic_energy_j,
            neurocube_energy_j=neurocube.step_dynamic_energy_j,
        )
    return out


def format_result(result: Dict[str, Fig10Row]) -> str:
    table = TextTable(
        ["Model", "Neurocube/Hetero time", "Neurocube/Hetero energy"]
    )
    for model, row in result.items():
        table.add_row(model, f"{row.time_ratio:.2f}x", f"{row.energy_ratio:.2f}x")
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
