"""Experiment E-F11 — paper Figure 11: 3D-memory frequency scaling.

Hetero PIM execution-time breakdown at 1x / 2x / 4x PIM frequency (PLL
scaled, section VI-D), with the GPU as the reference line.  Paper claims:
at 2x, Hetero beats the GPU by ~36% (VGG-19) and ~17% (AlexNet); at 4x, by
~37% and ~60%; synchronization and data-movement overheads shrink with
frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import FREQUENCY_SCALES, default_config
from ..sim.activity import TimeBreakdown
from .common import EVAL_MODELS, run_model_on
from .report import TextTable, format_seconds
from .runner import prefetch_model_runs


@dataclass(frozen=True)
class Fig11Cell:
    scale: float
    step_time_s: float
    breakdown: TimeBreakdown
    speedup_vs_gpu: float


def run(
    models: Tuple[str, ...] = EVAL_MODELS,
    scales: Tuple[float, ...] = FREQUENCY_SCALES,
) -> Dict[str, Dict[float, Fig11Cell]]:
    bases = {s: default_config().with_frequency_scale(s) for s in scales}
    prefetch_model_runs(
        [(m, "gpu") for m in models]
        + [(m, "hetero-pim", bases[s]) for m in models for s in scales]
    )
    out: Dict[str, Dict[float, Fig11Cell]] = {}
    for model in models:
        gpu = run_model_on(model, "gpu")
        row: Dict[float, Fig11Cell] = {}
        for scale in scales:
            result = run_model_on(model, "hetero-pim", base=bases[scale])
            row[scale] = Fig11Cell(
                scale=scale,
                step_time_s=result.step_time_s,
                breakdown=result.step_breakdown,
                speedup_vs_gpu=gpu.step_time_s / result.step_time_s,
            )
        out[model] = row
    return out


def format_result(result: Dict[str, Dict[float, Fig11Cell]]) -> str:
    table = TextTable(
        ["Model", "Freq", "Step time", "Operation", "Data mvmt", "Sync",
         "vs GPU"]
    )
    for model, row in result.items():
        for scale, cell in row.items():
            b = cell.breakdown
            table.add_row(
                model,
                f"{scale:.0f}x",
                format_seconds(cell.step_time_s),
                format_seconds(b.operation_s),
                format_seconds(b.data_movement_s),
                format_seconds(b.sync_s),
                f"{cell.speedup_vs_gpu:.2f}x",
            )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
