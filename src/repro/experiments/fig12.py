"""Experiment E-F12 — paper Figure 12: programmable-PIM scaling.

Hetero PIM with 1 / 4 / 16 programmable PIMs at constant logic-die area
(each extra ARM PIM displaces fixed-function units).  Paper finding: the
configurations differ by only 12-14% — one programmable PIM suffices, and
more of them cost fixed-function throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import PROG_PIM_COUNTS, default_config
from .common import EVAL_MODELS, run_model_on
from .report import TextTable, format_seconds
from .runner import prefetch_model_runs


@dataclass(frozen=True)
class Fig12Cell:
    n_prog_pims: int
    n_fixed_units: int
    step_time_s: float
    relative_to_1p: float


def run(
    models: Tuple[str, ...] = EVAL_MODELS,
    counts: Tuple[int, ...] = PROG_PIM_COUNTS,
) -> Dict[str, Dict[int, Fig12Cell]]:
    bases = {n: default_config().with_prog_pims(n) for n in counts}
    prefetch_model_runs(
        [(m, "hetero-pim", bases[n]) for m in models for n in counts]
    )
    out: Dict[str, Dict[int, Fig12Cell]] = {}
    for model in models:
        times: Dict[int, float] = {}
        units: Dict[int, int] = {}
        for n in counts:
            units[n] = bases[n].fixed_pim.n_units
            result = run_model_on(model, "hetero-pim", base=bases[n])
            times[n] = result.step_time_s
        ref = times[counts[0]]
        out[model] = {
            n: Fig12Cell(
                n_prog_pims=n,
                n_fixed_units=units[n],
                step_time_s=times[n],
                relative_to_1p=times[n] / ref,
            )
            for n in counts
        }
    return out


def max_spread(result: Dict[str, Dict[int, Fig12Cell]]) -> float:
    """Largest relative difference across the design points (paper: 12-14%)."""
    spread = 0.0
    for row in result.values():
        times = [cell.step_time_s for cell in row.values()]
        spread = max(spread, max(times) / min(times) - 1.0)
    return spread


def format_result(result: Dict[str, Dict[int, Fig12Cell]]) -> str:
    table = TextTable(
        ["Model", "Progr PIMs", "Fixed units", "Step time", "vs 1P"]
    )
    for model, row in result.items():
        for n, cell in row.items():
            table.add_row(
                model,
                f"{n}P",
                cell.n_fixed_units,
                format_seconds(cell.step_time_s),
                f"{(cell.relative_to_1p - 1) * 100:+.1f}%",
            )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
