"""Experiment E-F13 — paper Figure 13: execution time with/without RC & OP.

Hetero PIM hardware with the runtime techniques toggled, against the
Fixed-PIM and Progr-PIM baselines.  Paper findings: Hetero hardware alone
(no RC/OP) beats Progr/Fixed PIM by up to 8.5x but Fixed PIM by only
7-30%; adding RC + OP improves Hetero PIM by up to 3.8x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .ablation import VARIANTS, run_all_variants
from .common import EVAL_MODELS, run_model_on
from .report import TextTable, format_seconds
from .runner import prefetch_model_runs


@dataclass(frozen=True)
class Fig13Model:
    model: str
    #: Step time per variant label (plus the two hardware baselines).
    step_times: Dict[str, float]

    @property
    def rc_op_speedup(self) -> float:
        """Gain of the full runtime over bare Hetero hardware."""
        return self.step_times["no RC/OP"] / self.step_times["RC+OP"]

    @property
    def hetero_hw_vs_fixed(self) -> float:
        """Bare Hetero hardware vs the Fixed-PIM baseline (paper: 7-30%)."""
        return self.step_times["Fixed PIM"] / self.step_times["no RC/OP"]

    @property
    def hetero_hw_vs_prog(self) -> float:
        return self.step_times["Progr PIM"] / self.step_times["no RC/OP"]


def run(models: Tuple[str, ...] = EVAL_MODELS) -> Dict[str, Fig13Model]:
    prefetch_model_runs(
        [(m, c) for m in models for c in ("fixed-pim", "prog-pim")]
    )
    variants = run_all_variants(models)
    out: Dict[str, Fig13Model] = {}
    for model in models:
        times = {
            label: variants[model][label].step_time_s
            for label, _rc, _op in VARIANTS
        }
        times["Fixed PIM"] = run_model_on(model, "fixed-pim").step_time_s
        times["Progr PIM"] = run_model_on(model, "prog-pim").step_time_s
        out[model] = Fig13Model(model=model, step_times=times)
    return out


def format_result(result: Dict[str, Fig13Model]) -> str:
    order = ["Progr PIM", "Fixed PIM"] + [label for label, _r, _o in VARIANTS]
    table = TextTable(["Model"] + order + ["RC+OP gain", "HW vs Fixed"])
    for model, data in result.items():
        table.add_row(
            model,
            *[format_seconds(data.step_times[k]) for k in order],
            f"{data.rc_op_speedup:.2f}x",
            f"{(data.hetero_hw_vs_fixed - 1) * 100:+.0f}%",
        )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
