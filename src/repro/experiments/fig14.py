"""Experiment E-F14 — paper Figure 14: energy with/without RC & OP.

Dynamic energy of the Hetero-PIM RC/OP variants normalized to the full
runtime (RC+OP), with the hardware baselines for reference.  Paper
findings: Hetero hardware alone saves up to 2.7x over Progr/Fixed PIM;
RC + OP reduce Hetero PIM energy by up to 3.9x more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .ablation import VARIANTS, run_all_variants
from .common import EVAL_MODELS, run_model_on
from .report import TextTable
from .runner import prefetch_model_runs


@dataclass(frozen=True)
class Fig14Model:
    model: str
    #: Dynamic energy per step per variant/baseline label.
    energies_j: Dict[str, float]

    @property
    def rc_op_energy_gain(self) -> float:
        return self.energies_j["no RC/OP"] / self.energies_j["RC+OP"]

    @property
    def hetero_hw_vs_fixed(self) -> float:
        return self.energies_j["Fixed PIM"] / self.energies_j["no RC/OP"]

    def normalized(self, label: str) -> float:
        """Energy normalized to the full runtime (the paper's baseline)."""
        return self.energies_j[label] / self.energies_j["RC+OP"]


def run(models: Tuple[str, ...] = EVAL_MODELS) -> Dict[str, Fig14Model]:
    prefetch_model_runs(
        [(m, c) for m in models for c in ("fixed-pim", "prog-pim")]
    )
    variants = run_all_variants(models)
    out: Dict[str, Fig14Model] = {}
    for model in models:
        energies = {
            label: variants[model][label].step_dynamic_energy_j
            for label, _rc, _op in VARIANTS
        }
        energies["Fixed PIM"] = run_model_on(
            model, "fixed-pim"
        ).step_dynamic_energy_j
        energies["Progr PIM"] = run_model_on(
            model, "prog-pim"
        ).step_dynamic_energy_j
        out[model] = Fig14Model(model=model, energies_j=energies)
    return out


def format_result(result: Dict[str, Fig14Model]) -> str:
    order = ["Progr PIM", "Fixed PIM"] + [label for label, _r, _o in VARIANTS]
    table = TextTable(["Model"] + [f"{k} (norm)" for k in order] + ["RC+OP gain"])
    for model, data in result.items():
        table.add_row(
            model,
            *[f"{data.normalized(k):.2f}x" for k in order],
            f"{data.rc_op_energy_gain:.2f}x",
        )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
