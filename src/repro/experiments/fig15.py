"""Experiment E-F15 — paper Figure 15: fixed-PIM utilization with RC & OP.

Average utilization of the fixed-function pool (busy units over the duty
window) under the four runtime variants.  Paper findings: RC alone raises
utilization by up to 66% (VGG-19); OP adds up to a further 18% (AlexNet);
with both, utilization approaches 100%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .ablation import VARIANTS, run_all_variants
from .common import EVAL_MODELS, surrogate_enabled
from .report import TextTable


def _variant_runs(models: Tuple[str, ...]):
    """Variant runs with trustworthy pool utilization.

    Utilization is an event-level aggregate, so estimates only qualify
    when the surrogate's optional utilization head answered from its key
    tier for *every* variant (flagged on the result); anything less falls
    back to exact simulation.
    """
    if surrogate_enabled():
        estimated = run_all_variants(models)
        if all(
            result.metrics is not None
            and result.metrics.get("surrogate.utilization_estimated")
            for row in estimated.values()
            for result in row.values()
        ):
            return estimated
    return run_all_variants(models, exact=True)


@dataclass(frozen=True)
class Fig15Model:
    model: str
    utilization: Dict[str, float]

    @property
    def rc_gain(self) -> float:
        """Relative utilization improvement from RC alone."""
        base = self.utilization["no RC/OP"]
        return self.utilization["RC"] / base - 1.0 if base > 0 else 0.0

    @property
    def op_gain_over_rc(self) -> float:
        """Further relative improvement from adding OP on top of RC."""
        rc = self.utilization["RC"]
        return self.utilization["RC+OP"] / rc - 1.0 if rc > 0 else 0.0


def run(models: Tuple[str, ...] = EVAL_MODELS) -> Dict[str, Fig15Model]:
    variants = _variant_runs(models)
    return {
        model: Fig15Model(
            model=model,
            utilization={
                label: variants[model][label].fixed_pim_utilization
                for label, _rc, _op in VARIANTS
            },
        )
        for model in models
    }


def format_result(result: Dict[str, Fig15Model]) -> str:
    order = [label for label, _r, _o in VARIANTS]
    table = TextTable(["Model"] + order + ["RC gain", "OP gain over RC"])
    for model, data in result.items():
        table.add_row(
            model,
            *[f"{data.utilization[k] * 100:.0f}%" for k in order],
            f"{data.rc_gain * 100:+.0f}%",
            f"{data.op_gain_over_rc * 100:+.0f}%",
        )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
