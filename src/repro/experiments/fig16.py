"""Experiment E-F16 — paper Figure 16: mixed-workload co-running.

Six co-run cases pair a CNN model with a non-CNN model (LSTM / Word2vec,
section VI-F).  Under the paper's arrangement the CNN uses the full
heterogeneous system while the non-CNN model runs on the CPU and the
programmable PIM when they are idle.

Methodology (multi-tenant throughput): during one co-run window the CNN
executes one training step while the non-CNN model trains continuously
(``k`` of its steps, where ``k`` balances the two solo durations — the
natural rate ratio of the tenants).  *Sequential execution* time-shares the
machine: the same work takes the sum of the solo durations.  The reported
improvement is ``t_sequential / t_corun - 1``; the paper observes 69-83%.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import default_config
from ..nn.graph import Graph, merge_graphs
from ..runtime.scheduler import MixedWorkloadPolicy
from . import runner
from .common import cached_graph, run_job, run_model_on, surrogate_enabled
from .report import TextTable, format_seconds

#: The six co-run cases.
PAIRS: Tuple[Tuple[str, str], ...] = (
    ("vgg-19", "lstm"),
    ("vgg-19", "word2vec"),
    ("resnet-50", "lstm"),
    ("resnet-50", "word2vec"),
    ("inception-v3", "lstm"),
    ("inception-v3", "word2vec"),
)


@dataclass(frozen=True)
class Fig16Case:
    cnn: str
    non_cnn: str
    non_cnn_steps_per_cnn_step: int
    solo_cnn_s: float
    solo_non_cnn_s: float
    corun_s: float
    sequential_s: float

    @property
    def improvement(self) -> float:
        """Speedup of co-running over sequential execution (paper: 69-83%)."""
        return self.sequential_s / self.corun_s - 1.0


def _replicated_non_cnn(non_cnn: str, replicas: int) -> Tuple[Graph, ...]:
    # the replicas only contribute their (renamed) tensor/op content to
    # merge_graphs, which copies everything it reads — shallow renamed
    # copies of one cached build avoid k rebuilds of the same model
    base = cached_graph(non_cnn)
    graphs = []
    for i in range(replicas):
        g = copy.copy(base)
        g.name = f"{non_cnn}#{i}"
        graphs.append(g)
    return tuple(graphs)


def _solo_restricted_job(non_cnn: str) -> runner.Job:
    """Solo run of the non-CNN model on CPU + programmable PIM only
    (the resource class the runtime assigns co-run tenants)."""
    graph = cached_graph(non_cnn)
    policy = MixedWorkloadPolicy(frozenset({graph.name}), restrict_untagged=True)
    return (graph, policy, default_config(), None)


def _solo_restricted_s(non_cnn: str) -> float:
    return run_job(*_solo_restricted_job(non_cnn)).step_time_s


#: Fraction of the idle-capacity rate the runtime grants the tenant; the
#: margin avoids head-of-line blocking of the primary model's CPU/prog work.
TENANT_LOAD_FACTOR = 0.8


def _corun_job(cnn: str, non_cnn: str, k: int) -> runner.Job:
    replicas = _replicated_non_cnn(non_cnn, k)
    restricted = frozenset(g.name for g in replicas)
    merged = merge_graphs(f"{cnn}+{k}x{non_cnn}", (cached_graph(cnn),) + replicas)
    return (merged, MixedWorkloadPolicy(restricted), default_config(), None)


def run_case(cnn: str, non_cnn: str) -> Fig16Case:
    """Simulate one co-run case."""
    solo_cnn = run_model_on(cnn, "hetero-pim").step_time_s
    solo_non = _solo_restricted_s(non_cnn)
    k = max(1, round(TENANT_LOAD_FACTOR * solo_cnn / solo_non))
    # the reported co-run number is the merged schedule's aggregate step
    # time, so the surrogate can answer it (the co-run jobs are part of
    # its training grid)
    corun = run_job(*_corun_job(cnn, non_cnn, k))
    sequential = solo_cnn + k * solo_non
    return Fig16Case(
        cnn=cnn,
        non_cnn=non_cnn,
        non_cnn_steps_per_cnn_step=k,
        solo_cnn_s=solo_cnn,
        solo_non_cnn_s=solo_non,
        corun_s=corun.step_time_s,
        sequential_s=sequential,
    )


def run(pairs: Tuple[Tuple[str, str], ...] = PAIRS) -> Dict[str, Fig16Case]:
    # Two-phase fan-out: the tenant replica count k of each co-run case
    # depends on the solo step times, so the solos run (in parallel) first,
    # then the merged co-run simulations — the dominant cost — fan out.
    cnns = tuple(dict.fromkeys(cnn for cnn, _ in pairs))
    nons = tuple(dict.fromkeys(non for _, non in pairs))
    runner.prefetch_model_runs([(cnn, "hetero-pim") for cnn in cnns])
    if not surrogate_enabled():
        runner.run_jobs([_solo_restricted_job(non) for non in nons])
        ks = {
            (cnn, non): max(
                1,
                round(
                    TENANT_LOAD_FACTOR
                    * run_model_on(cnn, "hetero-pim").step_time_s
                    / _solo_restricted_s(non)
                ),
            )
            for cnn, non in pairs
        }
        runner.run_jobs(
            [_corun_job(cnn, non, ks[cnn, non]) for cnn, non in pairs]
        )
    return {f"{cnn}+{non}": run_case(cnn, non) for cnn, non in pairs}


def format_result(result: Dict[str, Fig16Case]) -> str:
    table = TextTable(
        ["Co-run case", "k", "Solo CNN", "Solo non-CNN", "Sequential",
         "Co-run", "Improvement"]
    )
    for name, case in result.items():
        table.add_row(
            name,
            case.non_cnn_steps_per_cnn_step,
            format_seconds(case.solo_cnn_s),
            format_seconds(case.solo_non_cnn_s),
            format_seconds(case.sequential_s),
            format_seconds(case.corun_s),
            f"{case.improvement * 100:+.0f}%",
        )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
