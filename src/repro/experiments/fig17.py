"""Experiment E-F17 — paper Figure 17: energy efficiency & power vs frequency.

(a) Energy-delay product of Hetero PIM at 1x / 2x / 4x PIM frequency — the
paper finds 4x the most energy-efficient point for all five models.
(b) Average power of the GPU vs Hetero PIM at each frequency — the GPU
draws 1.5-2.6x more power than Hetero PIM even at 4x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import FREQUENCY_SCALES, default_config
from .common import EVAL_MODELS, run_model_on
from .report import TextTable
from .runner import prefetch_model_runs


@dataclass(frozen=True)
class Fig17Cell:
    scale: float
    edp: float
    average_power_w: float


@dataclass(frozen=True)
class Fig17Model:
    model: str
    cells: Dict[float, Fig17Cell]
    gpu_power_w: float

    @property
    def best_scale(self) -> float:
        """Frequency with the lowest EDP (paper: 4x)."""
        return min(self.cells, key=lambda s: self.cells[s].edp)

    def gpu_power_ratio(self, scale: float) -> float:
        """GPU power / Hetero power at ``scale`` (paper: 1.5-2.6x at 4x)."""
        return self.gpu_power_w / self.cells[scale].average_power_w


def run(
    models: Tuple[str, ...] = EVAL_MODELS,
    scales: Tuple[float, ...] = FREQUENCY_SCALES,
) -> Dict[str, Fig17Model]:
    bases = {s: default_config().with_frequency_scale(s) for s in scales}
    prefetch_model_runs(
        [(m, "gpu") for m in models]
        + [(m, "hetero-pim", bases[s]) for m in models for s in scales]
    )
    out: Dict[str, Fig17Model] = {}
    for model in models:
        gpu = run_model_on(model, "gpu")
        cells: Dict[float, Fig17Cell] = {}
        for scale in scales:
            result = run_model_on(model, "hetero-pim", base=bases[scale])
            cells[scale] = Fig17Cell(
                scale=scale,
                edp=result.edp(),
                average_power_w=result.average_power_w,
            )
        out[model] = Fig17Model(
            model=model, cells=cells, gpu_power_w=gpu.average_power_w
        )
    return out


def format_result(result: Dict[str, Fig17Model]) -> str:
    table = TextTable(
        ["Model", "Freq", "EDP (J*s)", "Hetero power (W)", "GPU power (W)",
         "GPU/Hetero power"]
    )
    for model, data in result.items():
        for scale, cell in data.cells.items():
            table.add_row(
                model,
                f"{scale:.0f}x",
                cell.edp,
                cell.average_power_w,
                data.gpu_power_w,
                f"{data.gpu_power_ratio(scale):.2f}x",
            )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
