"""Experiment E-F2 — paper Figure 2: four categories of training operations.

Classifies every operation type of the characterized models into the
paper's four buckets: (1) compute-intensive, (2) compute- and
memory-intensive (the offload targets), (3) memory-intensive-only
("unusual"), and (4) negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..profiling import OpCategory, WorkloadProfiler, classify_workload
from .common import cached_graph
from .report import TextTable
from .table1 import TABLE1_MODELS


@dataclass(frozen=True)
class Fig2Model:
    model: str
    categories: Dict[str, OpCategory]

    def members(self, category: OpCategory) -> Tuple[str, ...]:
        return tuple(
            sorted(t for t, c in self.categories.items() if c is category)
        )


def run(models: Tuple[str, ...] = TABLE1_MODELS) -> Dict[str, Fig2Model]:
    profiler = WorkloadProfiler()
    out: Dict[str, Fig2Model] = {}
    for model in models:
        graph = cached_graph(model)
        profile = profiler.profile(graph)
        flops_by_type: Dict[str, int] = {}
        for op in graph.ops:
            flops_by_type[op.op_type] = (
                flops_by_type.get(op.op_type, 0) + op.cost.flops
            )
        out[model] = Fig2Model(
            model=model,
            categories=classify_workload(profile, flops_by_type),
        )
    return out


def format_result(result: Dict[str, Fig2Model]) -> str:
    table = TextTable(["Model", "Category", "Operation types"])
    for model, data in result.items():
        for category in OpCategory:
            members = data.members(category)
            table.add_row(
                model,
                f"{int(category)}: {category.name.lower()}",
                ", ".join(members) if members else "(none)",
            )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
