"""Experiment E-F8 — paper Figure 8: execution-time breakdown.

Per-training-step time of the five NN models on the five configurations,
broken into synchronization, data-movement and operation time.  The paper's
headline relative results (checked in EXPERIMENTS.md):

* PIM-based designs beat the CPU by 19% to ~28x;
* Hetero PIM beats Progr PIM by 2.5-23x and Fixed PIM by 1.4-5.7x;
* Hetero PIM is close to the GPU, faster on ResNet-50, slower on DCGAN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..sim.activity import TimeBreakdown
from ..sim.results import RunResult
from .common import EVAL_CONFIGS, EVAL_MODELS, run_model_on
from .report import TextTable, format_seconds, stacked_bar
from .runner import prefetch_model_runs


@dataclass(frozen=True)
class Fig8Cell:
    config: str
    step_time_s: float
    breakdown: TimeBreakdown
    result: RunResult


def run(
    models: Tuple[str, ...] = EVAL_MODELS,
    configs: Tuple[str, ...] = EVAL_CONFIGS,
) -> Dict[str, Dict[str, Fig8Cell]]:
    prefetch_model_runs([(m, c) for m in models for c in configs])
    out: Dict[str, Dict[str, Fig8Cell]] = {}
    for model in models:
        row: Dict[str, Fig8Cell] = {}
        for config in configs:
            result = run_model_on(model, config)
            row[config] = Fig8Cell(
                config=config,
                step_time_s=result.step_time_s,
                breakdown=result.step_breakdown,
                result=result,
            )
        out[model] = row
    return out


def speedups(result: Dict[str, Dict[str, Fig8Cell]]) -> Dict[str, Dict[str, float]]:
    """Per-model speedups of Hetero PIM over every other configuration."""
    out: Dict[str, Dict[str, float]] = {}
    for model, row in result.items():
        hetero = row["hetero-pim"].step_time_s
        out[model] = {
            config: cell.step_time_s / hetero
            for config, cell in row.items()
            if config != "hetero-pim"
        }
    return out


def format_result(result: Dict[str, Dict[str, Fig8Cell]]) -> str:
    table = TextTable(
        ["Model", "Config", "Step time", "Operation", "Data mvmt", "Sync", "Bar"]
    )
    for model, row in result.items():
        for config, cell in row.items():
            b = cell.breakdown
            table.add_row(
                model,
                config,
                format_seconds(cell.step_time_s),
                format_seconds(b.operation_s),
                format_seconds(b.data_movement_s),
                format_seconds(b.sync_s),
                stacked_bar(
                    [b.operation_s, b.data_movement_s, b.sync_s],
                    ["op", "dm", "sync"],
                    width=24,
                ),
            )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
