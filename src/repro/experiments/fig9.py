"""Experiment E-F9 — paper Figure 9: normalized dynamic energy.

Per-step dynamic energy of the five models on the five configurations,
normalized to Hetero PIM.  Paper bands: Hetero PIM uses 3-24x less dynamic
energy than the CPU and 1.3-5x less than the GPU; Progr PIM draws the most
dynamic energy of all configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .common import EVAL_CONFIGS, EVAL_MODELS, run_model_on
from .report import TextTable
from .runner import prefetch_model_runs


@dataclass(frozen=True)
class Fig9Cell:
    config: str
    dynamic_energy_j: float
    normalized: float  # relative to Hetero PIM (paper's normalization)


def run(
    models: Tuple[str, ...] = EVAL_MODELS,
    configs: Tuple[str, ...] = EVAL_CONFIGS,
) -> Dict[str, Dict[str, Fig9Cell]]:
    prefetch_model_runs([(m, c) for m in models for c in configs])
    out: Dict[str, Dict[str, Fig9Cell]] = {}
    for model in models:
        energies = {
            config: run_model_on(model, config).step_dynamic_energy_j
            for config in configs
        }
        hetero = energies["hetero-pim"]
        out[model] = {
            config: Fig9Cell(
                config=config,
                dynamic_energy_j=e,
                normalized=e / hetero,
            )
            for config, e in energies.items()
        }
    return out


def format_result(result: Dict[str, Dict[str, Fig9Cell]]) -> str:
    table = TextTable(["Model", "Config", "Dynamic energy (J/step)", "Normalized"])
    for model, row in result.items():
        for config, cell in row.items():
            table.add_row(
                model, config, cell.dynamic_energy_j, f"{cell.normalized:.2f}x"
            )
    return table.render()


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
