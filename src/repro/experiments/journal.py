"""Run journal: append-only JSONL record of batch execution.

Every journaled batch (one ``repro experiment <id>`` invocation, or any
caller that wraps :func:`repro.experiments.runner.run_jobs` in
:func:`repro.experiments.runner.attach_journal`) writes a line-oriented
log under ``<cache-dir>/journal/<run-id>.jsonl``:

* a ``begin`` header naming the run and how to re-run it (the manifest);
* one ``job`` line per finished job — its content fingerprint, terminal
  status (``done`` or ``quarantined``) and whether it came from the
  cache;
* terminal ``interrupted`` / ``complete`` events.

Each line is one JSON object written with a **single** ``write()`` on an
``O_APPEND`` descriptor, so concurrent writers and a kill at any byte
offset leave at worst one truncated *final* line — never interleaved or
corrupted earlier lines.  The loader tolerates a truncated tail for
exactly this reason.

The journal is the *manifest* side of crash safety; the *result* side is
the content-addressed disk cache (:mod:`repro.sim.cache`), which every
completed job lands in before its journal line is written.  ``repro
resume <run-id>`` therefore only needs the header to know *what* to
re-run — every journaled-complete job is a free cache hit.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Set

from ..errors import ExecutionError
from ..sim import cache as sim_cache

#: Journal line-format version, recorded in the ``begin`` header.
JOURNAL_SCHEMA = 1


def journal_dir() -> Path:
    """Directory holding run journals (beside the result cache tiers)."""
    return sim_cache.cache_dir() / "journal"


def _journal_path(run_id: str) -> Path:
    if not run_id or "/" in run_id or run_id.startswith("."):
        raise ExecutionError(f"invalid run id {run_id!r}")
    return journal_dir() / f"{run_id}.jsonl"


def new_run_id() -> str:
    """Timestamp + pid: unique per process, sortable by start time."""
    return time.strftime("%Y%m%dT%H%M%S") + f"-{os.getpid()}"


def list_runs() -> List[str]:
    """Known run ids, most recently modified first."""
    directory = journal_dir()
    if not directory.is_dir():
        return []
    entries = []
    for path in directory.glob("*.jsonl"):
        try:
            entries.append((path.stat().st_mtime, path.stem))
        except OSError:
            continue
    return [run_id for _mtime, run_id in sorted(entries, reverse=True)]


def latest_run_id() -> Optional[str]:
    runs = list_runs()
    return runs[0] if runs else None


class RunJournal:
    """One run's append-only journal (see module docstring for format)."""

    def __init__(self, run_id: str, lines: List[Dict]):
        self.run_id = run_id
        self._lines = lines
        self._fd: Optional[int] = None

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(
        cls,
        kind: str,
        spec: Dict,
        run_id: Optional[str] = None,
    ) -> "RunJournal":
        """Start a new journal; writes the ``begin`` manifest line."""
        run_id = run_id if run_id is not None else new_run_id()
        path = _journal_path(run_id)
        if path.exists():
            raise ExecutionError(
                f"journal {run_id!r} already exists; resume it with "
                f"'repro resume {run_id}' or pick another --run-id"
            )
        journal = cls(run_id, [])
        journal._append(
            {
                "event": "begin",
                "schema": JOURNAL_SCHEMA,
                "run": run_id,
                "kind": kind,
                "spec": spec,
                "time": time.time(),
            }
        )
        return journal

    @classmethod
    def load(cls, run_id: str) -> "RunJournal":
        """Open an existing journal for inspection and/or appending.

        Tolerates a truncated final line (a kill mid-append); raises
        :class:`ExecutionError` when the journal does not exist or has no
        readable header.
        """
        path = _journal_path(run_id)
        try:
            raw = path.read_text()
        except OSError:
            known = ", ".join(list_runs()[:5]) or "(none)"
            raise ExecutionError(
                f"no journal for run id {run_id!r} under {journal_dir()} "
                f"(known runs: {known})"
            )
        lines: List[Dict] = []
        for text in raw.splitlines():
            if not text.strip():
                continue
            try:
                lines.append(json.loads(text))
            except json.JSONDecodeError:
                continue  # truncated tail from a mid-append kill
        if not lines or lines[0].get("event") != "begin":
            raise ExecutionError(
                f"journal {run_id!r} has no readable begin header"
            )
        return cls(run_id, lines)

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            finally:
                self._fd = None

    # -- writing -------------------------------------------------------
    def _append(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        data = line.encode() + b"\n"
        if self._fd is None:
            path = _journal_path(self.run_id)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
        os.write(self._fd, data)  # one write: atomic line under O_APPEND
        self._lines.append(record)

    def record_job(
        self,
        fingerprint: str,
        status: str,
        *,
        cached: bool = False,
        **extra,
    ) -> None:
        """Journal one job's terminal status (``done``/``quarantined``)."""
        record = {
            "event": "job",
            "fp": fingerprint,
            "status": status,
            "cached": cached,
        }
        record.update(extra)
        self._append(record)

    def record_event(self, name: str, **extra) -> None:
        """Journal a batch-level event (``interrupted``, ``complete``...)."""
        record = {"event": name, "time": time.time()}
        record.update(extra)
        self._append(record)

    # -- reading -------------------------------------------------------
    @property
    def header(self) -> Dict:
        return self._lines[0]

    @property
    def lines(self) -> List[Dict]:
        return list(self._lines)

    def completed_fingerprints(self) -> Set[str]:
        """Fingerprints of every job journaled ``done``."""
        return {
            line["fp"]
            for line in self._lines
            if line.get("event") == "job" and line.get("status") == "done"
        }

    def quarantined_fingerprints(self) -> Set[str]:
        return {
            line["fp"]
            for line in self._lines
            if line.get("event") == "job"
            and line.get("status") == "quarantined"
        }

    def is_complete(self) -> bool:
        """True when a ``complete`` event was journaled."""
        return any(line.get("event") == "complete" for line in self._lines)

    def was_interrupted(self) -> bool:
        return any(
            line.get("event") == "interrupted" for line in self._lines
        )
