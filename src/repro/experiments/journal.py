"""Run journal: append-only JSONL record of batch execution.

Every journaled batch (one ``repro experiment <id>`` invocation, or any
caller that wraps :func:`repro.experiments.runner.run_jobs` in
:func:`repro.experiments.runner.attach_journal`) writes a line-oriented
log under ``<cache-dir>/journal/<run-id>.jsonl``:

* a ``begin`` header naming the run and how to re-run it (the manifest);
* one ``job`` line per finished job — its content fingerprint, terminal
  status (``done`` or ``quarantined``) and whether it came from the
  cache;
* terminal ``interrupted`` / ``complete`` events.

Each line is one JSON object written with a **single** ``write()`` on an
``O_APPEND`` descriptor, so concurrent writers and a kill at any byte
offset leave at worst one truncated *final* line — never interleaved or
corrupted earlier lines.  The loader tolerates a truncated tail for
exactly this reason.

Lines are also *verified*: every record carries a short per-line
checksum (``sha``), and a cleanly completed journal ends with a ``seal``
footer covering every byte before it — so **mid-file** damage (bit rot,
a torn interior line left by an interrupted resume) is detected, not
silently skipped.  The default loader stays tolerant — it counts damage
in :attr:`RunJournal.corrupt_lines` and drops the untrustworthy lines,
because the worst case of a lost ``done`` line is one recompute on
resume — while ``strict=True`` (used by ``repro cache fsck``) raises
:class:`~repro.errors.CorruptJournalError`.

Journal writes never crash a batch: persistent ``OSError`` flips the
shared store into memory-only degraded mode (see
:func:`repro.sim.cache.note_write_failure`) and the journal keeps its
records in memory.

The journal is the *manifest* side of crash safety; the *result* side is
the content-addressed disk cache (:mod:`repro.sim.cache`), which every
completed job lands in before its journal line is written.  ``repro
resume <run-id>`` therefore only needs the header to know *what* to
re-run — every journaled-complete job is a free cache hit.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Set

from ..chaos import injector as _chaos
from ..errors import CorruptJournalError, ExecutionError
from ..sim import cache as sim_cache

#: Journal line-format version, recorded in the ``begin`` header.
#: 2: every line carries a ``sha`` checksum and completed journals end
#: with a ``seal`` footer; v1 journals (no checksums) still load.
JOURNAL_SCHEMA = 2


def journal_dir() -> Path:
    """Directory holding run journals (beside the result cache tiers)."""
    return sim_cache.cache_dir() / "journal"


def _journal_path(run_id: str) -> Path:
    if not run_id or "/" in run_id or run_id.startswith("."):
        raise ExecutionError(f"invalid run id {run_id!r}")
    return journal_dir() / f"{run_id}.jsonl"


#: Per-process sequence folded into run ids: two batches started in the
#: same second by one process (sweep drivers, the serve daemon's restart
#: loop) can no longer collide.
_RUN_SEQ = itertools.count(1)


def new_run_id() -> str:
    """Timestamp + pid + sequence: unique per process, sortable by
    start time."""
    return (
        time.strftime("%Y%m%dT%H%M%S")
        + f"-{os.getpid()}-{next(_RUN_SEQ)}"
    )


def _line_sha(record: Dict) -> str:
    """Short content checksum of one journal record (sans its ``sha``)."""
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def list_runs() -> List[str]:
    """Known run ids, most recently modified first."""
    directory = journal_dir()
    if not directory.is_dir():
        return []
    entries = []
    for path in directory.glob("*.jsonl"):
        try:
            entries.append((path.stat().st_mtime, path.stem))
        except OSError:
            continue
    return [run_id for _mtime, run_id in sorted(entries, reverse=True)]


def latest_run_id() -> Optional[str]:
    runs = list_runs()
    return runs[0] if runs else None


class RunJournal:
    """One run's append-only journal (see module docstring for format)."""

    def __init__(self, run_id: str, lines: List[Dict]):
        self.run_id = run_id
        self._lines = lines
        self._fd: Optional[int] = None
        #: Damaged lines dropped by the tolerant loader (mid-file bit
        #: rot, torn interior lines); 0 for a healthy journal.
        self.corrupt_lines = 0
        #: ``None`` = no seal footer (in-flight or interrupted journal);
        #: ``True`` = seal present and verified; ``False`` = seal broken.
        self.sealed: Optional[bool] = None
        #: True once a disk append has been skipped (degraded store).
        self.degraded = False
        # Running hash of every raw byte appended, so seal() can commit
        # to the exact file contents; _written counts physical disk
        # lines (not memory-only degraded appends).
        self._hasher = hashlib.sha256()
        self._written = 0

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(
        cls,
        kind: str,
        spec: Dict,
        run_id: Optional[str] = None,
    ) -> "RunJournal":
        """Start a new journal; writes the ``begin`` manifest line."""
        run_id = run_id if run_id is not None else new_run_id()
        path = _journal_path(run_id)
        if path.exists():
            raise ExecutionError(
                f"journal {run_id!r} already exists; resume it with "
                f"'repro resume {run_id}' or pick another --run-id"
            )
        journal = cls(run_id, [])
        journal._append(
            {
                "event": "begin",
                "schema": JOURNAL_SCHEMA,
                "run": run_id,
                "kind": kind,
                "spec": spec,
                "time": time.time(),
            }
        )
        return journal

    @classmethod
    def load(cls, run_id: str, strict: bool = False) -> "RunJournal":
        """Open an existing journal for inspection and/or appending.

        Tolerates a truncated final line (a kill mid-append).  Interior
        damage — an unparseable non-final line, or any line whose ``sha``
        checksum mismatches — is *dropped and counted* in
        :attr:`corrupt_lines` by default, or raised as
        :class:`~repro.errors.CorruptJournalError` with ``strict=True``.
        Raises :class:`ExecutionError` when the journal does not exist or
        has no readable header.
        """
        path = _journal_path(run_id)
        try:
            raw = path.read_bytes()
        except OSError:
            known = ", ".join(list_runs()[:5]) or "(none)"
            raise ExecutionError(
                f"no journal for run id {run_id!r} under {journal_dir()} "
                f"(known runs: {known})"
            )
        raw_lines = raw.splitlines(keepends=True)
        lines: List[Dict] = []
        corrupt = 0
        damage: List[str] = []
        sealed: Optional[bool] = None
        hasher = hashlib.sha256()
        written = 0  # lines physically on disk before the current one
        for index, raw_line in enumerate(raw_lines):
            before = hasher.hexdigest()
            hasher.update(raw_line)
            text = raw_line.decode("utf-8", errors="replace").strip()
            if not text:
                written += 1
                continue
            final = index == len(raw_lines) - 1
            try:
                record = json.loads(text)
            except json.JSONDecodeError:
                if final and not raw_line.endswith(b"\n"):
                    break  # truncated tail from a mid-append kill
                corrupt += 1
                damage.append(f"line {index + 1}: not valid JSON")
                written += 1
                continue
            if not isinstance(record, dict):
                corrupt += 1
                damage.append(f"line {index + 1}: not a JSON object")
                written += 1
                continue
            recorded_sha = record.pop("sha", None)
            if recorded_sha is not None and recorded_sha != _line_sha(record):
                corrupt += 1
                damage.append(f"line {index + 1}: checksum mismatch")
                written += 1
                continue
            if record.get("event") == "seal":
                sealed = (
                    record.get("sha256") == before
                    and record.get("lines") == written
                )
                if not sealed:
                    corrupt += 1
                    damage.append(f"line {index + 1}: broken seal")
                written += 1
                continue
            written += 1
            lines.append(record)
        if not lines or lines[0].get("event") != "begin":
            raise ExecutionError(
                f"journal {run_id!r} has no readable begin header"
            )
        if strict and damage:
            raise CorruptJournalError(
                f"journal {run_id!r} has {corrupt} damaged line(s): "
                + "; ".join(damage)
            )
        journal = cls(run_id, lines)
        journal.corrupt_lines = corrupt
        journal.sealed = sealed
        journal._hasher = hasher
        journal._written = written
        return journal

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            finally:
                self._fd = None

    # -- writing -------------------------------------------------------
    def _append(self, record: Dict) -> None:
        stamped = dict(record)
        stamped["sha"] = _line_sha(record)
        line = json.dumps(stamped, sort_keys=True, separators=(",", ":"))
        data = line.encode() + b"\n"
        self._lines.append(record)
        if sim_cache.writes_suppressed():
            self.degraded = True
            return  # memory-only degraded mode: the record still counts
        try:
            data = _chaos.mangle(
                "journal.append",
                data,
                token=f"{self.run_id}:{len(self._lines)}",
            )
            if self._fd is None:
                path = _journal_path(self.run_id)
                path.parent.mkdir(parents=True, exist_ok=True)
                self._fd = os.open(
                    path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
                )
            os.write(self._fd, data)  # one write: atomic under O_APPEND
        except OSError as exc:
            self.degraded = True
            sim_cache.note_write_failure(
                exc, f"journal append for run {self.run_id!r}"
            )
        else:
            # hash what actually landed on disk, so a sealed journal's
            # footer commits to the real file bytes
            self._hasher.update(data)
            self._written += 1
            sim_cache.note_write_success()

    def seal(self) -> None:
        """Append the integrity footer committing to every byte so far.

        Called automatically when a ``complete`` event is journaled; a
        journal without a seal is *expected* for interrupted runs, so
        the loader never treats its absence as damage.
        """
        self._append(
            {
                "event": "seal",
                "lines": self._written,
                "sha256": self._hasher.hexdigest(),
            }
        )

    def record_job(
        self,
        fingerprint: str,
        status: str,
        *,
        cached: bool = False,
        **extra,
    ) -> None:
        """Journal one job's terminal status (``done``/``quarantined``)."""
        record = {
            "event": "job",
            "fp": fingerprint,
            "status": status,
            "cached": cached,
        }
        record.update(extra)
        self._append(record)

    def record_event(self, name: str, **extra) -> None:
        """Journal a batch-level event (``interrupted``, ``complete``...).

        A ``complete`` event also seals the journal: clean completions
        always end with a verified footer.
        """
        record = {"event": name, "time": time.time()}
        record.update(extra)
        self._append(record)
        if name == "complete":
            self.seal()

    # -- reading -------------------------------------------------------
    @property
    def header(self) -> Dict:
        return self._lines[0]

    @property
    def lines(self) -> List[Dict]:
        return list(self._lines)

    def completed_fingerprints(self) -> Set[str]:
        """Fingerprints of every job journaled ``done``."""
        return {
            line["fp"]
            for line in self._lines
            if line.get("event") == "job" and line.get("status") == "done"
        }

    def quarantined_fingerprints(self) -> Set[str]:
        return {
            line["fp"]
            for line in self._lines
            if line.get("event") == "job"
            and line.get("status") == "quarantined"
        }

    def is_complete(self) -> bool:
        """True when a ``complete`` event was journaled."""
        return any(line.get("event") == "complete" for line in self._lines)

    def was_interrupted(self) -> bool:
        return any(
            line.get("event") == "interrupted" for line in self._lines
        )
