"""Plain-text table/bar rendering for experiment outputs.

Every experiment module renders its result the way the paper presents it —
as rows of a table or series of a bar chart — so the benchmark harness can
print directly comparable output.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class TextTable:
    """Minimal fixed-width text table."""

    def __init__(self, headers: Sequence[str]):
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def stacked_bar(
    parts: Sequence[float], labels: Sequence[str], width: int = 40
) -> str:
    """Render one stacked horizontal bar (e.g. sync/dm/operation split)."""
    total = sum(parts)
    if total <= 0:
        return "(empty)"
    chars = "#=."
    segments = []
    for i, part in enumerate(parts):
        n = int(round(part / total * width))
        segments.append(chars[i % len(chars)] * n)
    bar = "".join(segments)[:width].ljust(width)
    legend = " ".join(
        f"{labels[i]}={parts[i]:.3g}" for i in range(len(parts))
    )
    return f"|{bar}| {legend}"


def format_seconds(value: float) -> str:
    """Human-readable duration."""
    if value >= 1.0:
        return f"{value:.2f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f} ms"
    return f"{value * 1e6:.1f} us"


def normalized(values: Iterable[float], reference: float) -> List[float]:
    """Normalize values to ``reference`` (the paper normalizes to Hetero)."""
    if reference <= 0:
        raise ValueError("reference must be positive")
    return [v / reference for v in values]
