"""Crash-safe parallel experiment runner: a supervised process pool.

The evaluation is dozens of mutually independent (graph, policy, config)
simulations.  This module runs batches of them on worker processes and
lands every result in the content-addressed cache (:mod:`repro.sim.cache`),
so the experiment modules themselves stay strictly sequential and
deterministic: they *prefetch* their runs through this module, then execute
their unchanged per-model loops against a warm cache.  Rendered artifacts
are therefore byte-identical whatever the worker count.

Unlike a bare ``pool.map``, the batch is **supervised** — one bad job
cannot take the evaluation down with it:

* jobs are submitted individually, at most one per worker, so every
  in-flight job has a known start time;
* a per-job watchdog (``REPRO_JOB_TIMEOUT`` seconds, 0/unset = off) kills
  the pool and retries when a job hangs;
* a crashed worker (``BrokenProcessPool`` — e.g. a ``kill -9`` or a
  segfault) triggers a pool respawn; the jobs that were in flight are
  re-run **one at a time** so the actual crasher is identified without
  ever quarantining an innocent neighbour;
* transient failures are retried with capped exponential backoff
  (``REPRO_JOB_RETRIES`` attempts beyond the first, default 2; base delay
  ``REPRO_RETRY_BACKOFF`` seconds doubling up to :data:`BACKOFF_CAP_S`);
* jobs that exhaust their budget are **quarantined** — recorded with
  fingerprint, failure kind and last exception — and the rest of the
  batch still completes.  :func:`run_jobs` then raises
  :class:`~repro.errors.PoisonJob` describing them.

With a journal attached (:func:`attach_journal`), every job's terminal
status is append-logged to ``<cache-dir>/journal/<run-id>.jsonl`` and
SIGINT/SIGTERM interrupt the batch *gracefully*: completed results are
already flushed to the cache and journal, and the raised
:class:`~repro.errors.Interrupted` names the run id that ``repro resume``
needs to pick the batch back up (journaled-complete jobs are free cache
hits on resume).

Worker count resolution (first match wins): :func:`set_jobs` (the CLI's
top-level ``--jobs`` flag calls this); the ``REPRO_JOBS`` environment
variable; 1 — everything stays in-process, no pool is spawned.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..chaos import injector as _chaos
from ..config import SystemConfig
from ..errors import (
    CacheInconsistency,
    Interrupted,
    JobTimeout,
    PoisonJob,
)
from ..nn.graph import Graph
from ..obs.report import BatchSupervision
from ..sim import cache as sim_cache
from ..sim.policy import SchedulingPolicy
from ..sim.results import RunResult
from .journal import RunJournal

#: One simulation job: ``(graph, policy, config, steps)`` — a 4-tuple —
#: or the 5-tuple form with a trailing :class:`~repro.faults.FaultSpec`
#: (or ``None``).  :func:`run_jobs` accepts both; internally everything
#: is normalized to the 5-slot form.
Job = Union[
    Tuple[Graph, SchedulingPolicy, SystemConfig, Optional[int]],
    Tuple[Graph, SchedulingPolicy, SystemConfig, Optional[int], object],
]

#: Ceiling of the exponential retry backoff.
BACKOFF_CAP_S = 5.0

#: How often the supervisor wakes to check deadlines and signals.
_POLL_S = 0.05


def _normalize(job: Job):
    """Pad a 4-tuple job to the 5-slot (graph, policy, config, steps,
    faults) form; fault specs are frozen dataclasses, hence picklable."""
    if len(job) == 4:
        return (*job, None)
    if len(job) == 5:
        return tuple(job)
    raise ValueError(f"job must have 4 or 5 elements, got {len(job)}")

_jobs_override: Optional[int] = None


def set_jobs(n: Optional[int]) -> None:
    """Set the worker count programmatically (None reverts to the env)."""
    global _jobs_override
    if n is not None and n < 1:
        raise ValueError(f"jobs must be >= 1, got {n}")
    _jobs_override = n


def get_jobs() -> int:
    """Resolved worker count (>= 1)."""
    if _jobs_override is not None:
        return _jobs_override
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
    return 1


def _env_float(name: str, default: float) -> float:
    text = os.environ.get(name, "").strip()
    if not text:
        return default
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {text!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def job_timeout() -> float:
    """Per-job watchdog in seconds (``REPRO_JOB_TIMEOUT``; 0 disables)."""
    return _env_float("REPRO_JOB_TIMEOUT", 0.0)


def job_retries() -> int:
    """Retries beyond the first attempt (``REPRO_JOB_RETRIES``)."""
    return int(_env_float("REPRO_JOB_RETRIES", 2.0))


def retry_backoff() -> float:
    """Base retry delay in seconds (``REPRO_RETRY_BACKOFF``)."""
    return _env_float("REPRO_RETRY_BACKOFF", 0.05)


# ---------------------------------------------------------------------------
# journal attachment
# ---------------------------------------------------------------------------
_active_journal: Optional[RunJournal] = None

_last_supervision: Optional[BatchSupervision] = None


def active_journal() -> Optional[RunJournal]:
    return _active_journal


def last_supervision() -> Optional[BatchSupervision]:
    """Supervision counts of the most recent :func:`run_jobs` batch."""
    return _last_supervision


@contextmanager
def attach_journal(journal: RunJournal):
    """Route every :func:`run_jobs` call in the block through ``journal``
    (job statuses are append-logged; interrupts become resumable)."""
    global _active_journal
    previous = _active_journal
    _active_journal = journal
    try:
        yield journal
    finally:
        _active_journal = previous


# ---------------------------------------------------------------------------
# graceful signals
# ---------------------------------------------------------------------------
@contextmanager
def _graceful_interrupt(stop: threading.Event):
    """Turn the first SIGINT/SIGTERM into a stop flag (second one is
    immediate).  No-op outside the main thread, where the default
    handling stays in force."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    seen = {"count": 0}

    def _handler(signum, frame):
        seen["count"] += 1
        stop.set()
        if seen["count"] > 1:  # second signal: stop being graceful
            raise KeyboardInterrupt

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, _handler)
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


def _ignore_sigint():
    """Worker initializer: the parent alone decides how Ctrl-C ends a
    batch; workers must not die mid-write from a terminal signal."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


# ---------------------------------------------------------------------------
# supervision
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class JobFailure:
    """One quarantined job: why the supervisor gave up on it."""

    index: int  # position in the submitted batch
    key: str  # content fingerprint (or synthetic key)
    kind: str  # "crash" | "timeout" | "error"
    error: str  # repr of the last failure
    attempts: int


@dataclass
class BatchOutcome:
    """What a supervised batch produced (quarantined slots are None)."""

    results: List[Optional[object]]
    supervision: BatchSupervision
    failures: List[JobFailure] = field(default_factory=list)


class _Supervisor:
    """Drives one batch through a respawnable process pool."""

    def __init__(
        self,
        fn: Callable,
        tasks: Sequence,
        keys: Sequence[str],
        n_workers: int,
        journal: Optional[RunJournal],
        on_result: Optional[Callable[[int, object], None]],
    ):
        self.fn = fn
        self.tasks = list(tasks)
        self.keys = list(keys)
        self.n_workers = n_workers
        self.journal = journal
        self.on_result = on_result
        self.timeout = job_timeout()
        self.max_attempts = job_retries() + 1
        self.backoff = retry_backoff()
        n = len(self.tasks)
        self.results: List[Optional[object]] = [None] * n
        self.settled = [False] * n  # completed or quarantined
        self.attempts = [0] * n
        self.not_before = [0.0] * n
        self.last_error = [""] * n
        self.pending = deque(range(n))
        self.solo = deque()  # suspects re-run one at a time
        self.inflight = {}  # future -> (index, started_monotonic, is_probe)
        self.pool: Optional[ProcessPoolExecutor] = None
        self.failures: List[JobFailure] = []
        self.completed = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.respawns = 0
        self.stop = threading.Event()
        self.interrupted = False

    # -- pool lifecycle ----------------------------------------------
    def _ensure_pool(self) -> None:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(
                max_workers=self.n_workers, initializer=_ignore_sigint
            )

    def _kill_pool(self) -> None:
        """Tear the pool down hard (hung/broken workers included)."""
        pool, self.pool = self.pool, None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    # -- bookkeeping -------------------------------------------------
    def _settle_ok(self, index: int, result) -> None:
        self.results[index] = result
        self.settled[index] = True
        self.completed += 1
        if self.on_result is not None:
            self.on_result(index, result)
        if self.journal is not None:
            self.journal.record_job(self.keys[index], "done", cached=False)

    def _charge(self, index: int, kind: str, error: BaseException) -> None:
        """Charge a failed attempt; requeue with backoff or quarantine."""
        self.attempts[index] += 1
        self.last_error[index] = repr(error)
        if kind == "timeout":
            self.timeouts += 1
        if self.attempts[index] >= self.max_attempts:
            failure = JobFailure(
                index=index,
                key=self.keys[index],
                kind=kind,
                error=self.last_error[index],
                attempts=self.attempts[index],
            )
            self.failures.append(failure)
            self.settled[index] = True
            if self.journal is not None:
                self.journal.record_job(
                    self.keys[index],
                    "quarantined",
                    kind=kind,
                    error=self.last_error[index],
                    attempts=self.attempts[index],
                )
            return
        self.retries += 1
        delay = min(
            BACKOFF_CAP_S, self.backoff * (2 ** (self.attempts[index] - 1))
        )
        self.not_before[index] = time.monotonic() + delay
        # a crasher retries in isolation; errors/timeouts rejoin the queue
        (self.solo if kind == "crash" else self.pending).append(index)

    # -- scheduling --------------------------------------------------
    def _submit(self, index: int, is_probe: bool) -> None:
        self._ensure_pool()
        try:
            future = self.pool.submit(self.fn, self.tasks[index])
        except BrokenExecutor:
            # pool died between checks: respawn and let the next _fill
            # pick the job up again (uncharged — nothing actually ran)
            self.solo.appendleft(index)
            self.inflight.clear()
            self._kill_pool()
            self.respawns += 1
            return
        self.inflight[future] = (index, time.monotonic(), is_probe)

    def _fill(self) -> None:
        now = time.monotonic()
        if self.solo:
            # isolation mode: exactly one suspect in flight, nothing
            # else — a pool break then has an unambiguous culprit
            if self.inflight:
                return
            for _ in range(len(self.solo)):
                index = self.solo.popleft()
                if self.not_before[index] <= now:
                    self._submit(index, is_probe=True)
                    return
                self.solo.append(index)
            return
        rotated = 0
        while self.pending and len(self.inflight) < self.n_workers:
            if rotated >= len(self.pending):
                return  # everything left is in backoff
            index = self.pending.popleft()
            if self.not_before[index] > now:
                self.pending.append(index)
                rotated += 1
                continue
            self._submit(index, is_probe=False)

    def _on_pool_break(self) -> None:
        """A worker died.  A lone isolation probe is definitively the
        crasher and gets charged; otherwise every in-flight job becomes a
        suspect, to be re-run one at a time against a fresh pool."""
        self.crashes += 1
        victims = list(self.inflight.values())
        self.inflight.clear()
        if len(victims) == 1 and victims[0][2]:
            index = victims[0][0]
            self._charge(
                index,
                "crash",
                RuntimeError("worker process died (BrokenProcessPool)"),
            )
        else:
            for index, _t0, _probe in victims:
                self.solo.append(index)
        self._kill_pool()
        self.respawns += 1

    def _expire_timeouts(self) -> None:
        if not self.timeout:
            return
        now = time.monotonic()
        expired = {
            future: index
            for future, (index, t0, _probe) in self.inflight.items()
            if now - t0 > self.timeout
        }
        if not expired:
            return
        for future, index in expired.items():
            self.inflight.pop(future, None)
            self._charge(
                index,
                "timeout",
                JobTimeout(
                    f"job {self.keys[index]} exceeded "
                    f"REPRO_JOB_TIMEOUT={self.timeout:g}s"
                ),
            )
        # the hung worker is unreachable: kill the pool; co-scheduled
        # victims requeue without being charged an attempt
        for index, _t0, _probe in self.inflight.values():
            self.pending.appendleft(index)
        self.inflight.clear()
        self._kill_pool()
        self.respawns += 1

    # -- main loop ---------------------------------------------------
    def run(self) -> BatchOutcome:
        try:
            with _graceful_interrupt(self.stop):
                self._loop()
        finally:
            self._kill_pool()
        if self.stop.is_set():
            self.interrupted = True  # signal at any point stops the batch
        supervision = BatchSupervision(
            submitted=len(self.tasks),
            cached=0,
            completed=self.completed,
            retries=self.retries,
            timeouts=self.timeouts,
            crashes=self.crashes,
            respawns=self.respawns,
            quarantined=tuple(f.key for f in self.failures),
            interrupted=self.interrupted,
        )
        return BatchOutcome(
            results=self.results,
            supervision=supervision,
            failures=self.failures,
        )

    def _loop(self) -> None:
        while not all(self.settled):
            if self.stop.is_set():
                self.interrupted = True
                return
            self._fill()
            if not self.inflight:
                time.sleep(0.01)  # everything is backing off
                continue
            done, _ = wait(
                list(self.inflight),
                timeout=_POLL_S,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                entry = self.inflight.pop(future, None)
                if entry is None:
                    continue
                index = entry[0]
                try:
                    result = future.result()
                except BrokenExecutor:
                    # leave it in flight: _on_pool_break sweeps the whole
                    # in-flight set (every sibling future is doomed too)
                    broken = True
                    self.inflight[future] = entry
                except BaseException as exc:  # noqa: BLE001 - job error
                    self._charge(index, "error", exc)
                else:
                    self._settle_ok(index, result)
            if broken:
                self._on_pool_break()
            else:
                self._expire_timeouts()


def supervise(
    fn: Callable,
    tasks: Sequence,
    keys: Optional[Sequence[str]] = None,
    *,
    n_workers: Optional[int] = None,
    journal: Optional[RunJournal] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> BatchOutcome:
    """Run ``fn`` over ``tasks`` under the supervised pool.

    ``fn`` and every task must be picklable.  ``keys`` names each task in
    journals and failure reports (defaults to ``job-<i>``).  Never raises
    for job failures — inspect ``outcome.failures``; raises
    :class:`~repro.errors.Interrupted` on SIGINT/SIGTERM.
    """
    tasks = list(tasks)
    if keys is None:
        keys = [f"job-{i}" for i in range(len(tasks))]
    if len(keys) != len(tasks):
        raise ValueError(
            f"{len(keys)} keys for {len(tasks)} tasks"
        )
    workers = n_workers if n_workers is not None else get_jobs()
    workers = max(1, min(workers, len(tasks))) if tasks else 1
    supervisor = _Supervisor(fn, tasks, keys, workers, journal, on_result)
    outcome = supervisor.run()
    global _last_supervision
    _last_supervision = outcome.supervision
    if supervisor.interrupted:
        run_id = journal.run_id if journal is not None else None
        if journal is not None:
            journal.record_event(
                "interrupted",
                settled=sum(supervisor.settled),
                total=len(tasks),
            )
        raise Interrupted(
            "batch interrupted by signal; completed results are cached"
            + (f" — resume with: repro resume {run_id}" if run_id else ""),
            run_id=run_id,
        )
    return outcome


# ---------------------------------------------------------------------------
# simulation batches
# ---------------------------------------------------------------------------
def _worker(job: Job) -> RunResult:
    """Run one job in a pool worker (module-level: must be picklable)."""
    _chaos.maybe_kill("worker.kill")
    graph, policy, config, steps, faults = _normalize(job)
    return sim_cache.simulate_cached(
        graph, policy, config, steps=steps, faults=faults
    )


def _job_meta(job: Job, result: RunResult) -> Dict:
    """Repair metadata for a parent-side cache store of ``result``."""
    graph, _policy, config, _steps, faults = job
    return sim_cache.object_meta(result, graph, config, faults=faults)


def run_jobs(jobs: Sequence[Job]) -> List[RunResult]:
    """Run every job under supervision; parallel when ``get_jobs() > 1``.

    Results come back in job order and are identical to serial execution:
    each simulation is single-process deterministic, and the pool adds no
    shared state beyond the result cache.  Raises
    :class:`~repro.errors.PoisonJob` if any job was quarantined (after
    the rest of the batch completed), :class:`~repro.errors.Interrupted`
    on SIGINT/SIGTERM, and :class:`~repro.errors.CacheInconsistency` if a
    stored result cannot be read back.
    """
    global _last_supervision
    jobs = [_normalize(job) for job in jobs]
    journal = _active_journal
    prints = [
        sim_cache.run_fingerprint(g, p, c, s, faults=f)
        for g, p, c, s, f in jobs
    ]
    cached_prints = {
        fp for fp in prints if sim_cache.get(fp) is not None
    }
    if journal is not None and cached_prints:
        already = journal.completed_fingerprints()
        for fp in sorted(cached_prints - already):
            journal.record_job(fp, "done", cached=True)
    pending = [i for i, fp in enumerate(prints) if fp not in cached_prints]
    n_workers = min(get_jobs(), max(1, len(pending)))

    failures: List[JobFailure] = []
    if pending and n_workers <= 1:
        supervision = _run_serial(jobs, prints, pending, journal)
    elif pending:
        outcome = supervise(
            _worker,
            [jobs[i] for i in pending],
            keys=[prints[i] for i in pending],
            n_workers=n_workers,
            journal=journal,
            on_result=lambda k, result: sim_cache.put(
                prints[pending[k]],
                result,
                meta=_job_meta(jobs[pending[k]], result),
            ),
        )
        failures = outcome.failures
        supervision = outcome.supervision
    else:
        supervision = BatchSupervision(submitted=0)
    _last_supervision = BatchSupervision(
        submitted=len(jobs),
        cached=len(jobs) - len(pending),
        completed=supervision.completed,
        retries=supervision.retries,
        timeouts=supervision.timeouts,
        crashes=supervision.crashes,
        respawns=supervision.respawns,
        quarantined=supervision.quarantined,
        interrupted=supervision.interrupted,
    )
    if failures:
        lines = ", ".join(
            f"{f.key[:12]} ({f.kind} after {f.attempts} attempts: {f.error})"
            for f in failures
        )
        raise PoisonJob(
            f"{len(failures)} of {len(jobs)} jobs quarantined — batch "
            f"completed without them: {lines}",
            failures=failures,
        )
    results = [sim_cache.get(fp) for fp in prints]
    missing = [
        fp for fp, result in zip(prints, results) if result is None
    ]
    if missing:
        raise CacheInconsistency(
            f"{len(missing)} completed results vanished from the cache "
            f"(first: {missing[0]}); the disk tier may have been pruned "
            "or disabled mid-batch"
        )
    return results


def _run_serial(jobs, prints, pending, journal) -> BatchSupervision:
    """In-process path: no pool, but still journaled and interruptible."""
    stop = threading.Event()
    completed = 0
    interrupted = False
    with _graceful_interrupt(stop):
        for i in pending:
            if stop.is_set():
                interrupted = True
                break
            result = _worker(jobs[i])
            sim_cache.put(prints[i], result, meta=_job_meta(jobs[i], result))
            completed += 1
            if journal is not None:
                journal.record_job(prints[i], "done", cached=False)
        else:
            interrupted = stop.is_set()
    supervision = BatchSupervision(
        submitted=len(pending),
        completed=completed,
        interrupted=interrupted,
    )
    if interrupted:
        run_id = journal.run_id if journal is not None else None
        if journal is not None:
            journal.record_event(
                "interrupted", settled=completed, total=len(pending)
            )
        global _last_supervision
        _last_supervision = supervision
        raise Interrupted(
            "batch interrupted by signal; completed results are cached"
            + (f" — resume with: repro resume {run_id}" if run_id else ""),
            run_id=run_id,
        )
    return supervision


def prefetch_model_runs(
    specs: Sequence[Tuple],
) -> None:
    """Warm the cache for ``run_model_on``-style specs.

    Each spec is ``(model, config_name)`` optionally followed by ``base``
    (a :class:`SystemConfig` or None) and ``steps`` — positionally the
    same arguments :func:`repro.experiments.common.run_model_on` takes.

    A no-op in surrogate mode: estimated runs cost microseconds each, so
    warming the exact-result cache would just re-introduce the
    simulations the surrogate exists to skip.
    """
    from .common import cached_graph, resolve_configuration, surrogate_enabled

    if surrogate_enabled():
        return

    jobs: List[Job] = []
    for spec in specs:
        model, config_name = spec[0], spec[1]
        base = spec[2] if len(spec) > 2 else None
        steps = spec[3] if len(spec) > 3 else None
        config, policy = resolve_configuration(config_name, base)
        jobs.append((cached_graph(model), policy, config, steps))
    run_jobs(jobs)
