"""Parallel experiment runner: fan independent simulations over processes.

The evaluation is dozens of mutually independent (graph, policy, config)
simulations.  This module runs batches of them on a
:class:`concurrent.futures.ProcessPoolExecutor` and lands every result in
the content-addressed cache (:mod:`repro.sim.cache`), so the experiment
modules themselves stay strictly sequential and deterministic: they
*prefetch* their runs through this module, then execute their unchanged
per-model loops against a warm cache.  Rendered artifacts are therefore
byte-identical whatever the worker count.

Worker count resolution (first match wins):

* :func:`set_jobs` (the CLI's top-level ``--jobs`` flag calls this);
* the ``REPRO_JOBS`` environment variable;
* 1 — everything stays in-process, no pool is spawned.

Workers inherit ``REPRO_JOBS``/``REPRO_CACHE*`` through the environment
and write their results to the shared disk tier; the parent additionally
seeds its in-memory tier from the returned values, so prefetched runs hit
even when the disk tier is disabled.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..nn.graph import Graph
from ..sim import cache as sim_cache
from ..sim.policy import SchedulingPolicy
from ..sim.results import RunResult

#: One simulation job: (graph, policy, config, steps) — optionally with a
#: fifth element, a :class:`~repro.faults.FaultSpec` (or None).
Job = Tuple[Graph, SchedulingPolicy, SystemConfig, Optional[int]]


def _normalize(job: Job):
    """Pad a 4-tuple job to the 5-slot (graph, policy, config, steps,
    faults) form; fault specs are frozen dataclasses, hence picklable."""
    if len(job) == 4:
        return (*job, None)
    if len(job) == 5:
        return tuple(job)
    raise ValueError(f"job must have 4 or 5 elements, got {len(job)}")

_jobs_override: Optional[int] = None


def set_jobs(n: Optional[int]) -> None:
    """Set the worker count programmatically (None reverts to the env)."""
    global _jobs_override
    if n is not None and n < 1:
        raise ValueError(f"jobs must be >= 1, got {n}")
    _jobs_override = n


def get_jobs() -> int:
    """Resolved worker count (>= 1)."""
    if _jobs_override is not None:
        return _jobs_override
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
    return 1


def _worker(job: Job) -> RunResult:
    """Run one job in a pool worker (module-level: must be picklable)."""
    graph, policy, config, steps, faults = _normalize(job)
    return sim_cache.simulate_cached(
        graph, policy, config, steps=steps, faults=faults
    )


def run_jobs(jobs: Sequence[Job]) -> List[RunResult]:
    """Run every job, in parallel when ``get_jobs() > 1``.

    Results come back in job order and are identical to serial execution:
    each simulation is single-process deterministic, and the pool adds no
    shared state beyond the result cache.
    """
    jobs = list(jobs)
    n_workers = min(get_jobs(), len(jobs))
    if n_workers <= 1:
        return [_worker(job) for job in jobs]
    # Skip jobs already cached — no point shipping them to a worker.
    prints = [
        sim_cache.run_fingerprint(g, p, c, s, faults=f)
        for g, p, c, s, f in map(_normalize, jobs)
    ]
    pending = [
        i for i, fp in enumerate(prints) if sim_cache.get(fp) is None
    ]
    if pending:
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(pending))
        ) as pool:
            fresh = pool.map(_worker, [jobs[i] for i in pending])
            for i, result in zip(pending, fresh):
                sim_cache.put(prints[i], result)
    results = [sim_cache.get(fp) for fp in prints]
    assert all(r is not None for r in results)
    return results


def prefetch_model_runs(
    specs: Sequence[Tuple],
) -> None:
    """Warm the cache for ``run_model_on``-style specs.

    Each spec is ``(model, config_name)`` optionally followed by ``base``
    (a :class:`SystemConfig` or None) and ``steps`` — positionally the
    same arguments :func:`repro.experiments.common.run_model_on` takes.
    """
    from .common import cached_graph, resolve_configuration

    jobs: List[Job] = []
    for spec in specs:
        model, config_name = spec[0], spec[1]
        base = spec[2] if len(spec) > 2 else None
        steps = spec[3] if len(spec) > 3 else None
        config, policy = resolve_configuration(config_name, base)
        jobs.append((cached_graph(model), policy, config, steps))
    run_jobs(jobs)
