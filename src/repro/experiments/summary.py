"""One-shot evaluation runner: every table and figure in sequence.

``python -m repro experiment all`` (or ``python -m repro.experiments.summary``)
regenerates the complete evaluation — Table I, Figure 2 and Figures 8-17 —
and prints them in paper order.  Useful for producing the full
EXPERIMENTS.md evidence in one run; individual modules are faster when only
one artifact is needed.
"""

from __future__ import annotations

from typing import List, Tuple

from . import (
    families,
    fig2,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table1,
)

#: (heading, module) in paper presentation order.
ARTIFACTS: Tuple[Tuple[str, object], ...] = (
    ("Table I — operation profiling", table1),
    ("Figure 2 — operation categories", fig2),
    ("Figure 8 — execution-time breakdown", fig8),
    ("Figure 9 — normalized dynamic energy", fig9),
    ("Figure 10 — comparison with Neurocube", fig10),
    ("Figure 11 — frequency scaling", fig11),
    ("Figure 12 — programmable-PIM scaling", fig12),
    ("Figure 13 — time with/without RC & OP", fig13),
    ("Figure 14 — energy with/without RC & OP", fig14),
    ("Figure 15 — fixed-PIM utilization", fig15),
    ("Figure 16 — mixed workloads", fig16),
    ("Figure 17 — EDP & power vs frequency", fig17),
    ("Families — modern workload characterization", families),
)


def prefetch() -> None:
    """Warm the simulation cache for the runs shared across figures.

    One fan-out covers the full (model x configuration) grid plus the
    Neurocube baseline — the inputs of Figures 8, 9, 10, 13, 14 and 16 —
    so the figure modules' own loops start from a hot cache.  Figure-local
    sweeps (frequency/PIM-count bases, RC/OP variants, co-runs) fan out
    inside their modules.
    """
    from .common import EVAL_CONFIGS, EVAL_MODELS
    from .runner import prefetch_model_runs

    prefetch_model_runs(
        [(m, c) for m in EVAL_MODELS for c in EVAL_CONFIGS + ("neurocube",)]
    )


def run_all(skip: Tuple[str, ...] = ()) -> str:
    """Run every artifact (optionally skipping slow ones by heading
    substring) and return the combined report."""
    prefetch()
    blocks: List[str] = []
    for heading, module in ARTIFACTS:
        if any(token in heading for token in skip):
            blocks.append(f"==== {heading} ==== (skipped)")
            continue
        rendered = module.format_result(module.run())
        blocks.append(f"==== {heading} ====\n{rendered}")
    return "\n\n".join(blocks)


def main() -> str:
    text = run_all()
    print(text)
    return text


if __name__ == "__main__":
    main()
