"""Experiment E-T1 — paper Table I: operation profiling results.

Profiles one training step of VGG-19, AlexNet and DCGAN on the host CPU
(inter-op parallelism disabled) and reports the top-5 compute-intensive
(CI, by execution time) and top-5 memory-intensive (MI, by main-memory
accesses) operation types with their shares and invocation counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..profiling import WorkloadProfile, WorkloadProfiler
from .common import cached_graph
from .report import TextTable

#: Models characterized in Table I.
TABLE1_MODELS = ("vgg-19", "alexnet", "dcgan")


@dataclass(frozen=True)
class Table1Row:
    rank: int
    op_type: str
    share: float
    invocations: int


@dataclass(frozen=True)
class Table1Model:
    """One model's Table I block."""

    model: str
    top_compute: Tuple[Table1Row, ...]
    top_memory: Tuple[Table1Row, ...]
    other_time_share: float
    other_memory_share: float
    profile: WorkloadProfile


def run(models: Tuple[str, ...] = TABLE1_MODELS) -> Dict[str, Table1Model]:
    """Produce the Table I characterization for ``models``."""
    profiler = WorkloadProfiler()
    out: Dict[str, Table1Model] = {}
    for model in models:
        profile = profiler.profile(cached_graph(model))
        ci = [
            Table1Row(i + 1, t.op_type, t.time_share, t.invocations)
            for i, t in enumerate(profile.top_compute(5))
        ]
        mi = [
            Table1Row(i + 1, t.op_type, t.memory_share, t.invocations)
            for i, t in enumerate(profile.top_memory(5))
        ]
        out[model] = Table1Model(
            model=model,
            top_compute=tuple(ci),
            top_memory=tuple(mi),
            other_time_share=1.0 - sum(r.share for r in ci),
            other_memory_share=1.0 - sum(r.share for r in mi),
            profile=profile,
        )
    return out


def format_result(result: Dict[str, Table1Model]) -> str:
    blocks: List[str] = []
    for model, data in result.items():
        table = TextTable(
            ["Top CI Ops", "Time(%)", "#Inv", "|", "Top MI Ops", "Mem(%)", "#Inv"]
        )
        for ci, mi in zip(data.top_compute, data.top_memory):
            table.add_row(
                f"{ci.rank}. {ci.op_type}", f"{ci.share * 100:.2f}", ci.invocations,
                "|",
                f"{mi.rank}. {mi.op_type}", f"{mi.share * 100:.2f}", mi.invocations,
            )
        table.add_row(
            "Other ops", f"{data.other_time_share * 100:.2f}",
            sum(t.invocations for t in data.profile.by_type)
            - sum(r.invocations for r in data.top_compute),
            "|",
            "Other ops", f"{data.other_memory_share * 100:.2f}",
            sum(t.invocations for t in data.profile.by_type)
            - sum(r.invocations for r in data.top_memory),
        )
        blocks.append(f"== {model} ==\n{table.render()}")
    return "\n\n".join(blocks)


def main() -> str:
    text = format_result(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
