"""Seeded, deterministic fault injection and graceful degradation.

Public surface:

* :class:`FaultSpec` plus the five fault-event dataclasses — declarative,
  serializable fault descriptions (see :mod:`repro.faults.spec`);
* :class:`repro.faults.injector.FaultInjector` — applies a spec to a live
  simulation (imported lazily by :class:`repro.sim.simulation.Simulation`;
  not re-exported here to keep this package import-light).

Entry points: ``repro.api.simulate(model, config, steps, faults=spec)``,
the ``repro faults`` CLI subcommand, and the resilience experiment
(:mod:`repro.experiments.faults`).
"""

from .spec import (
    FAULT_KINDS,
    THERMAL_ZONES,
    BankFailure,
    DramDerate,
    FaultEvent,
    FaultSpec,
    ProgPimLoss,
    ThermalThrottle,
    UnitLoss,
)

__all__ = [
    "FAULT_KINDS",
    "THERMAL_ZONES",
    "BankFailure",
    "DramDerate",
    "FaultEvent",
    "FaultSpec",
    "ProgPimLoss",
    "ThermalThrottle",
    "UnitLoss",
]
