"""Runtime fault injection against a live :class:`~repro.sim.simulation.Simulation`.

The :class:`FaultInjector` schedules every event of a
:class:`~repro.faults.spec.FaultSpec` on the simulation's event engine and
applies it to the hardware models:

* bank failures and unit losses shrink the fixed-function pool (revoking
  in-flight sub-kernels, which the scheduler then retries or degrades);
* thermal throttles derate the pool's effective frequency, weighted by
  how many units the thermal-aware placement put into the affected zone;
* programmable-PIM losses shrink the prog cluster (waiting complex phases
  fall back to the CPU);
* DRAM derates scale the in-stack bandwidth seen by streaming phases.

It also owns the run's fault/recovery log (injected events, retries,
degradations, offload re-selections), which lands on the result record
(``RunResult.faults``) and in the Chrome trace's fault lane — and the
idle/busy register file the scheduler consults while faults are active.
"""

from __future__ import annotations

from typing import Dict, List

from ..hardware.hmc import StackGeometry
from ..hardware.placement import Placement, place_fixed_pims
from ..runtime.registers import UtilizationRegisters
from .spec import (
    BankFailure,
    DramDerate,
    FaultSpec,
    ProgPimLoss,
    ThermalThrottle,
    UnitLoss,
)


class _ProgClusterView:
    """Adapts the simulator's prog :class:`SlotDevice` to the duck type
    :class:`UtilizationRegisters` expects (``ProgPIMCluster``-shaped)."""

    def __init__(self, device):
        self._device = device

    @property
    def n_pims(self) -> int:
        return self._device.slots

    @property
    def busy_pims(self) -> int:
        busy = self._device.busy_slots + self._device.lost_slots
        return min(self._device.slots, busy)

    @property
    def free_pims(self) -> int:
        return self._device.free_slots


class FaultInjector:
    """Applies one :class:`FaultSpec` to one simulation, deterministically."""

    def __init__(self, spec: FaultSpec, sim):
        self.spec = spec
        self.sim = sim
        self.events_log: List[Dict[str, object]] = []
        self.retries: List[Dict[str, object]] = []
        self.degradations: List[Dict[str, object]] = []
        self.reselections: List[Dict[str, object]] = []
        self._failed_banks: set = set()
        self._throttles: Dict[int, float] = {}
        self._derates: Dict[int, float] = {}
        geometry = StackGeometry(sim.config.stack)
        self.geometry = geometry
        self.placement: Placement = place_fixed_pims(
            geometry, sim.config.fixed_pim.n_units
        )
        self.registers = UtilizationRegisters(
            sim.fixed.pool, _ProgClusterView(sim.prog), self.placement
        )
        for index, event in enumerate(spec.events):
            sim.engine.at(
                event.time_s,
                lambda i=index, e=event: self._apply(i, e),
            )

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def _apply(self, index: int, event) -> None:
        now = self.sim.engine.now
        if isinstance(event, BankFailure):
            self._apply_bank_failure(index, event, now)
        elif isinstance(event, UnitLoss):
            self._log_event(index, event, now, self._lose_fixed_units(event.units))
        elif isinstance(event, ThermalThrottle):
            self._apply_thermal(index, event, now)
        elif isinstance(event, ProgPimLoss):
            lost = self.sim._on_prog_lost(event.pims)
            self._log_event(index, event, now, {"pims_lost": lost})
        elif isinstance(event, DramDerate):
            self._apply_dram(index, event, now)
        else:  # pragma: no cover - spec validation rejects unknown kinds
            raise AssertionError(f"unhandled fault event {event!r}")

    def _log_event(self, index: int, event, now: float, applied: Dict) -> None:
        entry: Dict[str, object] = {
            "index": index,
            "t_s": now,
            "kind": event.kind,
            "applied": applied,
        }
        self.events_log.append(entry)

    def _apply_bank_failure(self, index: int, event: BankFailure, now: float) -> None:
        bank = event.bank % len(self.placement.units_per_bank)
        if bank in self._failed_banks:
            self._log_event(
                index, event, now, {"bank": bank, "units_lost": 0, "revoked": []}
            )
            return
        self._failed_banks.add(bank)
        self.registers.mark_bank_failed(bank)
        units = self.placement.units_in(bank)
        applied = {"bank": bank}
        if units > 0:
            applied.update(self._lose_fixed_units(units))
        else:
            applied.update({"units_lost": 0, "revoked": []})
        self._log_event(index, event, now, applied)

    def _lose_fixed_units(self, units: int) -> Dict[str, object]:
        """Shrink the pool; the simulation retries/degrades revoked work."""
        before = self.sim.fixed.pool.capacity_units
        revoked = self.sim.fixed.lose_units(units)
        lost = before - self.sim.fixed.pool.capacity_units
        self.sim._recompute_placements()
        self.sim._schedule_drain()
        return {"units_lost": lost, "revoked": sorted(revoked)}

    def _apply_thermal(self, index: int, event: ThermalThrottle, now: float) -> None:
        zone_units = sum(
            self.placement.units_in(bank.index)
            for bank in self.geometry.banks
            if bank.zone.value == event.zone
        )
        share = zone_units / self.sim.fixed.pool.n_units
        effective = 1.0 - (1.0 - event.factor) * share
        self._throttles[index] = effective
        self._update_pool_speed()
        self._log_event(
            index,
            event,
            now,
            {"zone_units": zone_units, "effective_factor": effective},
        )
        self.sim.engine.at(
            event.time_s + event.duration_s,
            lambda: self._restore_thermal(index, event),
        )

    def _restore_thermal(self, index: int, event: ThermalThrottle) -> None:
        self._throttles.pop(index, None)
        self._update_pool_speed()
        self._log_event(
            index, event, self.sim.engine.now, {"restored": True}
        )

    def _update_pool_speed(self) -> None:
        speed = 1.0
        for factor in self._throttles.values():
            speed *= factor
        self.sim.fixed.set_speed(speed)

    def _apply_dram(self, index: int, event: DramDerate, now: float) -> None:
        self._derates[index] = event.factor
        self._update_dram_scale()
        self._log_event(index, event, now, {"factor": event.factor})
        self.sim.engine.at(
            event.time_s + event.duration_s,
            lambda: self._restore_dram(index, event),
        )

    def _restore_dram(self, index: int, event: DramDerate) -> None:
        self._derates.pop(index, None)
        self._update_dram_scale()
        self._log_event(
            index, event, self.sim.engine.now, {"restored": True}
        )

    def _update_dram_scale(self) -> None:
        scale = 1.0
        for factor in self._derates.values():
            scale *= factor
        self.sim._set_dram_scale(scale)

    # ------------------------------------------------------------------
    # recovery log (fed by the scheduler)
    # ------------------------------------------------------------------
    def log_retry(self, now: float, uid: str, attempt: int, delay_s: float) -> None:
        self.retries.append(
            {"t_s": now, "uid": uid, "attempt": attempt, "delay_s": delay_s}
        )

    def log_degradation(self, now: float, uid: str, frm: str, to: str) -> None:
        self.degradations.append({"t_s": now, "uid": uid, "from": frm, "to": to})

    def log_reselection(self, now: float, retargeted: int) -> None:
        self.reselections.append({"t_s": now, "retargeted": retargeted})

    # ------------------------------------------------------------------
    # result payload
    # ------------------------------------------------------------------
    def to_result_dict(self) -> Dict[str, object]:
        """JSON-ready fault/recovery log stored on :class:`RunResult`."""
        return {
            "spec": self.spec.to_dict(),
            "events": list(self.events_log),
            "retries": list(self.retries),
            "degradations": list(self.degradations),
            "reselections": list(self.reselections),
            "counts": {
                "events": len(self.events_log),
                "retries": len(self.retries),
                "degradations": len(self.degradations),
                "reselections": len(self.reselections),
            },
        }

    def publish_metrics(self, registry) -> None:
        registry.gauge("faults.events").set(len(self.events_log))
        registry.gauge("faults.retries").set(len(self.retries))
        registry.gauge("faults.degradations").set(len(self.degradations))
        registry.gauge("faults.reselections").set(len(self.reselections))
