"""Declarative, seeded fault specifications.

A :class:`FaultSpec` is an immutable, serializable description of every
hardware fault injected into one simulated run, plus the runtime's
recovery parameters (retry budget and backoff).  It is part of the
simulation-cache fingerprint: the same (graph, policy, config, steps,
faults) tuple always maps to the same cached result, and two different
fault specs can never collide.

Five composable fault models are supported, mirroring the failure modes
the paper's runtime is built to survive (idle/busy registers, thermal-
aware placement, offload re-selection):

* :class:`BankFailure` — one bank's fixed-function PIM units drop out of
  the schedulable pool permanently (the placement map decides how many
  units that bank carried);
* :class:`UnitLoss` — a partial, bank-agnostic loss of fixed-function
  units;
* :class:`ThermalThrottle` — a time-windowed frequency derating of the
  fixed-function pool, weighted by the thermal placement (a corner-zone
  throttle hurts more, because corner banks carry more units);
* :class:`ProgPimLoss` — programmable-PIM cores leave the cluster;
* :class:`DramDerate` — a time-windowed in-stack DRAM-timing degradation
  (bandwidth multiplier on streaming phases).

All parameters are validated eagerly so a malformed spec fails at
construction, not mid-simulation.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, fields
from typing import ClassVar, Dict, Tuple, Type, Union

from ..errors import SimulationError

#: Thermal zones a :class:`ThermalThrottle` may target (see
#: :class:`repro.hardware.hmc.BankZone`).
THERMAL_ZONES = ("corner", "edge", "center")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SimulationError(message)


@dataclass(frozen=True)
class BankFailure:
    """A bank's fixed-function units permanently leave the pool."""

    kind: ClassVar[str] = "bank-failure"
    time_s: float
    bank: int

    def __post_init__(self) -> None:
        _require(self.time_s >= 0, f"fault time must be >= 0, got {self.time_s}")
        _require(self.bank >= 0, f"bank index must be >= 0, got {self.bank}")


@dataclass(frozen=True)
class UnitLoss:
    """Partial fixed-function unit loss (bank-agnostic)."""

    kind: ClassVar[str] = "unit-loss"
    time_s: float
    units: int

    def __post_init__(self) -> None:
        _require(self.time_s >= 0, f"fault time must be >= 0, got {self.time_s}")
        _require(self.units >= 1, f"unit loss needs >= 1 unit, got {self.units}")


@dataclass(frozen=True)
class ThermalThrottle:
    """Time-windowed frequency derating of one thermal zone's banks."""

    kind: ClassVar[str] = "thermal-throttle"
    time_s: float
    duration_s: float
    factor: float
    zone: str = "center"

    def __post_init__(self) -> None:
        _require(self.time_s >= 0, f"fault time must be >= 0, got {self.time_s}")
        _require(
            self.duration_s > 0,
            f"throttle duration must be > 0, got {self.duration_s}",
        )
        _require(
            0 < self.factor <= 1,
            f"throttle factor must be in (0, 1], got {self.factor}",
        )
        _require(
            self.zone in THERMAL_ZONES,
            f"unknown thermal zone {self.zone!r} (expected one of {THERMAL_ZONES})",
        )


@dataclass(frozen=True)
class ProgPimLoss:
    """Programmable-PIM cores permanently leave the cluster."""

    kind: ClassVar[str] = "prog-pim-loss"
    time_s: float
    pims: int = 1

    def __post_init__(self) -> None:
        _require(self.time_s >= 0, f"fault time must be >= 0, got {self.time_s}")
        _require(self.pims >= 1, f"prog-PIM loss needs >= 1 PIM, got {self.pims}")


@dataclass(frozen=True)
class DramDerate:
    """Time-windowed in-stack DRAM-timing (bandwidth) degradation."""

    kind: ClassVar[str] = "dram-derate"
    time_s: float
    duration_s: float
    factor: float

    def __post_init__(self) -> None:
        _require(self.time_s >= 0, f"fault time must be >= 0, got {self.time_s}")
        _require(
            self.duration_s > 0,
            f"derate duration must be > 0, got {self.duration_s}",
        )
        _require(
            0 < self.factor <= 1,
            f"derate factor must be in (0, 1], got {self.factor}",
        )


FaultEvent = Union[BankFailure, UnitLoss, ThermalThrottle, ProgPimLoss, DramDerate]

#: Registry used by deserialization (kind tag -> event class).
FAULT_KINDS: Dict[str, Type] = {
    cls.kind: cls
    for cls in (BankFailure, UnitLoss, ThermalThrottle, ProgPimLoss, DramDerate)
}


def _event_sort_key(event: FaultEvent) -> Tuple[float, str, str]:
    return (event.time_s, event.kind, repr(event))


@dataclass(frozen=True)
class FaultSpec:
    """Every fault of one run plus the runtime's recovery parameters.

    ``events`` is normalized to injection order (time, then kind) at
    construction, so two specs with the same events in any order are
    equal — and fingerprint-identical.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    #: Retries of an aborted fixed-function sub-kernel before the op
    #: degrades to the programmable PIM (then the CPU).
    max_retries: int = 3
    #: First retry delay; doubles per attempt (capped below).
    retry_backoff_s: float = 50e-6
    retry_backoff_cap_s: float = 400e-6

    def __post_init__(self) -> None:
        _require(self.max_retries >= 0, "max_retries must be >= 0")
        _require(self.retry_backoff_s > 0, "retry_backoff_s must be > 0")
        _require(
            self.retry_backoff_cap_s >= self.retry_backoff_s,
            "retry_backoff_cap_s must be >= retry_backoff_s",
        )
        for event in self.events:
            _require(
                type(event) in FAULT_KINDS.values(),
                f"unknown fault event type {type(event).__name__}",
            )
        ordered = tuple(sorted(self.events, key=_event_sort_key))
        object.__setattr__(self, "events", ordered)

    def backoff_s(self, attempt: int) -> float:
        """Capped exponential retry delay for 1-based ``attempt``."""
        _require(attempt >= 1, f"attempt must be >= 1, got {attempt}")
        return min(
            self.retry_backoff_cap_s,
            self.retry_backoff_s * (2 ** (attempt - 1)),
        )

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        horizon_s: float,
        n_events: int,
        *,
        banks: int = 32,
        pool_units: int = 444,
        prog_pims: int = 1,
        max_retries: int = 3,
        retry_backoff_s: float = 50e-6,
        retry_backoff_cap_s: float = 400e-6,
    ) -> "FaultSpec":
        """Draw ``n_events`` faults over ``[0, horizon_s]``, deterministically.

        The same ``(seed, horizon_s, n_events, hardware shape)`` always
        yields the same spec: the generator is a :class:`random.Random`
        seeded with ``seed`` and the draw order per event is fixed.
        """
        _require(horizon_s > 0, f"horizon must be > 0, got {horizon_s}")
        _require(n_events >= 0, f"n_events must be >= 0, got {n_events}")
        rng = random.Random(seed)
        kinds = sorted(FAULT_KINDS)
        events = []
        for _ in range(n_events):
            time_s = rng.uniform(0.02, 0.85) * horizon_s
            kind = rng.choice(kinds)
            if kind == BankFailure.kind:
                events.append(BankFailure(time_s=time_s, bank=rng.randrange(banks)))
            elif kind == UnitLoss.kind:
                units = max(1, int(rng.uniform(0.05, 0.5) * pool_units))
                events.append(UnitLoss(time_s=time_s, units=units))
            elif kind == ThermalThrottle.kind:
                events.append(
                    ThermalThrottle(
                        time_s=time_s,
                        duration_s=rng.uniform(0.1, 0.4) * horizon_s,
                        factor=rng.uniform(0.4, 0.9),
                        zone=rng.choice(THERMAL_ZONES),
                    )
                )
            elif kind == ProgPimLoss.kind:
                pims = 1 if prog_pims <= 1 else rng.randrange(1, prog_pims + 1)
                events.append(ProgPimLoss(time_s=time_s, pims=pims))
            else:
                events.append(
                    DramDerate(
                        time_s=time_s,
                        duration_s=rng.uniform(0.1, 0.4) * horizon_s,
                        factor=rng.uniform(0.5, 0.95),
                    )
                )
        return cls(
            events=tuple(events),
            seed=seed,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            retry_backoff_cap_s=retry_backoff_cap_s,
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "max_retries": self.max_retries,
            "retry_backoff_s": self.retry_backoff_s,
            "retry_backoff_cap_s": self.retry_backoff_cap_s,
            "events": [{"kind": e.kind, **asdict(e)} for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        events = []
        for entry in data.get("events", ()):
            payload = dict(entry)
            kind = payload.pop("kind", None)
            event_cls = FAULT_KINDS.get(kind)
            if event_cls is None:
                raise SimulationError(f"unknown fault kind {kind!r}")
            names = {f.name for f in fields(event_cls)}
            unknown = set(payload) - names
            if unknown:
                raise SimulationError(
                    f"unknown fields {sorted(unknown)} for fault kind {kind!r}"
                )
            events.append(event_cls(**payload))
        return cls(
            events=tuple(events),
            seed=data.get("seed", 0),
            max_retries=data.get("max_retries", 3),
            retry_backoff_s=data.get("retry_backoff_s", 50e-6),
            retry_backoff_cap_s=data.get("retry_backoff_cap_s", 400e-6),
        )

    def to_json(self, indent=None) -> str:
        from ..sim.results import canonical_dumps

        return canonical_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        return cls.from_dict(json.loads(text))
