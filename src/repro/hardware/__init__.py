"""Hardware models: 3D stack, PIMs, host CPU, GPU, power and area —
plus the pluggable backend registry (:mod:`repro.hardware.registry`)."""

from .area import DesignPoint, LogicDieBudget, explore_prog_pim_tradeoff, max_fixed_units
from .cpu import CpuModel, OpTiming
from .dram_timing import DramBandwidthModel, DramTimings
from .fixed_pim import FixedPIMPool
from .gpu import GpuModel
from .hmc import BankGeometry, BankZone, StackGeometry
from .placement import Placement, place_fixed_pims, validate_thermal
from .power import DeviceUsage, EnergyBreakdown, EnergyModel
from .prog_pim import ProgPIMCluster
from .registry import BackendDescriptor, HardwareBackend, list_backends, register

__all__ = [
    "BackendDescriptor",
    "BankGeometry",
    "BankZone",
    "CpuModel",
    "DramBandwidthModel",
    "DramTimings",
    "DesignPoint",
    "DeviceUsage",
    "EnergyBreakdown",
    "EnergyModel",
    "FixedPIMPool",
    "GpuModel",
    "HardwareBackend",
    "LogicDieBudget",
    "OpTiming",
    "Placement",
    "ProgPIMCluster",
    "StackGeometry",
    "explore_prog_pim_tradeoff",
    "list_backends",
    "max_fixed_units",
    "place_fixed_pims",
    "register",
    "validate_thermal",
]
