"""Logic-die area/power design-space exploration (paper section IV-D).

The paper sizes the fixed-function PIM pool with McPAT + HotSpot +
Synopsys-derived unit areas: "the total number of allowed fixed-function
PIMs is limited by the area of the logic die", yielding 444
multiplier/adder pairs next to one ARM programmable PIM.  This module
reproduces that derivation as an explicit model so the 444 figure is a
*result*, not an input.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import FixedPIMConfig, ProgPIMConfig
from ..errors import HardwareConfigError


@dataclass(frozen=True)
class LogicDieBudget:
    """Area and power envelope of the 3D stack's logic die.

    Attributes:
        die_area_mm2: Total logic-die area (HMC-class stack).
        compute_area_fraction: Fraction usable for PIM logic after memory
            controllers, TSV landing pads, SerDes and routing.
        power_budget_w: Sustainable logic-die power under the stack's
            thermal envelope.
    """

    die_area_mm2: float = 68.0
    compute_area_fraction: float = 0.424
    power_budget_w: float = 92.0

    @property
    def compute_area_mm2(self) -> float:
        return self.die_area_mm2 * self.compute_area_fraction


@dataclass(frozen=True)
class DesignPoint:
    """One explored configuration of the logic die."""

    n_prog_pims: int
    n_fixed_units: int
    area_used_mm2: float
    power_used_w: float

    def feasible(self, budget: LogicDieBudget) -> bool:
        return (
            self.area_used_mm2 <= budget.compute_area_mm2 + 1e-9
            and self.power_used_w <= budget.power_budget_w + 1e-9
        )


def max_fixed_units(
    budget: LogicDieBudget,
    fixed: FixedPIMConfig,
    prog: ProgPIMConfig,
    n_prog_pims: int = 1,
) -> DesignPoint:
    """Largest fixed-function pool fitting beside ``n_prog_pims`` ARM PIMs.

    Returns the area-limited or power-limited design point, whichever binds
    first.  With the default budget this reproduces the paper's 444 units.
    """
    if n_prog_pims < 0:
        raise HardwareConfigError("n_prog_pims must be >= 0")
    prog_area = n_prog_pims * prog.area_mm2_per_pim
    prog_power = n_prog_pims * prog.dynamic_power_w_per_pim
    area_left = budget.compute_area_mm2 - prog_area
    power_left = budget.power_budget_w - prog_power
    if area_left < 0 or power_left < 0:
        raise HardwareConfigError(
            f"{n_prog_pims} programmable PIMs exceed the logic-die budget"
        )
    by_area = int(area_left / fixed.area_mm2_per_unit)
    by_power = int(power_left / (fixed.mw_per_unit / 1000.0))
    n_units = min(by_area, by_power)
    return DesignPoint(
        n_prog_pims=n_prog_pims,
        n_fixed_units=n_units,
        area_used_mm2=prog_area + n_units * fixed.area_mm2_per_unit,
        power_used_w=prog_power + n_units * fixed.mw_per_unit / 1000.0,
    )


def explore_prog_pim_tradeoff(
    budget: LogicDieBudget,
    fixed: FixedPIMConfig,
    prog: ProgPIMConfig,
    max_prog_pims: int = 16,
) -> list:
    """Sweep the programmable-PIM count at constant die area (Figure 12).

    Each extra ARM PIM displaces fixed-function units; the returned design
    points quantify the trade the paper studies with 1P / 4P / 16P.
    """
    points = []
    for n in range(1, max_prog_pims + 1):
        try:
            points.append(max_fixed_units(budget, fixed, prog, n))
        except HardwareConfigError:
            break
    return points
