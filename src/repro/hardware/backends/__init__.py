"""Builtin hardware backends.

Importing this package registers every builtin backend with
:mod:`repro.hardware.registry`:

* ``hmc-hetero`` — the paper's heterogeneous HMC design (default);
* ``gradpim`` — GradPIM-style DDR4 bank-group in-DRAM optimizer ops
  (Kim et al., HPCA 2021);
* ``neurotrainer`` — NeuroTrainer-style dataflow-specialized memory-module
  accelerator (Schuiki et al. / Kim et al., 2017).
"""

from .gradpim import GradPimBackend, GradPimPolicy
from .hmc_hetero import HmcHeteroBackend
from .neurotrainer import NeuroTrainerBackend, NeuroTrainerPolicy

__all__ = [
    "GradPimBackend",
    "GradPimPolicy",
    "HmcHeteroBackend",
    "NeuroTrainerBackend",
    "NeuroTrainerPolicy",
]
