"""GradPIM-style backend: DDR4 bank-group in-DRAM optimizer processing.

GradPIM (Kim et al., HPCA 2021) accelerates the *parameter-update* phase
of DNN training inside commodity DDR4 DIMMs: small per-bank-group
processing units execute the optimizer's read-modify-write streams
(gradient descent, Adam) next to the arrays, while an NPU/GPU keeps the
forward/backward passes.  Published characteristics this model follows:

* bank-group-level parallelism — the in-DRAM units stream at the
  aggregate *bank-group* bandwidth, ~4x the external channel bandwidth;
* only memory-bound optimizer ops are offloaded; everything else stays on
  the training accelerator (modeled with the GTX 1080 Ti of the paper's
  GPU baseline, so the comparison isolates the memory-side designs);
* tiny DRAM-die overhead (~1.6% area) and low per-op energy — near-bank
  integer/FP units without SIMD register files or caches;
* offload initiation is a DDR4 command sequence from the memory
  controller: microseconds, far cheaper than a PCIe kernel launch.

Absolute throughput/energy constants are calibrated the same way as the
rest of the repo (DESIGN.md section 5): relative behavior — optimizer ops
go memory-side, the accelerator keeps compute-bound work — is structural.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from ...config import SystemConfig, default_config
from ...nn.ops import OffloadClass, Op
from ...sim.policy import SchedulingPolicy
from ...units import GB_S, MHZ, US
from ..registry import BackendDescriptor, HardwareBackend, register

#: Operation types executed by the in-DRAM bank-group units (the paper's
#: DNN-parameter-update primitives).
GRADPIM_OFFLOAD_OPS = frozenset({"ApplyAdam", "ApplyGradientDescent"})

#: Bank groups exposed as processing units (2 channels x 2 ranks x 4 BGs).
GRADPIM_BANK_GROUPS = 16

#: DDR4-2400 core (array) clock driving the bank-group units.
GRADPIM_CORE_CLOCK_HZ = 300 * MHZ

#: Dual-channel DDR4-2400 external bandwidth.
GRADPIM_EXTERNAL_GB_S = 38.4

#: Bank-group parallel factor over the external channel (paper section IV).
GRADPIM_BG_PARALLELISM = 4


class GradPimPolicy(SchedulingPolicy):
    """Optimizer ops in-DRAM, forward/backward on the accelerator.

    The in-DRAM units appear as the simulator's ``fixed`` pool (a
    bandwidth-shared streaming MAC pool is exactly what bank-group units
    are); the CPU fallback realizes GradPIM's graceful degradation when a
    bank group is mid-refresh or busy.
    """

    name = "GradPIM"
    cpu_slots = 2
    uses_gpu = True

    def placements(self, op: Op) -> Tuple[str, ...]:
        if op.op_type in GRADPIM_OFFLOAD_OPS and op.cost.macs:
            return ("fixed", "cpu")
        if op.offload_class is OffloadClass.HOST:
            return ("cpu",)
        return ("gpu",)


@register
class GradPimBackend(HardwareBackend):
    """Commodity DDR4 DIMMs with bank-group optimizer units + accelerator."""

    name = "gradpim"

    def describe(self) -> BackendDescriptor:
        return BackendDescriptor(
            name=self.name,
            description=(
                "GradPIM-style DDR4: per-bank-group in-DRAM units execute "
                "optimizer updates at bank-group bandwidth; forward/"
                "backward stay on the discrete accelerator"
            ),
            device_kinds=("cpu", "gpu", "fixed"),
            placement="static op-type offload (optimizer ops in-DRAM)",
            configurations=("gradpim",),
            default_configuration="gradpim",
            energy_tables={
                "fixed_pj_per_mac": 2.0,
                "stack_internal_pj_per_byte": 4.0,
                "stack_external_pj_per_byte": 22.0,
            },
            scheduling={
                "recursive_kernels": False,
                "operation_pipeline": False,
                "offloads": sorted(GRADPIM_OFFLOAD_OPS),
            },
            # ~1.6% of the DRAM die per the paper, summed over the DIMMs
            area_mm2=GRADPIM_BANK_GROUPS * 0.35,
            power_w=GRADPIM_BANK_GROUPS * 30.0 / 1e3,
            reference=(
                "Kim et al., 'GradPIM: A Practical Processing-in-DRAM "
                "Architecture for Gradient Descent', HPCA 2021 "
                "(arXiv:2102.07511)"
            ),
        )

    def build(
        self,
        configuration: Optional[str] = None,
        base: Optional[SystemConfig] = None,
    ) -> Tuple[SystemConfig, SchedulingPolicy]:
        from ...errors import ReproError

        name = configuration or "gradpim"
        if name != "gradpim":
            raise ReproError(
                f"backend 'gradpim' has no configuration {name!r}; "
                "available: ('gradpim',)"
            )
        if base is None:
            base = default_config()
        config = replace(
            base,
            backend=self.name,
            stack=replace(
                base.stack,
                banks=GRADPIM_BANK_GROUPS,
                base_frequency_hz=GRADPIM_CORE_CLOCK_HZ,
                internal_bandwidth=(
                    GRADPIM_EXTERNAL_GB_S * GRADPIM_BG_PARALLELISM * GB_S
                ),
                internal_pj_per_byte=4.0,
                external_pj_per_byte=22.0,
                active_power_w=4.0,
                background_power_w=4.0,
            ),
            fixed_pim=replace(
                base.fixed_pim,
                n_units=GRADPIM_BANK_GROUPS,
                reference_units=GRADPIM_BANK_GROUPS,
                simd_width=8,
                pj_per_mac=2.0,
                mw_per_unit=30.0,
                area_mm2_per_unit=0.35,
                # offload initiation is a memory-controller command
                # sequence, not a device kernel launch
                host_launch_overhead_s=2 * US,
            ),
        )
        return config, GradPimPolicy()
