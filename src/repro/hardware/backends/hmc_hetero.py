"""The default backend: the paper's heterogeneous HMC design.

A thin re-packaging of the existing configuration factories
(:mod:`repro.baselines`) behind the :class:`HardwareBackend` protocol —
``build()`` delegates to the exact same code paths the facade always used,
so the default backend is byte-identical to the pre-registry simulator.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...config import SystemConfig, default_config
from ...sim.policy import SchedulingPolicy
from ..registry import BackendDescriptor, HardwareBackend, register

#: The five paper configurations plus the Neurocube comparison point.
HMC_CONFIGURATIONS = (
    "cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim", "neurocube",
)


@register
class HmcHeteroBackend(HardwareBackend):
    """CPU + GPU + HMC stack with fixed-function and programmable PIMs."""

    name = "hmc-hetero"

    def describe(self) -> BackendDescriptor:
        config = default_config()
        fixed = config.fixed_pim
        prog = config.prog_pim
        return BackendDescriptor(
            name=self.name,
            description=(
                "Heterogeneous HMC: 444 fixed-function MAC pairs + an ARM "
                "programmable PIM on the logic die, profiling-driven "
                "runtime offload (the reproduced paper's design)"
            ),
            device_kinds=("cpu", "gpu", "prog", "fixed", "hybrid"),
            placement="profiling-driven runtime selection (x=90% coverage)",
            configurations=HMC_CONFIGURATIONS,
            default_configuration="hetero-pim",
            energy_tables={
                "fixed_pj_per_mac": fixed.pj_per_mac,
                "stack_internal_pj_per_byte": config.stack.internal_pj_per_byte,
                "stack_external_pj_per_byte": config.stack.external_pj_per_byte,
            },
            scheduling={
                "recursive_kernels": True,
                "operation_pipeline": True,
                "offloads": ["FIXED", "HYBRID", "PROG"],
            },
            area_mm2=(
                fixed.n_units * fixed.area_mm2_per_unit
                + prog.n_pims * prog.area_mm2_per_pim
            ),
            power_w=(
                fixed.n_units * fixed.mw_per_unit / 1e3
                + prog.n_pims * prog.dynamic_power_w_per_pim
            ),
            reference=(
                "Liu et al., 'Processing-in-Memory for Energy-Efficient "
                "Neural Network Training: A Heterogeneous Approach', "
                "MICRO 2018"
            ),
        )

    def build(
        self,
        configuration: Optional[str] = None,
        base: Optional[SystemConfig] = None,
    ) -> Tuple[SystemConfig, SchedulingPolicy]:
        from ...baselines import build_configuration, make_neurocube

        name = configuration or "hetero-pim"
        if base is None:
            base = default_config()
        if base.backend != self.name:
            base = base.with_backend(self.name)
        if name == "neurocube":
            return make_neurocube(base)
        return build_configuration(name, base)
