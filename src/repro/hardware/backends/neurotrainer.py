"""NeuroTrainer-style backend: a dataflow-specialized memory-module
accelerator.

NeuroTrainer (Kim, Kung & Mukhopadhyay, 2017; arXiv:1710.04347) performs
*all* training computation inside a 3D-stacked memory module: each vault
of the stack hosts a programmable processing engine whose dataflow is
specialized per layer (intra-tile / inter-tile mapping), eliminating both
the discrete accelerator and most off-module traffic.  Published
characteristics this model follows:

* one PE per vault (16 vaults), clocked with the stack;
* ~500 GFLOPS aggregate at ~0.2-0.4 GFLOPS/W-scale efficiency;
* dataflow specialization: near-unity efficiency on non-MAC work (the
  PE's programmable dataflow covers activation/pooling/update kernels as
  well as it covers GEMM, unlike a fixed in-order scalar core);
* no host-side scheduling beyond kernel dispatch — the host only keeps
  bookkeeping ops.

The PE array maps onto the simulator's programmable-PIM cluster (one PE
per "PIM", ganged across vaults for wide kernels); the fixed pool and GPU
are absent from placement.  Absolute constants are calibrated as usual
(DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from ...config import SystemConfig, default_config
from ...nn.ops import OffloadClass, Op
from ...sim.policy import SchedulingPolicy
from ..registry import BackendDescriptor, HardwareBackend, register

#: Vault count of the target stack (one PE per vault).
NEUROTRAINER_VAULTS = 16

#: Effective FLOPs per PE per stack cycle: 16 vaults x 96 FLOP/cycle at
#: 312.5 MHz = 480 GFLOPS, matching the paper's ~500 GFLOPS module.
NEUROTRAINER_FLOPS_PER_PE_CYCLE = 96.0


class NeuroTrainerPolicy(SchedulingPolicy):
    """Everything on the in-module PE array; host only for bookkeeping."""

    name = "NeuroTrainer"
    cpu_slots = 1
    prog_gang_limit = NEUROTRAINER_VAULTS

    def placements(self, op: Op) -> Tuple[str, ...]:
        if op.offload_class is OffloadClass.HOST:
            return ("cpu",)
        return ("prog",)


@register
class NeuroTrainerBackend(HardwareBackend):
    """3D-stacked memory module with per-vault dataflow-specialized PEs."""

    name = "neurotrainer"

    def describe(self) -> BackendDescriptor:
        base = default_config()
        return BackendDescriptor(
            name=self.name,
            description=(
                "NeuroTrainer-style memory-module accelerator: one "
                "dataflow-specialized programmable PE per vault runs the "
                "entire training step in-module (~480 GFLOPS aggregate)"
            ),
            device_kinds=("cpu", "prog"),
            placement="static all-in-module (per-layer dataflow mapping)",
            configurations=("neurotrainer",),
            default_configuration="neurotrainer",
            energy_tables={
                "stack_internal_pj_per_byte": base.stack.internal_pj_per_byte,
                "stack_external_pj_per_byte": base.stack.external_pj_per_byte,
            },
            scheduling={
                "recursive_kernels": False,
                "operation_pipeline": False,
                "offloads": ["FIXED", "HYBRID", "PROG"],
            },
            area_mm2=NEUROTRAINER_VAULTS * 1.2,
            power_w=NEUROTRAINER_VAULTS * 0.6,
            reference=(
                "Kim, Kung & Mukhopadhyay, 'NeuroTrainer: An Intelligent "
                "Memory Module for Deep Learning Training', 2017 "
                "(arXiv:1710.04347)"
            ),
        )

    def build(
        self,
        configuration: Optional[str] = None,
        base: Optional[SystemConfig] = None,
    ) -> Tuple[SystemConfig, SchedulingPolicy]:
        from ...errors import ReproError

        name = configuration or "neurotrainer"
        if name != "neurotrainer":
            raise ReproError(
                f"backend 'neurotrainer' has no configuration {name!r}; "
                "available: ('neurotrainer',)"
            )
        if base is None:
            base = default_config()
        config = replace(
            base,
            backend=self.name,
            prog_pim=replace(
                base.prog_pim,
                name="NeuroTrainer PE array",
                n_pims=NEUROTRAINER_VAULTS,
                cores_per_pim=1,
                frequency_hz=base.stack.base_frequency_hz,
                flops_per_core_cycle=NEUROTRAINER_FLOPS_PER_PE_CYCLE,
                # dataflow specialization: non-MAC kernels map as well as
                # GEMM does — no in-order-scalar penalty
                other_flop_penalty=1.0,
                dynamic_power_w_per_pim=0.6,
                area_mm2_per_pim=1.2,
            ),
            # the fixed pool exists physically unused; one unit satisfies
            # config invariants and is never scheduled
            fixed_pim=replace(base.fixed_pim, n_units=1),
        )
        return config, NeuroTrainerPolicy()
