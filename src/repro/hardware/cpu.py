"""Host-CPU analytical timing model.

Roofline-style: an operation's time on the host is the maximum of its
compute time (scaled by the TensorFlow kernel-efficiency factor of its op
type) and its main-memory time (traffic divided by achieved bandwidth).
The same model drives both the runtime's profiling step (section III-C,
"the runtime profiles performance of all operations on CPU") and the
CPU-only baseline configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CPUConfig
from ..nn.ops import Op


@dataclass(frozen=True)
class OpTiming:
    """Compute/memory decomposition of one operation's device time.

    ``compute_s`` and ``memory_s`` overlap; the op occupies the device for
    ``max(compute_s, memory_s)``.  The *exposed* memory time (the part not
    hidden under compute) is what the paper's breakdown charts as "data
    movement".
    """

    compute_s: float
    memory_s: float

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.memory_s)

    @property
    def exposed_memory_s(self) -> float:
        return max(0.0, self.memory_s - self.compute_s)

    @property
    def operation_s(self) -> float:
        return self.total_s - self.exposed_memory_s


class CpuModel:
    """Per-op timing on the host CPU."""

    def __init__(self, config: CPUConfig):
        self.config = config

    def op_timing(self, op: Op, cores_fraction: float = 1.0) -> OpTiming:
        """Time of ``op`` using ``cores_fraction`` of the CPU's cores."""
        if not 0 < cores_fraction <= 1.0:
            raise ValueError(f"cores_fraction must be in (0, 1]: {cores_fraction}")
        info = op.info
        eff_flops = self.config.effective_flops * info.cpu_compute_eff
        eff_flops *= cores_fraction
        flops = op.cost.mac_flops + op.cost.other_flops * self.config.other_flop_penalty
        compute_s = flops / eff_flops if flops else 0.0
        bandwidth = self.config.mem_bandwidth * info.cpu_mem_eff
        memory_s = op.host_traffic_bytes / bandwidth if op.host_traffic_bytes else 0.0
        return OpTiming(compute_s=compute_s, memory_s=memory_s)

    def memory_accesses_bytes(self, op: Op) -> int:
        """Main-memory traffic of ``op`` — the hardware-counter quantity the
        profiling framework records (paper section II-A)."""
        return op.host_traffic_bytes

    def staging_timing(self, nbytes: int, flops: int = 0) -> OpTiming:
        """Time for a HYBRID op's complex data-staging phase on the CPU."""
        compute_s = flops / self.config.effective_flops if flops else 0.0
        memory_s = nbytes / self.config.mem_bandwidth if nbytes else 0.0
        return OpTiming(compute_s=compute_s, memory_s=memory_s)
