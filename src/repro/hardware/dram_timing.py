"""HMC-class DRAM timing model: deriving the stack's internal bandwidth.

`StackConfig.internal_bandwidth` (320 GB/s) is not a free constant: this
module derives it from HMC 2.0-style bank timing — the same style of
derivation the paper gets from adopting "HMC 2.0 timing parameters and
configurations" (section V-A).  Each of the 32 banks owns a TSV column with
a fixed data width clocked at the stack frequency (DDR), and sustains that
rate only while streaming within open rows; row turnarounds (tRP + tRCD)
and random accesses cut into it.

The module exposes streaming and random-access bandwidths per bank and for
the whole stack, so tests can assert that the configured
``internal_bandwidth`` is consistent with the timing parameters instead of
trusting a magic number.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import StackConfig
from ..errors import HardwareConfigError


@dataclass(frozen=True)
class DramTimings:
    """Bank-level timing of the stacked DRAM (HMC 2.0 flavour).

    All times in nanoseconds; the data path is DDR at the stack clock.

    Attributes:
        t_rcd_ns: Row-to-column delay (activate -> first read).
        t_cas_ns: Column access latency.
        t_rp_ns: Row precharge time.
        t_ras_ns: Minimum row-active time.
        row_bytes: Open-row (page) size per bank.
        bus_bytes: Per-bank TSV data-bus width in bytes.
        burst_bytes: Bytes delivered per column command.
        interleave_ways: DRAM banks interleaved behind one TSV column
            (HMC vaults hold many banks); turnarounds of one bank hide
            behind transfers of the others.
    """

    t_rcd_ns: float = 13.75
    t_cas_ns: float = 13.75
    t_rp_ns: float = 13.75
    t_ras_ns: float = 27.5
    row_bytes: int = 256
    bus_bytes: int = 16
    burst_bytes: int = 64
    interleave_ways: int = 4

    def __post_init__(self) -> None:
        for field_name in ("t_rcd_ns", "t_cas_ns", "t_rp_ns", "t_ras_ns"):
            if getattr(self, field_name) <= 0:
                raise HardwareConfigError(f"{field_name} must be positive")
        if self.row_bytes < self.burst_bytes:
            raise HardwareConfigError("row must hold at least one burst")

    @property
    def t_rc_ns(self) -> float:
        """Row cycle time: activate-to-activate on the same bank."""
        return self.t_ras_ns + self.t_rp_ns


class DramBandwidthModel:
    """Derives achievable bandwidths from timings + stack configuration."""

    def __init__(self, stack: StackConfig, timings: DramTimings = DramTimings()):
        self.stack = stack
        self.timings = timings

    # ------------------------------------------------------------------
    @property
    def peak_bank_bandwidth(self) -> float:
        """TSV-limited per-bank rate: bus width x DDR at the base clock.

        The DRAM arrays are clocked independently of the logic-die PLL, so
        the base frequency (not the scaled one) applies.
        """
        return self.timings.bus_bytes * 2 * self.stack.base_frequency_hz

    def streaming_bank_bandwidth(self) -> float:
        """Sustained rate while streaming rows sequentially.

        Streaming a full row takes row_bytes / peak; switching to the next
        row costs tRP + tRCD.  With ``interleave_ways`` DRAM banks behind
        the TSV column, a row turnaround overlaps the other banks'
        transfers and only the un-hidden remainder stalls the bus.
        """
        transfer_s = self.timings.row_bytes / self.peak_bank_bandwidth
        turnaround_s = (self.timings.t_rp_ns + self.timings.t_rcd_ns) * 1e-9
        hidden_s = transfer_s * (self.timings.interleave_ways - 1)
        exposed_s = max(0.0, turnaround_s - hidden_s)
        return self.timings.row_bytes / (transfer_s + exposed_s)

    def random_bank_bandwidth(self) -> float:
        """Rate when every burst opens a new row (worst case)."""
        access_s = (
            self.timings.t_rcd_ns + self.timings.t_cas_ns + self.timings.t_rp_ns
        ) * 1e-9 + self.timings.burst_bytes / self.peak_bank_bandwidth
        return self.timings.burst_bytes / access_s

    # ------------------------------------------------------------------
    def streaming_stack_bandwidth(self) -> float:
        return self.streaming_bank_bandwidth() * self.stack.banks

    def random_stack_bandwidth(self) -> float:
        return self.random_bank_bandwidth() * self.stack.banks

    def effective_stack_bandwidth(self, row_hit_fraction: float = 0.9) -> float:
        """Blend of streaming and random access for a given row-hit rate."""
        if not 0.0 <= row_hit_fraction <= 1.0:
            raise HardwareConfigError(
                f"row_hit_fraction must be in [0, 1]: {row_hit_fraction}"
            )
        stream = self.streaming_stack_bandwidth()
        rand = self.random_stack_bandwidth()
        return row_hit_fraction * stream + (1 - row_hit_fraction) * rand

    def consistency_ratio(self) -> float:
        """Configured internal bandwidth over the derived streaming rate.

        Should be close to (and never above) 1: the configuration may be
        conservative, but must not promise more than the timing allows.
        """
        return self.stack.internal_bandwidth / self.streaming_stack_bandwidth()
