"""Fixed-function PIM pool: a divisible, time-shared compute resource.

The pool models the 444 multiplier/adder pairs as a single allocatable
resource (the paper's OpenCL mapping makes all fixed-function PIMs one
compute device).  Kernels request units up to their parallelism; with the
operation-pipeline technique enabled several kernels hold units
concurrently, and a kernel may *expand* onto units released by others
("an operation can dynamically change its usage of PIMs", section III-C).

The pool integrates busy unit-seconds over time, which is exactly the
quantity behind the paper's Figure 15 utilization results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import SchedulingError

#: Busy-fraction bins of the occupancy histogram (plus a dedicated idle
#: bin): bin 0 is exactly-idle time, bins 1..OCCUPANCY_BINS cover busy-unit
#: fractions (0, 1] in equal slices.
OCCUPANCY_BINS = 16


@dataclass
class FixedPIMPool:
    """Allocation state + busy-time integral of the fixed-function pool."""

    n_units: int
    _allocations: Dict[str, int] = field(default_factory=dict)
    _lost_units: int = 0
    _last_time: float = 0.0
    _busy_unit_seconds: float = 0.0
    _occupancy_s: List[float] = field(
        default_factory=lambda: [0.0] * (OCCUPANCY_BINS + 1)
    )
    #: Incremental sum of ``_allocations.values()`` — ``busy_units`` is read
    #: on every allocation event and every integration step, so it is
    #: maintained on mutation instead of recomputed per access.
    _busy: int = 0

    def __post_init__(self) -> None:
        if self.n_units < 1:
            raise SchedulingError("fixed-function pool needs at least one unit")

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    @property
    def busy_units(self) -> int:
        return self._busy

    @property
    def lost_units(self) -> int:
        """Units permanently removed by injected faults (see :meth:`shrink`)."""
        return self._lost_units

    @property
    def capacity_units(self) -> int:
        """Schedulable units: nominal count minus fault losses."""
        return self.n_units - self._lost_units

    @property
    def free_units(self) -> int:
        return self.capacity_units - self.busy_units

    def holding(self, kernel_id: str) -> int:
        """Units currently held by ``kernel_id`` (0 if none)."""
        return self._allocations.get(kernel_id, 0)

    def allocate(self, kernel_id: str, want: int, now: float) -> int:
        """Grant up to ``want`` units to a new kernel; returns the grant.

        A grant of 0 means the pool is fully busy and the kernel must wait.
        """
        if kernel_id in self._allocations:
            raise SchedulingError(f"kernel {kernel_id!r} already holds units")
        if want < 1:
            raise SchedulingError(f"kernel {kernel_id!r} requested {want} units")
        granted = min(want, self.free_units)
        if granted > 0:
            self._integrate(now)
            self._allocations[kernel_id] = granted
            self._busy += granted
        return granted

    def expand(self, kernel_id: str, want_total: int, now: float) -> int:
        """Grow an existing allocation toward ``want_total``; returns the
        new holding.  Used by the operation pipeline when units free up."""
        held = self._allocations.get(kernel_id)
        if held is None:
            raise SchedulingError(f"kernel {kernel_id!r} holds no units to expand")
        extra = min(max(0, want_total - held), self.free_units)
        if extra > 0:
            self._integrate(now)
            self._allocations[kernel_id] = held + extra
            self._busy += extra
        return self._allocations[kernel_id]

    def release(self, kernel_id: str, now: float) -> int:
        """Release all units held by ``kernel_id``; returns the freed count."""
        if kernel_id not in self._allocations:
            raise SchedulingError(f"kernel {kernel_id!r} holds no units")
        self._integrate(now)  # account busy time before dropping the units
        freed = self._allocations.pop(kernel_id)
        self._busy -= freed
        return freed

    def shrink(self, units: int, now: float) -> List[str]:
        """Permanently remove up to ``units`` units (fault injection).

        The loss is clamped to the remaining capacity.  If the surviving
        capacity no longer covers the current allocations, whole kernels
        are revoked newest-first until it does; their ids are returned so
        the executor can abort (and the scheduler retry) them.
        """
        loss = min(units, self.capacity_units)
        if loss <= 0:
            return []
        self._integrate(now)
        self._lost_units += loss
        revoked: List[str] = []
        while self.busy_units > self.capacity_units:
            kernel_id = next(reversed(self._allocations))
            self._busy -= self._allocations.pop(kernel_id)
            revoked.append(kernel_id)
        return revoked

    # ------------------------------------------------------------------
    # utilization accounting
    # ------------------------------------------------------------------
    def _integrate(self, now: float) -> None:
        if now < self._last_time:
            raise SchedulingError(
                f"time went backwards: {now} < {self._last_time}"
            )
        elapsed = now - self._last_time
        if elapsed > 0:
            busy = self._busy
            self._busy_unit_seconds += busy * elapsed
            if busy == 0:
                self._occupancy_s[0] += elapsed
            else:
                idx = 1 + min(
                    OCCUPANCY_BINS - 1, busy * OCCUPANCY_BINS // self.n_units
                )
                self._occupancy_s[idx] += elapsed
        self._last_time = now

    def busy_unit_seconds(self, now: float) -> float:
        """Cumulative busy unit-seconds up to ``now``."""
        self._integrate(now)
        return self._busy_unit_seconds

    def occupancy_histogram_s(self, now: float) -> Tuple[float, ...]:
        """Seconds spent at each occupancy level up to ``now``.

        Index 0 is exactly-idle time; index ``i`` (1..OCCUPANCY_BINS) is
        time with a busy-unit fraction in bin ``i``'s slice of (0, 1].
        The values sum to ``now`` when the pool existed from time zero.
        """
        self._integrate(now)
        return tuple(self._occupancy_s)

    def utilization(self, start: float, end: float, busy_at_start: float) -> float:
        """Average pool utilization over [start, end].

        ``busy_at_start`` is the integral snapshot taken at ``start`` via
        :meth:`busy_unit_seconds`.
        """
        if end <= start:
            raise SchedulingError("utilization window must have positive length")
        window = self.busy_unit_seconds(end) - busy_at_start
        return window / (self.n_units * (end - start))
