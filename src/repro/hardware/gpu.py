"""Discrete-GPU analytical timing model (GTX 1080 Ti baseline).

Per-op roofline scaled by the per-model average utilization the paper
measured (section V-D), plus a kernel-launch overhead per operation and the
exposed fraction of the host-device minibatch staging traffic — the "data
movement time ... not hidden by the computation" of Figure 8.
"""

from __future__ import annotations

from ..config import GPUConfig
from ..nn.graph import Graph
from ..nn.ops import Op
from .cpu import OpTiming


class GpuModel:
    """Per-op and per-step timing on the discrete GPU."""

    def __init__(self, config: GPUConfig, model_name: str = "default"):
        self.config = config
        self.model_name = model_name
        self._utilization = config.utilization_for(model_name)

    @property
    def utilization(self) -> float:
        return self._utilization

    @property
    def effective_flops(self) -> float:
        return (
            self.config.peak_flops
            * self._utilization
            * self.config.achieved_efficiency
        )

    def op_timing(self, op: Op) -> OpTiming:
        """Kernel time of one operation on the GPU."""
        flops = op.cost.mac_flops + op.cost.other_flops
        compute_s = flops / self.effective_flops if flops else 0.0
        compute_s += self.config.kernel_launch_overhead_s
        memory_s = (
            op.traffic_bytes / self.config.mem_bandwidth if op.traffic_bytes else 0.0
        )
        return OpTiming(compute_s=compute_s, memory_s=memory_s)

    def exposed_transfer_s(self, graph: Graph) -> float:
        """Host->device staging time not hidden behind computation.

        One minibatch (images + labels) crosses PCIe per step; most of it
        overlaps the previous step's kernels, the rest is exposed.
        Working sets beyond device memory add vDNN-style activation
        swapping (out during forward, back in during backward) — the
        capacity pressure that makes large-batch ResNet-50 slower on the
        GPU than on the PIM system (paper section VI-A).
        """
        full = graph.input_bytes / self.config.pcie_bandwidth
        exposed = full * self.config.exposed_transfer_fraction
        swap = self.swap_bytes(graph) / self.config.pcie_bandwidth
        exposed += swap * self.config.exposed_swap_fraction
        return exposed

    def swap_bytes(self, graph: Graph) -> int:
        """Per-step PCIe activation-swap traffic (0 when the model fits)."""
        overflow = graph.resident_bytes() - self.config.memory_bytes
        if overflow <= 0:
            return 0
        return 2 * int(overflow)  # swapped out during fwd, back in during bwd
