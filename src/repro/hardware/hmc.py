"""3D die-stacked memory geometry (HMC 2.0, paper section V-A).

The stack exposes 32 banks (vertical slices); the logic die under them
hosts the heterogeneous PIMs.  Banks are arranged in a rectangular grid for
thermal-placement purposes (paper section IV-D / Figure 3a).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from ..config import StackConfig
from ..errors import HardwareConfigError


class BankZone(enum.Enum):
    """Thermal zone of a bank in the logic-die grid.

    Corner and edge banks have better heat-dissipation paths than central
    banks and therefore sustain higher compute density (section IV-D).
    """

    CORNER = "corner"
    EDGE = "edge"
    CENTER = "center"


@dataclass(frozen=True)
class BankGeometry:
    """Grid position and thermal zone of one bank."""

    index: int
    row: int
    col: int
    zone: BankZone


@dataclass(frozen=True)
class StackGeometry:
    """Bank layout of the stack's logic die.

    Args:
        config: Stack parameters (bank count, clocks, bandwidth).
        rows / cols: Logic-die grid arrangement; must multiply to the bank
            count (default 4 x 8 = 32).
    """

    config: StackConfig
    rows: int = 4
    cols: int = 8

    def __post_init__(self) -> None:
        if self.rows * self.cols != self.config.banks:
            raise HardwareConfigError(
                f"grid {self.rows}x{self.cols} != {self.config.banks} banks"
            )

    def bank(self, index: int) -> BankGeometry:
        if not 0 <= index < self.config.banks:
            raise HardwareConfigError(
                f"bank index {index} out of range 0..{self.config.banks - 1}"
            )
        row, col = divmod(index, self.cols)
        return BankGeometry(index=index, row=row, col=col, zone=self._zone(row, col))

    def _zone(self, row: int, col: int) -> BankZone:
        on_row_edge = row in (0, self.rows - 1)
        on_col_edge = col in (0, self.cols - 1)
        if on_row_edge and on_col_edge:
            return BankZone.CORNER
        if on_row_edge or on_col_edge:
            return BankZone.EDGE
        return BankZone.CENTER

    @property
    def banks(self) -> List[BankGeometry]:
        return [self.bank(i) for i in range(self.config.banks)]

    def zone_counts(self) -> Tuple[int, int, int]:
        """(corners, edges, centers) bank counts."""
        zones = [b.zone for b in self.banks]
        return (
            zones.count(BankZone.CORNER),
            zones.count(BankZone.EDGE),
            zones.count(BankZone.CENTER),
        )

    @property
    def per_bank_bandwidth(self) -> float:
        """Internal bandwidth share of one bank at the current clock."""
        return self.config.bandwidth / self.config.banks
