"""Thermal-aware placement of fixed-function PIMs on the logic die.

Paper section IV-D: the 444 multiplier/adder pairs cannot be distributed
evenly over the 32 banks; banks at the edge and corner of the die have
better thermal-dissipation paths, so they receive more units than central
banks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import PlacementError
from .hmc import BankZone, StackGeometry

#: Relative compute-density capacity per thermal zone.  Corner banks can
#: sustain ~30% more logic activity than central banks, edges ~15% more —
#: consistent with the integrated thermal analysis the paper cites [17].
ZONE_WEIGHTS: Dict[BankZone, float] = {
    BankZone.CORNER: 1.30,
    BankZone.EDGE: 1.15,
    BankZone.CENTER: 1.00,
}


@dataclass(frozen=True)
class Placement:
    """Assignment of fixed-function PIM units to banks."""

    units_per_bank: List[int]

    @property
    def total_units(self) -> int:
        return sum(self.units_per_bank)

    def units_in(self, bank_index: int) -> int:
        try:
            return self.units_per_bank[bank_index]
        except IndexError:
            raise PlacementError(f"bank {bank_index} not in placement") from None


def place_fixed_pims(geometry: StackGeometry, n_units: int) -> Placement:
    """Distribute ``n_units`` over the banks, favouring cool zones.

    Uses largest-remainder apportionment over the zone weights so the
    result is deterministic and sums exactly to ``n_units``.
    """
    if n_units < 0:
        raise PlacementError(f"cannot place {n_units} units")
    banks = geometry.banks
    weights = [ZONE_WEIGHTS[b.zone] for b in banks]
    total_weight = sum(weights)
    shares = [n_units * w / total_weight for w in weights]
    floors = [int(s) for s in shares]
    remainder = n_units - sum(floors)
    # hand out the leftover units to the largest fractional remainders,
    # breaking ties toward cooler (higher-weight) banks then lower index
    order = sorted(
        range(len(banks)),
        key=lambda i: (shares[i] - floors[i], weights[i], -i),
        reverse=True,
    )
    for i in order[:remainder]:
        floors[i] += 1
    placement = Placement(units_per_bank=floors)
    if placement.total_units != n_units:
        raise PlacementError(
            f"placement produced {placement.total_units} units, wanted {n_units}"
        )
    return placement


def validate_thermal(placement: Placement, geometry: StackGeometry) -> None:
    """Check that no central bank carries more units than any corner bank.

    This is the invariant behind the paper's placement policy; violating it
    would put the highest compute density on the worst dissipation path.
    """
    banks = geometry.banks
    corner_units = [
        placement.units_in(b.index) for b in banks if b.zone is BankZone.CORNER
    ]
    center_units = [
        placement.units_in(b.index) for b in banks if b.zone is BankZone.CENTER
    ]
    if corner_units and center_units and max(center_units) > min(corner_units):
        raise PlacementError(
            "thermal policy violated: a central bank carries more "
            "fixed-function PIMs than a corner bank"
        )
