"""System power and energy model (paper section V-B).

The paper evaluates *whole-system* power: the host CPU is included even in
PIM configurations.  Dynamic energy integrates per-device busy time against
per-device dynamic power, plus per-byte memory-access energy (off-chip
CPU<->DRAM accesses cost several times an in-stack access — the root of the
PIM energy advantage).  Static energy integrates idle power over the run.

Frequency scaling (section VI-D/VI-G) multiplies the PIM dynamic power by
the PLL scale (P ~ C V^2 f with V held), while static power is unchanged —
which is why the paper finds higher frequency *more* energy-efficient in
EDP terms.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict

from ..config import SystemConfig


@dataclass
class DeviceUsage:
    """Busy-time and traffic totals accumulated by one simulation run."""

    cpu_busy_s: float = 0.0
    gpu_busy_s: float = 0.0
    #: Busy unit-seconds of the fixed-function pool (one unit busy for one
    #: second = 1.0).
    fixed_unit_busy_s: float = 0.0
    #: Multiply-accumulate operations executed on the fixed-function pool.
    fixed_macs: float = 0.0
    #: Busy PIM-seconds of the programmable PIM cluster.
    prog_busy_s: float = 0.0
    #: Bytes moved over the off-chip CPU<->DRAM path.
    external_bytes: float = 0.0
    #: Bytes moved inside the memory stack (PIM accesses).
    internal_bytes: float = 0.0
    #: Bytes moved over the GPU's memory interface.
    gpu_bytes: float = 0.0

    def merged_with(self, other: "DeviceUsage") -> "DeviceUsage":
        return DeviceUsage(
            cpu_busy_s=self.cpu_busy_s + other.cpu_busy_s,
            gpu_busy_s=self.gpu_busy_s + other.gpu_busy_s,
            fixed_unit_busy_s=self.fixed_unit_busy_s + other.fixed_unit_busy_s,
            fixed_macs=self.fixed_macs + other.fixed_macs,
            prog_busy_s=self.prog_busy_s + other.prog_busy_s,
            external_bytes=self.external_bytes + other.external_bytes,
            internal_bytes=self.internal_bytes + other.internal_bytes,
            gpu_bytes=self.gpu_bytes + other.gpu_bytes,
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "DeviceUsage":
        return cls(**data)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy decomposition of one run."""

    dynamic_j: float
    static_j: float
    memory_j: float
    makespan_s: float
    by_device: Dict[str, float] = field(default_factory=dict)

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.static_j + self.memory_j

    @property
    def dynamic_total_j(self) -> float:
        """Dynamic + memory-access energy: the paper's "dynamic energy"."""
        return self.dynamic_j + self.memory_j

    @property
    def average_power_w(self) -> float:
        return self.total_j / self.makespan_s if self.makespan_s > 0 else 0.0

    def edp(self) -> float:
        """Energy-delay product (paper section VI-G metric)."""
        return self.total_j * self.makespan_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "dynamic_j": self.dynamic_j,
            "static_j": self.static_j,
            "memory_j": self.memory_j,
            "makespan_s": self.makespan_s,
            "by_device": dict(sorted(self.by_device.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EnergyBreakdown":
        return cls(
            dynamic_j=data["dynamic_j"],
            static_j=data["static_j"],
            memory_j=data["memory_j"],
            makespan_s=data["makespan_s"],
            by_device=dict(data.get("by_device") or {}),
        )


class EnergyModel:
    """Converts :class:`DeviceUsage` into an :class:`EnergyBreakdown`."""

    #: GDDR5X access energy, pJ/byte.
    GPU_PJ_PER_BYTE = 14.0
    #: Fraction of CPU dynamic power drawn by the host-side framework
    #: runtime (scheduling, synchronization polling) while the host's
    #: executor slots are otherwise idle — roughly one active core plus
    #: uncore.  The paper's power methodology measures the whole system.
    HOST_RUNTIME_POWER_FRACTION = 0.22

    def __init__(self, config: SystemConfig, gpu_present: bool = False):
        self.config = config
        self.gpu_present = gpu_present

    def energy(self, usage: DeviceUsage, makespan_s: float) -> EnergyBreakdown:
        """Energy of a run of length ``makespan_s`` with ``usage`` totals."""
        if makespan_s < 0:
            raise ValueError("makespan must be non-negative")
        cfg = self.config
        scale = cfg.stack.frequency_scale
        by_device: Dict[str, float] = {}

        by_device["cpu"] = usage.cpu_busy_s * cfg.cpu.dynamic_power_w
        # host framework runtime: active whenever the CPU executors are not
        by_device["host_runtime"] = (
            max(0.0, makespan_s - usage.cpu_busy_s)
            * cfg.cpu.dynamic_power_w
            * self.HOST_RUNTIME_POWER_FRACTION
        )
        by_device["gpu"] = usage.gpu_busy_s * cfg.gpu.dynamic_power_w
        # pool energy is work-based: pJ/MAC is voltage-determined and does
        # not change with the PLL (the same work just finishes sooner)
        by_device["fixed_pim"] = usage.fixed_macs * cfg.fixed_pim.pj_per_mac * 1e-12
        by_device["prog_pim"] = (
            usage.prog_busy_s * cfg.prog_pim.dynamic_power_w_per_pim * scale
        )
        dynamic_j = sum(by_device.values())

        memory_j = (
            usage.external_bytes * cfg.stack.external_pj_per_byte
            + usage.internal_bytes * cfg.stack.internal_pj_per_byte
            + usage.gpu_bytes * self.GPU_PJ_PER_BYTE
        ) * 1e-12
        if usage.internal_bytes > 0:
            # in-stack compute keeps DRAM banks active for the whole run
            by_device["stack_active"] = (
                cfg.stack.active_power_w * makespan_s
            )
            dynamic_j += by_device["stack_active"]

        static_w = cfg.cpu.static_power_w + cfg.stack.background_power_w
        if self.gpu_present:
            static_w += cfg.gpu.static_power_w
        static_j = static_w * makespan_s

        return EnergyBreakdown(
            dynamic_j=dynamic_j,
            static_j=static_j,
            memory_j=memory_j,
            makespan_s=makespan_s,
            by_device=by_device,
        )
