"""Programmable-PIM cluster state: kernel slots + busy-time integral.

Each programmable PIM (a 4-core ARM Cortex-A9) executes one kernel at a
time with intra-op parallelism across its cores; a system may carry several
programmable PIMs (the 1P/4P/16P study of section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from ..errors import SchedulingError


@dataclass
class ProgPIMCluster:
    """Occupancy state of the programmable PIM(s)."""

    n_pims: int
    _busy: Set[str] = field(default_factory=set)
    _last_time: float = 0.0
    _busy_pim_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.n_pims < 1:
            raise SchedulingError("at least one programmable PIM required")

    @property
    def busy_pims(self) -> int:
        return len(self._busy)

    @property
    def free_pims(self) -> int:
        return self.n_pims - self.busy_pims

    def acquire(self, kernel_id: str, now: float) -> bool:
        """Claim a programmable PIM for ``kernel_id``; False if all busy."""
        if kernel_id in self._busy:
            raise SchedulingError(f"kernel {kernel_id!r} already on a prog PIM")
        if not self.free_pims:
            return False
        self._integrate(now)
        self._busy.add(kernel_id)
        return True

    def release(self, kernel_id: str, now: float) -> None:
        if kernel_id not in self._busy:
            raise SchedulingError(f"kernel {kernel_id!r} not on a prog PIM")
        self._integrate(now)
        self._busy.remove(kernel_id)

    def _integrate(self, now: float) -> None:
        if now < self._last_time:
            raise SchedulingError(f"time went backwards: {now} < {self._last_time}")
        self._busy_pim_seconds += self.busy_pims * (now - self._last_time)
        self._last_time = now

    def busy_pim_seconds(self, now: float) -> float:
        self._integrate(now)
        return self._busy_pim_seconds
