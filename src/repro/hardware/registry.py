"""Pluggable hardware-backend registry (ROADMAP item 3).

A **backend** packages one complete hardware design — device kinds,
placement strategy, per-op energy coefficients, scheduling hooks, area and
power — behind two calls: ``describe()`` (a JSON-serializable
:class:`BackendDescriptor` capability record) and ``build()`` (a concrete
``(SystemConfig, SchedulingPolicy)`` pair the simulator runs).  The
paper's heterogeneous HMC design is the default ``"hmc-hetero"`` backend;
rival PIM-training architectures from the literature register alongside it
(:mod:`repro.hardware.backends`) so cross-architecture comparisons
(``repro experiment compare``) need no simulator fork.

Registration::

    from repro.hardware.registry import HardwareBackend, register

    @register
    class MyBackend(HardwareBackend):
        name = "my-backend"
        ...

Third-party packages can ship backends via the ``repro.backends``
entry-point group; entries are discovered lazily on the first registry
lookup and must resolve to a :class:`HardwareBackend` subclass or
instance.  Discovery failures are reported as warnings, never import
errors — a broken plugin must not take down the simulator.

Every built ``SystemConfig`` is tagged with its backend name
(``SystemConfig.backend``), which joins the simulation-cache fingerprint,
the cost-table key and the surrogate calibration key: two backends with
numerically identical sub-configs can never share cached state.
"""

from __future__ import annotations

import threading
import warnings
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from ..config import SystemConfig
from ..errors import BackendError, DuplicateBackendError, UnknownBackendError

if TYPE_CHECKING:  # policy lives under repro.sim; keep the import graph flat
    from ..sim.policy import SchedulingPolicy

#: Entry-point group scanned for third-party backends.
ENTRY_POINT_GROUP = "repro.backends"


@dataclass(frozen=True)
class BackendDescriptor:
    """Capability record of one hardware backend (JSON round-trippable).

    Purely descriptive: consumers (CLI listings, comparison artifacts,
    design-space tooling) read it instead of instantiating configs.  The
    authoritative numbers live in the built :class:`SystemConfig`.
    """

    #: Registry name (``repro run --backend <name>``).
    name: str
    #: One-line human description.
    description: str
    #: Device lanes the backend schedules onto (simulator lane tokens).
    device_kinds: Tuple[str, ...]
    #: Placement strategy in one phrase (e.g. "profiling-driven runtime").
    placement: str
    #: Named configurations ``build()`` accepts; first-class points only.
    configurations: Tuple[str, ...]
    #: Configuration used when ``build()`` gets no name.
    default_configuration: str
    #: Headline per-op energy coefficients (pJ/MAC, pJ/byte, ...).
    energy_tables: Dict[str, float] = field(default_factory=dict)
    #: Scheduling/offload capability flags (recursive kernels, pipeline,
    #: offloaded op classes, ...).
    scheduling: Dict[str, object] = field(default_factory=dict)
    #: In-memory-compute silicon area (logic die / DRAM overhead).
    area_mm2: float = 0.0
    #: Nominal power of the in-memory compute resources.
    power_w: float = 0.0
    #: Literature reference for the modeled design.
    reference: str = ""

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["device_kinds"] = list(self.device_kinds)
        data["configurations"] = list(self.configurations)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BackendDescriptor":
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            device_kinds=tuple(data.get("device_kinds", ())),
            placement=str(data.get("placement", "")),
            configurations=tuple(data.get("configurations", ())),
            default_configuration=str(data.get("default_configuration", "")),
            energy_tables=dict(data.get("energy_tables", {})),
            scheduling=dict(data.get("scheduling", {})),
            area_mm2=float(data.get("area_mm2", 0.0)),
            power_w=float(data.get("power_w", 0.0)),
            reference=str(data.get("reference", "")),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        from ..sim.results import canonical_dumps

        return canonical_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "BackendDescriptor":
        import json

        return cls.from_dict(json.loads(text))


class HardwareBackend(ABC):
    """One pluggable hardware design.

    Subclasses set ``name`` and implement :meth:`describe` and
    :meth:`build`.  ``build`` must return a config whose ``backend``
    field equals ``self.name`` (asserted by the registry's
    :func:`build` wrapper) — that tag is what keys every cache.
    """

    #: Registry name; subclasses must override.
    name: str = ""

    @abstractmethod
    def describe(self) -> BackendDescriptor:
        """The backend's capability descriptor."""

    @abstractmethod
    def build(
        self,
        configuration: Optional[str] = None,
        base: Optional[SystemConfig] = None,
    ) -> Tuple[SystemConfig, SchedulingPolicy]:
        """Instantiate one named configuration of this backend.

        ``configuration=None`` selects the backend's default; ``base``
        optionally supplies the host-side :class:`SystemConfig` to derive
        from (frequency-scaled studies etc.).
        """

    @property
    def configurations(self) -> Tuple[str, ...]:
        return self.describe().configurations

    @property
    def default_configuration(self) -> str:
        return self.describe().default_configuration


_REGISTRY: Dict[str, HardwareBackend] = {}
_load_lock = threading.Lock()
_builtins_loaded = False
_entry_points_loaded = False


def register(
    backend: Union[HardwareBackend, type],
) -> Union[HardwareBackend, type]:
    """Register a backend (usable as a class decorator).

    Accepts a :class:`HardwareBackend` instance or a zero-argument
    subclass; returns its argument so decorated classes stay usable.
    Raises :class:`~repro.errors.DuplicateBackendError` when the name is
    taken — re-registering would silently reroute cached work.
    """
    instance = backend() if isinstance(backend, type) else backend
    if not isinstance(instance, HardwareBackend):
        raise BackendError(
            f"register() needs a HardwareBackend, got {type(instance).__name__}"
        )
    if not instance.name:
        raise BackendError(
            f"backend {type(instance).__name__} has no name; set the "
            "'name' class attribute"
        )
    if instance.name in _REGISTRY:
        raise DuplicateBackendError(
            f"hardware backend {instance.name!r} is already registered "
            f"({type(_REGISTRY[instance.name]).__name__}); unregister it "
            "first or pick a different name"
        )
    _REGISTRY[instance.name] = instance
    return backend


def unregister(name: str) -> None:
    """Remove a registered backend (tests, plugin reloads)."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise UnknownBackendError(name, available=list_backends())
    del _REGISTRY[name]


def get(name: str) -> HardwareBackend:
    """The registered backend called ``name``.

    Raises :class:`~repro.errors.UnknownBackendError` carrying the
    registered names so callers (the CLI) can print them.
    """
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, available=list_backends()) from None


def list_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def build(
    name: str,
    configuration: Optional[str] = None,
    base: Optional[SystemConfig] = None,
) -> Tuple[SystemConfig, SchedulingPolicy]:
    """Build a configuration of backend ``name`` (registry-level helper).

    Enforces the tagging contract: the returned config's ``backend``
    field must equal the registry name, otherwise cached results from
    different backends could collide.
    """
    backend = get(name)
    system, policy = backend.build(configuration, base)
    if system.backend != name:
        raise BackendError(
            f"backend {name!r} built a config tagged {system.backend!r}; "
            "build() must return base.with_backend(name)-derived configs"
        )
    return system, policy


def _ensure_loaded() -> None:
    """Load builtin backends, then third-party entry points, once.

    Thread-safe: the serve daemon fingerprints requests on worker
    threads, so first touch can be concurrent.  The flags flip only
    *after* registration completes — a reader that grabs the lock next
    never observes a half-populated registry.
    """
    global _builtins_loaded, _entry_points_loaded
    if _builtins_loaded and _entry_points_loaded:
        return
    with _load_lock:
        if not _builtins_loaded:
            from . import backends  # noqa: F401  (registers on import)

            _builtins_loaded = True
        if not _entry_points_loaded:
            _load_entry_points()
            _entry_points_loaded = True


def _load_entry_points() -> None:
    """Discover third-party backends from the ``repro.backends`` group.

    Tolerant by design: a plugin that fails to import, returns the wrong
    type, or collides with an existing name produces one warning and is
    skipped — the builtin registry must stay usable regardless.
    """
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - 3.8+aren't supported anyway
        return
    try:
        group = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 dict API
        group = entry_points().get(ENTRY_POINT_GROUP, ())
    for entry in group:
        try:
            register(entry.load())
        except Exception as exc:  # noqa: BLE001 - plugin isolation
            warnings.warn(
                f"skipping hardware-backend entry point {entry.name!r}: "
                f"{exc}",
                RuntimeWarning,
                stacklevel=2,
            )
