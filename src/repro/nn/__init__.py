"""Neural-network training substrate: op graphs, cost model, model zoo."""

from .graph import Graph, merge_graphs
from .inference import backward_share, derive_inference_graph
from .numeric import NumericExecutor, check_gradients, random_feeds
from .layers import Activation, GraphBuilder
from .ops import OffloadClass, Op, OpCost, OpTypeInfo, OP_TYPES, op_type_info
from .tensor import TensorSpec

__all__ = [
    "Activation",
    "NumericExecutor",
    "backward_share",
    "check_gradients",
    "derive_inference_graph",
    "random_feeds",
    "Graph",
    "GraphBuilder",
    "OffloadClass",
    "Op",
    "OpCost",
    "OpTypeInfo",
    "OP_TYPES",
    "TensorSpec",
    "merge_graphs",
    "op_type_info",
]
