"""Training-dataset shape specifications (paper section V-C).

The paper trains on ImageNet (VGG-19, AlexNet, ResNet-50, Inception-v3),
MNIST (DCGAN), Penn Tree Bank (LSTM) and the TensorFlow "questions-words"
dataset (Word2vec).  The reproduction only needs minibatch *shapes* — the
simulator never touches pixel values — so each dataset is a small spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple


@dataclass(frozen=True)
class DatasetSpec:
    """Shape-level description of a training dataset.

    Attributes:
        name: Dataset identifier.
        sample_shape: Shape of one training sample (without batch dim).
        num_classes: Label cardinality (0 for unlabeled/generative data).
        vocab_size: Vocabulary size for text datasets (0 otherwise).
    """

    name: str
    sample_shape: Tuple[int, ...]
    num_classes: int = 0
    vocab_size: int = 0

    def batch_shape(self, batch_size: int) -> Tuple[int, ...]:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        return (batch_size,) + self.sample_shape


IMAGENET = DatasetSpec("imagenet", sample_shape=(224, 224, 3), num_classes=1000)
#: Inception-v3 uses the 299x299 ImageNet crop.
IMAGENET_299 = DatasetSpec("imagenet-299", sample_shape=(299, 299, 3), num_classes=1000)
MNIST = DatasetSpec("mnist", sample_shape=(28, 28, 1), num_classes=10)
PTB = DatasetSpec("ptb", sample_shape=(35,), vocab_size=10000)
QUESTIONS_WORDS = DatasetSpec(
    "questions-words", sample_shape=(1,), vocab_size=50000
)
#: WikiText-2 language-modelling corpus (transformer encoder workload);
#: one sample is a 128-token sequence.
WIKITEXT2 = DatasetSpec("wikitext-2", sample_shape=(128,), vocab_size=33278)
#: ogbn-arxiv-style citation graph (GNN workload); one sample is a 128-dim
#: node feature vector, 40 subject classes.
OGBN_ARXIV = DatasetSpec("ogbn-arxiv", sample_shape=(128,), num_classes=40)
#: Criteo-style click log (embedding recommender workload); one sample is
#: 13 dense features plus sparse categorical ids, binary label.
CRITEO = DatasetSpec("criteo-clicks", sample_shape=(13,), num_classes=2)

DATASETS: Mapping[str, DatasetSpec] = {
    spec.name: spec
    for spec in (IMAGENET, IMAGENET_299, MNIST, PTB, QUESTIONS_WORDS,
                 WIKITEXT2, OGBN_ARXIV, CRITEO)
}

#: Default training batch sizes (paper section V-C; modern-family defaults
#: follow the reference implementations of each workload).
DEFAULT_BATCH_SIZES: Mapping[str, int] = {
    "vgg-19": 32,
    "alexnet": 32,
    "inception-v3": 32,
    "resnet-50": 128,
    "dcgan": 64,
    "lstm": 20,
    "word2vec": 128,
    "transformer": 16,
    "gnn": 1024,
    "embedrec": 256,
}
