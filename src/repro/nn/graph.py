"""Dataflow graph of one training step.

A :class:`Graph` mirrors the structure the paper's runtime consumes from
TensorFlow: operations with explicit input/output tensors ("Tensors provide
convenience in tracking data dependencies across operations", section
III-C), from which the scheduler derives operation-level dependences.

Cross-step dependences (needed by the operation-pipeline technique) are
expressed through parameter variables: an op carrying
``attrs["params_read"]`` in step *s+1* depends on the optimizer op that
updates those variables in step *s* (see :meth:`Graph.param_update_op`).
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import GraphError
from .ops import Op, OpCost
from .tensor import TensorSpec


@dataclass
class Graph:
    """A named dataflow graph for one training step of one model.

    Attributes:
        name: Model name, e.g. ``"vgg-19"``.
        batch_size: Minibatch size the graph was built for.
        dataset: Human-readable training-dataset name.
    """

    name: str
    batch_size: int = 1
    dataset: str = "synthetic"
    #: Bytes of fresh input data (minibatch + labels) consumed per step;
    #: used for GPU host-device staging-traffic accounting.
    input_bytes: int = 0
    _tensors: Dict[str, TensorSpec] = field(default_factory=dict)
    _ops: Dict[str, Op] = field(default_factory=dict)
    _op_order: List[str] = field(default_factory=list)
    _producer: Dict[str, str] = field(default_factory=dict)
    _param_updates: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_tensor(self, spec: TensorSpec) -> TensorSpec:
        """Declare a tensor (external input, variable, or op output)."""
        if spec.name in self._tensors:
            raise GraphError(f"duplicate tensor {spec.name!r} in graph {self.name!r}")
        self._tensors[spec.name] = spec
        return spec

    def add_op(self, op: Op) -> Op:
        """Add an operation; inputs must already exist, outputs must be new."""
        if op.name in self._ops:
            raise GraphError(f"duplicate op {op.name!r} in graph {self.name!r}")
        for tname in op.inputs:
            if tname not in self._tensors:
                raise GraphError(
                    f"op {op.name!r} consumes unknown tensor {tname!r}"
                )
        for tname in op.outputs:
            if tname not in self._tensors:
                raise GraphError(
                    f"op {op.name!r} produces undeclared tensor {tname!r}; "
                    "declare it with add_tensor first"
                )
            if tname in self._producer:
                raise GraphError(
                    f"tensor {tname!r} already produced by {self._producer[tname]!r}"
                )
        self._ops[op.name] = op
        self._op_order.append(op.name)
        for tname in op.outputs:
            self._producer[tname] = op.name
        param = op.attrs.get("param_written")
        if param is not None:
            self._param_updates[str(param)] = op.name
        return op

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def ops(self) -> List[Op]:
        """Operations in insertion order."""
        return [self._ops[n] for n in self._op_order]

    @property
    def num_ops(self) -> int:
        return len(self._ops)

    def op(self, name: str) -> Op:
        try:
            return self._ops[name]
        except KeyError:
            raise GraphError(f"unknown op {name!r} in graph {self.name!r}") from None

    def has_op(self, name: str) -> bool:
        return name in self._ops

    def tensor(self, name: str) -> TensorSpec:
        try:
            return self._tensors[name]
        except KeyError:
            raise GraphError(
                f"unknown tensor {name!r} in graph {self.name!r}"
            ) from None

    @property
    def tensors(self) -> Mapping[str, TensorSpec]:
        return dict(self._tensors)

    def producer_of(self, tensor_name: str) -> Optional[str]:
        """Name of the op producing ``tensor_name`` (None for externals)."""
        self.tensor(tensor_name)
        return self._producer.get(tensor_name)

    def predecessors(self, op_name: str) -> Set[str]:
        """Ops whose outputs this op consumes (intra-step dependences)."""
        op = self.op(op_name)
        preds = set()
        for tname in op.inputs:
            prod = self._producer.get(tname)
            if prod is not None:
                preds.add(prod)
        extra = op.attrs.get("control_deps", ())
        for dep in extra:  # type: ignore[union-attr]
            self.op(str(dep))
            preds.add(str(dep))
        return preds

    def successors(self, op_name: str) -> Set[str]:
        """Ops that consume this op's outputs."""
        produced = set(self.op(op_name).outputs)
        succs = set()
        for other in self.ops:
            if other.name == op_name:
                continue
            if produced.intersection(other.inputs):
                succs.add(other.name)
            elif op_name in set(map(str, other.attrs.get("control_deps", ()))):
                succs.add(other.name)
        return succs

    def param_update_op(self, param_name: str) -> Optional[str]:
        """The optimizer op updating ``param_name`` (cross-step dependence)."""
        return self._param_updates.get(param_name)

    @property
    def param_update_ops(self) -> Mapping[str, str]:
        return dict(self._param_updates)

    def params_read_by(self, op_name: str) -> Tuple[str, ...]:
        return tuple(map(str, self.op(op_name).attrs.get("params_read", ())))

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Op]:
        """Ops in dependency order; raises :class:`GraphError` on cycles."""
        indeg: Dict[str, int] = {name: 0 for name in self._ops}
        succs: Dict[str, List[str]] = defaultdict(list)
        for name in self._ops:
            for pred in self.predecessors(name):
                succs[pred].append(name)
                indeg[name] += 1
        ready = deque(n for n in self._op_order if indeg[n] == 0)
        order: List[Op] = []
        while ready:
            name = ready.popleft()
            order.append(self._ops[name])
            for succ in succs[name]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._ops):
            stuck = sorted(n for n, d in indeg.items() if d > 0)
            raise GraphError(f"dependency cycle involving: {stuck[:8]}")
        return order

    def validate(self) -> None:
        """Check structural invariants (acyclicity, tensor consistency)."""
        self.topological_order()

    def invocation_counts(self) -> Counter:
        """Operation invocations per type within one step (Table I column)."""
        return Counter(op.op_type for op in self.ops)

    def total_cost(self) -> OpCost:
        """Aggregate work vector over the whole step."""
        muls = adds = other = b_in = b_out = 0
        for op in self.ops:
            muls += op.cost.muls
            adds += op.cost.adds
            other += op.cost.other_flops
            b_in += op.cost.bytes_in
            b_out += op.cost.bytes_out
        return OpCost(
            muls=muls, adds=adds, other_flops=other,
            bytes_in=b_in, bytes_out=b_out, parallelism=1,
        )

    def ops_of_type(self, op_type: str) -> List[Op]:
        return [op for op in self.ops if op.op_type == op_type]

    def resident_bytes(self) -> int:
        """Per-step resident working set: forward tensors that must stay
        live until the backward pass consumes them (activations, inputs and
        parameters, excluding gradient tensors).  Determines whether a
        discrete GPU must swap activations over PCIe (ResNet-50 at batch
        128 exceeds an 11 GB device memory)."""
        return sum(
            spec.nbytes
            for name, spec in self._tensors.items()
            if not name.startswith("grad/")
        )

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, batch={self.batch_size}, "
            f"ops={len(self._ops)}, tensors={len(self._tensors)})"
        )


def merge_graphs(name: str, graphs: Sequence[Graph]) -> Graph:
    """Combine independent model graphs into one co-run graph (Fig 16).

    Tensor and op names are prefixed with their source graph name, so the
    merged graph contains no cross-model dependences — exactly the property
    the paper exploits for mixed-workload scheduling.
    """
    merged = Graph(
        name=name,
        batch_size=max((g.batch_size for g in graphs), default=1),
        dataset="+".join(g.dataset for g in graphs),
        input_bytes=sum(g.input_bytes for g in graphs),
    )
    for g in graphs:
        prefix = f"{g.name}::"
        for tname, spec in g.tensors.items():
            merged.add_tensor(spec.with_name(prefix + tname))
        for op in g.ops:
            attrs = dict(op.attrs)
            if "params_read" in attrs:
                attrs["params_read"] = tuple(
                    prefix + str(p) for p in attrs["params_read"]
                )
            if "param_written" in attrs:
                attrs["param_written"] = prefix + str(attrs["param_written"])
            if "control_deps" in attrs:
                attrs["control_deps"] = tuple(
                    prefix + str(d) for d in attrs["control_deps"]
                )
            attrs["source_model"] = g.name
            merged.add_op(
                Op(
                    name=prefix + op.name,
                    op_type=op.op_type,
                    inputs=tuple(prefix + t for t in op.inputs),
                    outputs=tuple(prefix + t for t in op.outputs),
                    cost=op.cost,
                    attrs=attrs,
                )
            )
    return merged
