"""Inference-graph derivation from training graphs.

The paper motivates its design with *training*'s heterogeneity: backward
operations are the complex, memory-hungry ones, and prior PIM accelerators
that only target inference cannot handle them (section VII).  This module
makes that contrast measurable: :func:`derive_inference_graph` strips a
training-step graph down to its forward pass so the same runtime and
simulator can quantify how much easier inference is to offload.

Forward operations are identified structurally: an operation belongs to
the inference graph iff it produces no gradient tensor (the builder names
every backward output ``grad/...``), performs no parameter update, and is
not a loss computation.
"""

from __future__ import annotations

from typing import Set

from ..errors import GraphError
from .graph import Graph
from .ops import Op

#: Loss op types removed along with the backward pass.
_LOSS_OP_TYPES = frozenset(
    {"SparseSoftmaxCrossEntropyWithLogits", "NceLoss"}
)


def is_forward_op(op: Op) -> bool:
    """True when ``op`` belongs to the forward (inference) pass."""
    if op.attrs.get("param_written") is not None:
        return False
    if op.op_type in _LOSS_OP_TYPES:
        return False
    if any(out.startswith("grad/") for out in op.outputs):
        return False
    # the builder emits loss-flavoured ops (e.g. the GAN sigmoid loss)
    # under a layer whose outputs include a gradient seed
    return True


def derive_inference_graph(graph: Graph, name_suffix: str = "-inference") -> Graph:
    """Build the forward-only version of a training-step graph.

    The result contains exactly the forward operations with their original
    costs and tensors; parameters remain as external inputs (no optimizer).
    Dropout ops are kept (treating them as inference-time identity/MC
    dropout); their cost is negligible either way.
    """
    forward_ops = [op for op in graph.topological_order() if is_forward_op(op)]
    if not forward_ops:
        raise GraphError(f"graph {graph.name!r} has no forward operations")
    kept: Set[str] = {op.name for op in forward_ops}

    out = Graph(
        name=graph.name + name_suffix,
        batch_size=graph.batch_size,
        dataset=graph.dataset,
        input_bytes=graph.input_bytes,
    )
    needed_tensors: Set[str] = set()
    for op in forward_ops:
        needed_tensors.update(op.inputs)
        needed_tensors.update(op.outputs)
    for tname in needed_tensors:
        out.add_tensor(graph.tensor(tname))
    for op in forward_ops:
        # drop control deps pointing at removed (backward) ops
        attrs = dict(op.attrs)
        if "control_deps" in attrs:
            deps = tuple(d for d in map(str, attrs["control_deps"]) if d in kept)
            attrs["control_deps"] = deps
        out.add_op(
            Op(
                name=op.name,
                op_type=op.op_type,
                inputs=op.inputs,
                outputs=op.outputs,
                cost=op.cost,
                attrs=attrs,
            )
        )
    out.validate()
    return out


def backward_share(graph: Graph) -> float:
    """Fraction of the training step's FLOPs spent in the backward pass."""
    total = graph.total_cost().flops
    if total == 0:
        return 0.0
    forward = sum(op.cost.flops for op in graph.ops if is_forward_op(op))
    return 1.0 - forward / total
