"""Layer-level graph builder with tape-based backward construction.

:class:`GraphBuilder` provides TensorFlow-flavoured layer primitives
(``conv2d``, ``dense``, ``max_pool``, ``lstm_cell``, ...).  Each primitive
emits the *forward* operations into the graph and records a backward closure
on a tape; :meth:`GraphBuilder.finish` replays the tape in reverse to emit
the backward operations (Conv2DBackpropFilter/Input, BiasAddGrad, ReluGrad,
MaxPoolGrad, ...) and one optimizer update per trainable variable — the full
op population of one training step, matching the vocabulary of the paper's
Table I.

Gradient routing is tensor-keyed reverse-mode at layer granularity: each
backward closure consumes the gradient of its recorded output tensor and
deposits gradients for its input tensors.  When two paths deposit a gradient
for the same tensor (residual connections, shared inputs of Inception
branches) the builder emits an ``AddN`` to combine them — the same ops
TensorFlow inserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import GraphError, ShapeError
from .graph import Graph
from .ops import (
    Op,
    OpCost,
    adam_cost,
    batch_matmul_cost,
    conv2d_cost,
    data_movement_cost,
    elementwise_cost,
    matmul_cost,
    pool_cost,
    reduction_cost,
)
from .tensor import TensorSpec, conv_output_hw, deconv_output_hw

#: Backward closure: receives the gradient tensor of the layer's recorded
#: output and returns ``{input_tensor_name: gradient_tensor_name}`` for every
#: input that needs a gradient.
BackwardFn = Callable[[str], Mapping[str, str]]


@dataclass(frozen=True)
class Activation:
    """Handle to a tensor produced by a layer."""

    tensor: str
    shape: Tuple[int, ...]

    @property
    def num_elements(self) -> int:
        return math.prod(self.shape)


@dataclass(frozen=True)
class _TapeRecord:
    layer: str
    output: str
    backward: BackwardFn


class GraphBuilder:
    """Builds a one-training-step graph for a model.

    Typical use::

        b = GraphBuilder("alexnet", batch_size=32, dataset="imagenet")
        x = b.input((32, 224, 224, 3))
        x = b.conv2d(x, 96, (11, 11), stride=(4, 4), name="conv1")
        ...
        b.softmax_loss(x, num_classes=1000)
        graph = b.finish()
    """

    def __init__(self, name: str, batch_size: int, dataset: str = "synthetic"):
        self.graph = Graph(name=name, batch_size=batch_size, dataset=dataset)
        self._tape: List[_TapeRecord] = []
        self._params: List[Tuple[str, TensorSpec]] = []
        self._param_cache: Dict[str, TensorSpec] = {}
        self._param_grads: Dict[str, str] = {}
        self._loss_seeds: Dict[str, str] = {}
        self._stop_gradient: set = set()
        self._sparse_rows: Dict[str, int] = {}
        self._uid = 0

    # ------------------------------------------------------------------
    # low-level helpers
    # ------------------------------------------------------------------
    def _fresh(self, hint: str) -> str:
        self._uid += 1
        return f"{hint}:{self._uid}"

    def _tensor(self, hint: str, shape: Sequence[int]) -> TensorSpec:
        spec = TensorSpec(self._fresh(hint), tuple(int(d) for d in shape))
        self.graph.add_tensor(spec)
        return spec

    def _param(self, name: str, shape: Sequence[int]) -> TensorSpec:
        """Create a trainable variable; re-requesting the same name returns
        the existing tensor (weight sharing, e.g. LSTM cells across time)."""
        existing = self._param_cache.get(name)
        if existing is not None:
            if existing.shape != tuple(int(d) for d in shape):
                raise GraphError(
                    f"shared parameter {name!r} requested with shape "
                    f"{tuple(shape)} but exists with {existing.shape}"
                )
            return existing
        spec = TensorSpec(name, tuple(int(d) for d in shape))
        self.graph.add_tensor(spec)
        self._params.append((name, spec))
        self._param_cache[name] = spec
        return spec

    def _op(
        self,
        name: str,
        op_type: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        cost: OpCost,
        **attrs: object,
    ) -> Op:
        op = Op(
            name=name,
            op_type=op_type,
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            cost=cost,
            attrs=attrs,
        )
        self.graph.add_op(op)
        return op

    def _record(self, layer: str, output: str, backward: BackwardFn) -> None:
        self._tape.append(_TapeRecord(layer=layer, output=output, backward=backward))

    def _needs_grad(self, tensor: str) -> bool:
        """Gradient flows to a tensor iff some op produced it (not an input)."""
        return (
            self.graph.producer_of(tensor) is not None
            and tensor not in self._stop_gradient
        )

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def input(self, shape: Sequence[int], name: str = "input") -> Activation:
        """Declare an external minibatch input tensor."""
        spec = self._tensor(name, shape)
        self.graph.input_bytes += spec.nbytes
        return Activation(spec.name, spec.shape)

    def stop_gradient(self, x: Activation) -> Activation:
        """Prevent gradients from flowing past ``x`` (GAN discriminator-on-
        fake uses this when updating only one sub-network)."""
        self._stop_gradient.add(x.tensor)
        return x

    # ------------------------------------------------------------------
    # convolution
    # ------------------------------------------------------------------
    def conv2d(
        self,
        x: Activation,
        filters: int,
        kernel: Tuple[int, int],
        stride: Tuple[int, int] = (1, 1),
        padding: str = "SAME",
        activation: Optional[str] = "relu",
        use_bias: bool = True,
        name: str = "conv",
    ) -> Activation:
        """2-D convolution + optional bias + optional activation."""
        if len(x.shape) != 4:
            raise ShapeError(f"conv2d expects NHWC input, got {x.shape}")
        n, h, w, c_in = x.shape
        kh, kw = kernel
        ho, wo = conv_output_hw(h, w, kernel, stride, padding)
        w_spec = self._param(f"{name}/weights", (kh, kw, c_in, filters))
        out = self._tensor(f"{name}/conv_out", (n, ho, wo, filters))
        in_spec = self.graph.tensor(x.tensor)
        self._op(
            f"{name}/Conv2D",
            "Conv2D",
            [x.tensor, w_spec.name],
            [out.name],
            conv2d_cost(n, ho, wo, c_in, filters, kernel,
                        in_spec.nbytes, w_spec.nbytes, out.nbytes),
            params_read=(w_spec.name,),
            layer=name,
            kernel=kernel,
            stride=stride,
            padding=padding,
        )
        y = Activation(out.name, out.shape)
        if use_bias:
            y = self._bias_add(y, filters, name)
        if activation:
            y = self._activation(y, activation, name)

        def backward(grad_out: str) -> Mapping[str, str]:
            g = grad_out
            if activation:
                g = self._activation_grad(g, y, activation, name)
            if use_bias:
                self._bias_add_grad(g, out.shape, filters, name)
            gw = self._tensor(f"grad/{name}/weights", w_spec.shape)
            self._op(
                f"{name}/Conv2DBackpropFilter",
                "Conv2DBackpropFilter",
                [x.tensor, g],
                [gw.name],
                conv2d_cost(n, ho, wo, c_in, filters, kernel,
                            in_spec.nbytes, out.nbytes, gw.nbytes,
                            index_overhead=1.0),
                layer=name,
                kernel=kernel,
                stride=stride,
                padding=padding,
            )
            self._register_grad(w_spec.name, gw.name)
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", in_spec.shape)
            cost = conv2d_cost(
                n, ho, wo, c_in, filters, kernel,
                out.nbytes, w_spec.nbytes, gi.nbytes, index_overhead=0.6,
            )
            # backprop-to-input occupies one pair per rotated-filter tap
            cost = OpCost(
                muls=cost.muls, adds=cost.adds, other_flops=cost.other_flops,
                bytes_in=cost.bytes_in, bytes_out=cost.bytes_out,
                parallelism=max(1, kh * kw * filters),
            )
            self._op(
                f"{name}/Conv2DBackpropInput",
                "Conv2DBackpropInput",
                [g, w_spec.name],
                [gi.name],
                cost,
                params_read=(w_spec.name,),
                layer=name,
                kernel=kernel,
                stride=stride,
                padding=padding,
                input_shape=in_spec.shape,
            )
            return {x.tensor: gi.name}

        self._record(name, y.tensor, backward)
        return y

    def conv2d_transpose(
        self,
        x: Activation,
        filters: int,
        kernel: Tuple[int, int],
        stride: Tuple[int, int] = (2, 2),
        activation: Optional[str] = "relu",
        use_bias: bool = True,
        name: str = "deconv",
    ) -> Activation:
        """Transposed convolution (DCGAN generator upsampling)."""
        if len(x.shape) != 4:
            raise ShapeError(f"conv2d_transpose expects NHWC input, got {x.shape}")
        n, h, w, c_in = x.shape
        kh, kw = kernel
        ho, wo = deconv_output_hw(h, w, stride)
        w_spec = self._param(f"{name}/weights", (kh, kw, filters, c_in))
        out = self._tensor(f"{name}/deconv_out", (n, ho, wo, filters))
        in_spec = self.graph.tensor(x.tensor)
        self._op(
            f"{name}/Conv2DTranspose",
            "Conv2DTranspose",
            [x.tensor, w_spec.name],
            [out.name],
            conv2d_cost(n, h, w, filters, c_in, kernel,
                        in_spec.nbytes, w_spec.nbytes, out.nbytes),
            params_read=(w_spec.name,),
            layer=name,
        )
        y = Activation(out.name, out.shape)
        if use_bias:
            y = self._bias_add(y, filters, name)
        if activation:
            y = self._activation(y, activation, name)

        def backward(grad_out: str) -> Mapping[str, str]:
            g = grad_out
            if activation:
                g = self._activation_grad(g, y, activation, name)
            if use_bias:
                self._bias_add_grad(g, out.shape, filters, name)
            gw = self._tensor(f"grad/{name}/weights", w_spec.shape)
            self._op(
                f"{name}/Conv2DBackpropFilter",
                "Conv2DBackpropFilter",
                [x.tensor, g],
                [gw.name],
                conv2d_cost(n, h, w, filters, c_in, kernel,
                            in_spec.nbytes, out.nbytes, gw.nbytes,
                            index_overhead=1.0),
                layer=name,
            )
            self._register_grad(w_spec.name, gw.name)
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", in_spec.shape)
            self._op(
                f"{name}/Conv2DBackpropInput",
                "Conv2DBackpropInput",
                [g, w_spec.name],
                [gi.name],
                conv2d_cost(n, h, w, filters, c_in, kernel,
                            out.nbytes, w_spec.nbytes, gi.nbytes,
                            index_overhead=0.6),
                params_read=(w_spec.name,),
                layer=name,
            )
            return {x.tensor: gi.name}

        self._record(name, y.tensor, backward)
        return y

    # ------------------------------------------------------------------
    # bias / activations
    # ------------------------------------------------------------------
    def _bias_add(
        self,
        x: Activation,
        channels: int,
        layer: str,
        param_scope: Optional[str] = None,
    ) -> Activation:
        b_spec = self._param(f"{param_scope or layer}/bias", (channels,))
        out = self._tensor(f"{layer}/bias_out", x.shape)
        self._op(
            f"{layer}/BiasAdd",
            "BiasAdd",
            [x.tensor, b_spec.name],
            [out.name],
            elementwise_cost(x.num_elements, n_inputs=1, mac=True),
            params_read=(b_spec.name,),
            layer=layer,
        )
        return Activation(out.name, x.shape)

    def _bias_add_grad(
        self,
        grad: str,
        shape: Tuple[int, ...],
        channels: int,
        layer: str,
        param_scope: Optional[str] = None,
    ) -> None:
        gb = self._tensor(f"grad/{layer}/bias", (channels,))
        self._op(
            f"{layer}/BiasAddGrad",
            "BiasAddGrad",
            [grad],
            [gb.name],
            reduction_cost(math.prod(shape), channels),
            layer=layer,
        )
        self._register_grad(f"{param_scope or layer}/bias", gb.name)

    _ACTIVATIONS = {
        "relu": ("Relu", "ReluGrad", 1.0, 1.0),
        "sigmoid": ("Sigmoid", "SigmoidGrad", 4.0, 3.0),
        "tanh": ("Tanh", "TanhGrad", 5.0, 3.0),
        "lrelu": ("Relu", "ReluGrad", 2.0, 2.0),
    }

    def _activation(self, x: Activation, kind: str, layer: str) -> Activation:
        if kind not in self._ACTIVATIONS:
            raise GraphError(f"unknown activation {kind!r}")
        fwd, _, flops, _ = self._ACTIVATIONS[kind]
        out = self._tensor(f"{layer}/act_out", x.shape)
        self._op(
            f"{layer}/{fwd}",
            fwd,
            [x.tensor],
            [out.name],
            elementwise_cost(x.num_elements, flops_per_element=flops),
            layer=layer,
        )
        return Activation(out.name, x.shape)

    def _activation_grad(
        self, grad: str, y: Activation, kind: str, layer: str
    ) -> str:
        _, bwd, _, flops = self._ACTIVATIONS[kind]
        out = self._tensor(f"grad/{layer}/act", y.shape)
        self._op(
            f"{layer}/{bwd}",
            bwd,
            [grad, y.tensor],
            [out.name],
            elementwise_cost(y.num_elements, n_inputs=2, flops_per_element=flops),
            layer=layer,
        )
        return out.name

    def relu(self, x: Activation, name: str = "relu") -> Activation:
        """Standalone ReLU with its backward op."""
        y = self._activation(x, "relu", name)

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            g = self._activation_grad(grad_out, y, "relu", name)
            return {x.tensor: g}

        self._record(name, y.tensor, backward)
        return y

    def activation(self, x: Activation, kind: str, name: str) -> Activation:
        """Standalone activation (sigmoid / tanh / lrelu) with backward."""
        y = self._activation(x, kind, name)

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            g = self._activation_grad(grad_out, y, kind, name)
            return {x.tensor: g}

        self._record(name, y.tensor, backward)
        return y

    # ------------------------------------------------------------------
    # pooling / normalization
    # ------------------------------------------------------------------
    def max_pool(
        self,
        x: Activation,
        kernel: Tuple[int, int] = (2, 2),
        stride: Tuple[int, int] = (2, 2),
        padding: str = "VALID",
        name: str = "pool",
    ) -> Activation:
        n, h, w, c = x.shape
        ho, wo = conv_output_hw(h, w, kernel, stride, padding)
        in_spec = self.graph.tensor(x.tensor)
        out = self._tensor(f"{name}/pool_out", (n, ho, wo, c))
        self._op(
            f"{name}/MaxPool",
            "MaxPool",
            [x.tensor],
            [out.name],
            pool_cost(n, ho, wo, c, kernel, in_spec.nbytes, out.nbytes),
            layer=name,
            kernel=kernel,
            stride=stride,
            padding=padding,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", in_spec.shape)
            cost = OpCost(
                other_flops=in_spec.num_elements,
                bytes_in=in_spec.nbytes + 2 * out.nbytes,
                bytes_out=in_spec.nbytes,
                parallelism=max(1, c),
            )
            self._op(
                f"{name}/MaxPoolGrad", "MaxPoolGrad",
                [x.tensor, out.name, grad_out], [gi.name], cost, layer=name,
                kernel=kernel,
                stride=stride,
                padding=padding,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, (n, ho, wo, c))

    def avg_pool(
        self,
        x: Activation,
        kernel: Tuple[int, int],
        stride: Tuple[int, int],
        padding: str = "VALID",
        name: str = "avgpool",
    ) -> Activation:
        n, h, w, c = x.shape
        ho, wo = conv_output_hw(h, w, kernel, stride, padding)
        in_spec = self.graph.tensor(x.tensor)
        out = self._tensor(f"{name}/pool_out", (n, ho, wo, c))
        kh, kw = kernel
        windows = n * ho * wo * c
        self._op(
            f"{name}/AvgPool",
            "AvgPool",
            [x.tensor],
            [out.name],
            OpCost(adds=windows * kh * kw, muls=windows,
                   bytes_in=in_spec.nbytes, bytes_out=out.nbytes,
                   parallelism=max(1, c)),
            layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", in_spec.shape)
            self._op(
                f"{name}/AvgPoolGrad", "AvgPoolGrad",
                [grad_out], [gi.name],
                OpCost(muls=in_spec.num_elements, adds=in_spec.num_elements,
                       bytes_in=out.nbytes, bytes_out=in_spec.nbytes,
                       parallelism=max(1, c)),
                layer=name,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, (n, ho, wo, c))

    def lrn(self, x: Activation, name: str = "lrn") -> Activation:
        """Local response normalization (AlexNet)."""
        out = self._tensor(f"{name}/lrn_out", x.shape)
        self._op(
            f"{name}/LRN", "LRN", [x.tensor], [out.name],
            elementwise_cost(x.num_elements, flops_per_element=8.0),
            layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", x.shape)
            self._op(
                f"{name}/LRNGrad", "LRNGrad", [grad_out, x.tensor], [gi.name],
                elementwise_cost(x.num_elements, n_inputs=2,
                                 flops_per_element=12.0),
                layer=name,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, x.shape)

    def batch_norm(self, x: Activation, name: str = "bn") -> Activation:
        """Fused batch normalization (ResNet / Inception)."""
        channels = x.shape[-1]
        scale = self._param(f"{name}/gamma", (channels,))
        offset = self._param(f"{name}/beta", (channels,))
        out = self._tensor(f"{name}/bn_out", x.shape)
        numel = x.num_elements
        in_spec = self.graph.tensor(x.tensor)
        self._op(
            f"{name}/FusedBatchNorm",
            "FusedBatchNorm",
            [x.tensor, scale.name, offset.name],
            [out.name],
            OpCost(muls=2 * numel, adds=2 * numel, other_flops=4 * channels,
                   bytes_in=in_spec.nbytes, bytes_out=in_spec.nbytes,
                   parallelism=max(1, channels)),
            params_read=(scale.name, offset.name),
            layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            gi = self._tensor(f"grad/{name}/input", x.shape)
            gs = self._tensor(f"grad/{name}/gamma", (channels,))
            gb = self._tensor(f"grad/{name}/beta", (channels,))
            self._op(
                f"{name}/FusedBatchNormGrad",
                "FusedBatchNormGrad",
                [grad_out, x.tensor],
                [gi.name, gs.name, gb.name],
                OpCost(muls=3 * numel, adds=3 * numel,
                       other_flops=6 * channels,
                       bytes_in=2 * in_spec.nbytes, bytes_out=in_spec.nbytes,
                       parallelism=max(1, channels)),
                layer=name,
            )
            self._register_grad(scale.name, gs.name)
            self._register_grad(offset.name, gb.name)
            if not self._needs_grad(x.tensor):
                return {}
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, x.shape)

    # ------------------------------------------------------------------
    # dense / reshape / dropout
    # ------------------------------------------------------------------
    def flatten(self, x: Activation, name: str = "flatten") -> Activation:
        numel = x.num_elements
        n = x.shape[0]
        out = self._tensor(f"{name}/flat", (n, numel // n))
        self._op(
            f"{name}/Reshape", "Reshape", [x.tensor], [out.name],
            OpCost(), layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", x.shape)
            self._op(
                f"{name}/ReshapeGrad", "Reshape", [grad_out], [gi.name],
                OpCost(), layer=name,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, out.shape)

    def reshape(
        self, x: Activation, shape: Sequence[int], name: str = "reshape"
    ) -> Activation:
        target = tuple(int(d) for d in shape)
        if math.prod(target) != x.num_elements:
            raise ShapeError(
                f"cannot reshape {x.shape} ({x.num_elements} elems) to {target}"
            )
        out = self._tensor(f"{name}/reshaped", target)
        self._op(
            f"{name}/Reshape", "Reshape", [x.tensor], [out.name],
            OpCost(), layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", x.shape)
            self._op(
                f"{name}/ReshapeGrad", "Reshape", [grad_out], [gi.name],
                OpCost(), layer=name,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, target)

    def dense(
        self,
        x: Activation,
        units: int,
        activation: Optional[str] = "relu",
        use_bias: bool = True,
        name: str = "fc",
        param_scope: Optional[str] = None,
    ) -> Activation:
        """Fully connected layer.

        ``param_scope`` names the weight/bias variables; passing the same
        scope from several calls shares the parameters (recurrent cells).
        """
        if len(x.shape) != 2:
            raise ShapeError(f"dense expects 2-D input, got {x.shape}")
        m, k = x.shape
        w_spec = self._param(f"{param_scope or name}/weights", (k, units))
        out = self._tensor(f"{name}/matmul_out", (m, units))
        self._op(
            f"{name}/MatMul",
            "MatMul",
            [x.tensor, w_spec.name],
            [out.name],
            matmul_cost(m, k, units),
            params_read=(w_spec.name,),
            layer=name,
        )
        y = Activation(out.name, (m, units))
        if use_bias:
            y = self._bias_add(y, units, name, param_scope)
        if activation:
            y = self._activation(y, activation, name)

        def backward(grad_out: str) -> Mapping[str, str]:
            g = grad_out
            if activation:
                g = self._activation_grad(g, y, activation, name)
            if use_bias:
                self._bias_add_grad(g, (m, units), units, name, param_scope)
            gw = self._tensor(f"grad/{name}/weights", w_spec.shape)
            self._op(
                f"{name}/MatMulGradWeights", "MatMul",
                [x.tensor, g], [gw.name],
                matmul_cost(k, m, units), layer=name,
                transpose_a=True,
            )
            self._register_grad(w_spec.name, gw.name)
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", (m, k))
            self._op(
                f"{name}/MatMulGradInput", "MatMul",
                [g, w_spec.name], [gi.name],
                matmul_cost(m, units, k),
                params_read=(w_spec.name,), layer=name,
                transpose_b=True,
            )
            return {x.tensor: gi.name}

        self._record(name, y.tensor, backward)
        return y

    def dropout(self, x: Activation, name: str = "dropout") -> Activation:
        out = self._tensor(f"{name}/drop_out", x.shape)
        self._op(
            f"{name}/Dropout", "Dropout", [x.tensor], [out.name],
            elementwise_cost(x.num_elements, flops_per_element=3.0),
            layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", x.shape)
            self._op(
                f"{name}/DropoutGrad", "DropoutGrad", [grad_out], [gi.name],
                elementwise_cost(x.num_elements), layer=name,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, x.shape)

    # ------------------------------------------------------------------
    # attention / normalization (transformer)
    # ------------------------------------------------------------------
    def batch_matmul(
        self,
        x: Activation,
        y: Activation,
        transpose_b: bool = False,
        name: str = "bmm",
    ) -> Activation:
        """Batched matrix multiply (attention scores / context).

        ``x`` is ``(B, M, K)``; ``y`` is ``(B, K, N)``, or ``(B, N, K)``
        when ``transpose_b``.  The backward pass emits two BatchMatMuls,
        mirroring TensorFlow's BatchMatMul gradient.
        """
        if len(x.shape) != 3 or len(y.shape) != 3:
            raise ShapeError(
                f"batch_matmul expects rank-3 inputs, got {x.shape} / {y.shape}"
            )
        bx, m, k = x.shape
        if transpose_b:
            by, n, k2 = y.shape
        else:
            by, k2, n = y.shape
        if bx != by or k != k2:
            raise ShapeError(
                f"batch_matmul shape mismatch: {x.shape} x {y.shape} "
                f"(transpose_b={transpose_b})"
            )
        out = self._tensor(f"{name}/bmm_out", (bx, m, n))
        self._op(
            f"{name}/BatchMatMul",
            "BatchMatMul",
            [x.tensor, y.tensor],
            [out.name],
            batch_matmul_cost(bx, m, k, n),
            layer=name,
            transpose_b=transpose_b,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            grads: Dict[str, str] = {}
            if self._needs_grad(x.tensor):
                gx = self._tensor(f"grad/{name}/a", x.shape)
                self._op(
                    f"{name}/BatchMatMulGradA", "BatchMatMul",
                    [grad_out, y.tensor], [gx.name],
                    batch_matmul_cost(bx, m, n, k), layer=name,
                    transpose_b=not transpose_b,
                )
                grads[x.tensor] = gx.name
            if self._needs_grad(y.tensor):
                gy = self._tensor(f"grad/{name}/b", y.shape)
                self._op(
                    f"{name}/BatchMatMulGradB", "BatchMatMul",
                    [x.tensor, grad_out], [gy.name],
                    batch_matmul_cost(bx, k, m, n), layer=name,
                    transpose_a=True,
                )
                grads[y.tensor] = gy.name
            return grads

        self._record(name, out.name, backward)
        return Activation(out.name, (bx, m, n))

    def softmax(self, x: Activation, name: str = "softmax") -> Activation:
        """Standalone softmax over the last axis (attention weights)."""
        out = self._tensor(f"{name}/softmax_out", x.shape)
        self._op(
            f"{name}/Softmax", "Softmax", [x.tensor], [out.name],
            elementwise_cost(x.num_elements, flops_per_element=5.0),
            layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", x.shape)
            self._op(
                f"{name}/SoftmaxGrad", "SoftmaxGrad",
                [grad_out, out.name], [gi.name],
                elementwise_cost(x.num_elements, n_inputs=2,
                                 flops_per_element=4.0),
                layer=name,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, x.shape)

    def layer_norm(self, x: Activation, name: str = "ln") -> Activation:
        """Layer normalization over the last axis (transformer blocks)."""
        features = x.shape[-1]
        scale = self._param(f"{name}/gamma", (features,))
        offset = self._param(f"{name}/beta", (features,))
        out = self._tensor(f"{name}/ln_out", x.shape)
        numel = x.num_elements
        rows = max(1, numel // features)
        in_spec = self.graph.tensor(x.tensor)
        self._op(
            f"{name}/LayerNorm",
            "LayerNorm",
            [x.tensor, scale.name, offset.name],
            [out.name],
            OpCost(muls=2 * numel, adds=2 * numel, other_flops=4 * rows,
                   bytes_in=in_spec.nbytes, bytes_out=in_spec.nbytes,
                   parallelism=rows),
            params_read=(scale.name, offset.name),
            layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            gi = self._tensor(f"grad/{name}/input", x.shape)
            gs = self._tensor(f"grad/{name}/gamma", (features,))
            gb = self._tensor(f"grad/{name}/beta", (features,))
            self._op(
                f"{name}/LayerNormGrad",
                "LayerNormGrad",
                [grad_out, x.tensor],
                [gi.name, gs.name, gb.name],
                OpCost(muls=3 * numel, adds=3 * numel,
                       other_flops=6 * rows,
                       bytes_in=2 * in_spec.nbytes, bytes_out=in_spec.nbytes,
                       parallelism=rows),
                layer=name,
            )
            self._register_grad(scale.name, gs.name)
            self._register_grad(offset.name, gb.name)
            if not self._needs_grad(x.tensor):
                return {}
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, x.shape)

    # ------------------------------------------------------------------
    # message passing (GNN)
    # ------------------------------------------------------------------
    def gather(
        self, x: Activation, indices: Activation, name: str = "gather"
    ) -> Activation:
        """Gather rows of a node-state matrix by an index tensor.

        ``x`` is ``(N, F)`` node states, ``indices`` is ``(E,)`` edge
        endpoints; the gradient scatters back with UnsortedSegmentSum —
        the message-passing half of a GNN layer.
        """
        if len(x.shape) != 2:
            raise ShapeError(f"gather expects a 2-D source, got {x.shape}")
        n_rows, feat = x.shape
        e = indices.num_elements
        out_shape = indices.shape + (feat,)
        out = self._tensor(f"{name}/gathered", out_shape)
        self._op(
            f"{name}/GatherV2", "GatherV2",
            [x.tensor, indices.tensor], [out.name],
            OpCost(other_flops=e, bytes_in=e * feat * 4 + e * 4,
                   bytes_out=e * feat * 4, parallelism=max(1, e)),
            layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", x.shape)
            self._op(
                f"{name}/UnsortedSegmentSum", "UnsortedSegmentSum",
                [grad_out, indices.tensor], [gi.name],
                OpCost(adds=e * feat, bytes_in=e * feat * 4 + e * 4,
                       bytes_out=n_rows * feat * 4,
                       parallelism=max(1, feat)),
                layer=name,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, out_shape)

    def segment_sum(
        self,
        x: Activation,
        segment_ids: Activation,
        num_segments: int,
        name: str = "segsum",
    ) -> Activation:
        """Sum rows of ``x`` into ``num_segments`` buckets (GNN aggregate).

        ``x`` is ``(E, F)`` edge messages, ``segment_ids`` is ``(E,)``
        destination nodes; the gradient gathers back along the same ids.
        """
        if len(x.shape) != 2:
            raise ShapeError(f"segment_sum expects 2-D messages, got {x.shape}")
        e, feat = x.shape
        out = self._tensor(f"{name}/segments", (num_segments, feat))
        self._op(
            f"{name}/UnsortedSegmentSum", "UnsortedSegmentSum",
            [x.tensor, segment_ids.tensor], [out.name],
            OpCost(adds=e * feat, bytes_in=e * feat * 4 + e * 4,
                   bytes_out=num_segments * feat * 4,
                   parallelism=max(1, feat)),
            layer=name,
            num_segments=num_segments,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", x.shape)
            self._op(
                f"{name}/GatherV2", "GatherV2",
                [grad_out, segment_ids.tensor], [gi.name],
                OpCost(other_flops=e, bytes_in=e * feat * 4 + e * 4,
                       bytes_out=e * feat * 4, parallelism=max(1, e)),
                layer=name,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, (num_segments, feat))

    # ------------------------------------------------------------------
    # structural ops
    # ------------------------------------------------------------------
    def concat(self, xs: Sequence[Activation], name: str = "concat") -> Activation:
        """Channel-axis concatenation; its gradient emits Slice ops."""
        if not xs:
            raise GraphError("concat needs at least one input")
        base = xs[0].shape[:-1]
        for x in xs:
            if x.shape[:-1] != base:
                raise ShapeError("concat inputs must agree on leading dims")
        channels = sum(x.shape[-1] for x in xs)
        out_shape = base + (channels,)
        out = self._tensor(f"{name}/concat_out", out_shape)
        nbytes = sum(self.graph.tensor(x.tensor).nbytes for x in xs)
        self._op(
            f"{name}/ConcatV2", "ConcatV2",
            [x.tensor for x in xs], [out.name],
            data_movement_cost(nbytes), layer=name, axis=-1,
        )
        offsets = []
        acc = 0
        for x in xs:
            offsets.append(acc)
            acc += x.shape[-1]

        def backward(grad_out: str) -> Mapping[str, str]:
            grads: Dict[str, str] = {}
            for i, x in enumerate(xs):
                if not self._needs_grad(x.tensor):
                    continue
                gi = self._tensor(f"grad/{name}/slice{i}", x.shape)
                self._op(
                    f"{name}/Slice_{i}", "Slice", [grad_out], [gi.name],
                    data_movement_cost(self.graph.tensor(x.tensor).nbytes),
                    layer=name,
                    axis=-1,
                    start=offsets[i],
                    size=x.shape[-1],
                )
                grads[x.tensor] = gi.name
            return grads

        self._record(name, out.name, backward)
        return Activation(out.name, out_shape)

    def add(self, x: Activation, y: Activation, name: str = "add") -> Activation:
        """Element-wise residual addition (ResNet shortcut)."""
        if x.shape != y.shape:
            raise ShapeError(f"add shape mismatch: {x.shape} vs {y.shape}")
        out = self._tensor(f"{name}/add_out", x.shape)
        self._op(
            f"{name}/Add", "Add", [x.tensor, y.tensor], [out.name],
            elementwise_cost(x.num_elements, n_inputs=2, mac=True),
            layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            grads: Dict[str, str] = {}
            # the gradient of an add is the identity toward both inputs
            for operand in (x, y):
                if self._needs_grad(operand.tensor):
                    grads[operand.tensor] = grad_out
            return grads

        self._record(name, out.name, backward)
        return Activation(out.name, x.shape)

    def multiply(self, x: Activation, y: Activation, name: str = "mul") -> Activation:
        """Element-wise product (LSTM gates, GAN losses)."""
        if x.shape != y.shape:
            raise ShapeError(f"mul shape mismatch: {x.shape} vs {y.shape}")
        out = self._tensor(f"{name}/mul_out", x.shape)
        self._op(
            f"{name}/Mul", "Mul", [x.tensor, y.tensor], [out.name],
            elementwise_cost(x.num_elements, n_inputs=2, mac=True),
            layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            grads: Dict[str, str] = {}
            for i, (operand, other) in enumerate(((x, y), (y, x))):
                if not self._needs_grad(operand.tensor):
                    continue
                gi = self._tensor(f"grad/{name}/in{i}", operand.shape)
                self._op(
                    f"{name}/MulGrad_{i}", "Mul",
                    [grad_out, other.tensor], [gi.name],
                    elementwise_cost(operand.num_elements, n_inputs=2, mac=True),
                    layer=name,
                )
                grads[operand.tensor] = gi.name
            return grads

        self._record(name, out.name, backward)
        return Activation(out.name, x.shape)

    def slice_batch(
        self, x: Activation, start: int, size: int, name: str = "slice"
    ) -> Activation:
        """Slice along the batch dimension (DCGAN splits real/fake scores)."""
        if start < 0 or start + size > x.shape[0]:
            raise ShapeError(
                f"slice [{start}:{start + size}] out of range for {x.shape}"
            )
        out_shape = (size,) + x.shape[1:]
        out = self._tensor(f"{name}/sliced", out_shape)
        per_item = self.graph.tensor(x.tensor).nbytes // x.shape[0]
        self._op(
            f"{name}/Slice", "Slice", [x.tensor], [out.name],
            data_movement_cost(per_item * size), layer=name,
            axis=0, start=start, size=size,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", x.shape)
            self._op(
                f"{name}/SliceGrad", "Pad", [grad_out], [gi.name],
                data_movement_cost(self.graph.tensor(x.tensor).nbytes),
                layer=name,
                axis=0, start=start, size=size, target_shape=x.shape,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, out_shape)

    def slice_channels(
        self, x: Activation, start: int, size: int, name: str = "chslice"
    ) -> Activation:
        """Slice along the last (channel/feature) axis (LSTM gate split)."""
        if start < 0 or start + size > x.shape[-1]:
            raise ShapeError(
                f"channel slice [{start}:{start + size}] out of range for {x.shape}"
            )
        out_shape = x.shape[:-1] + (size,)
        out = self._tensor(f"{name}/sliced", out_shape)
        frac = size / x.shape[-1]
        nbytes = int(self.graph.tensor(x.tensor).nbytes * frac)
        self._op(
            f"{name}/Slice", "Slice", [x.tensor], [out.name],
            data_movement_cost(nbytes), layer=name,
            axis=-1, start=start, size=size,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            if not self._needs_grad(x.tensor):
                return {}
            gi = self._tensor(f"grad/{name}/input", x.shape)
            self._op(
                f"{name}/SliceGrad", "Pad", [grad_out], [gi.name],
                data_movement_cost(self.graph.tensor(x.tensor).nbytes),
                layer=name,
                axis=-1, start=start, size=size, target_shape=x.shape,
            )
            return {x.tensor: gi.name}

        self._record(name, out.name, backward)
        return Activation(out.name, out_shape)

    # ------------------------------------------------------------------
    # embeddings (Word2vec)
    # ------------------------------------------------------------------
    def embedding_lookup(
        self,
        vocab_size: int,
        embed_dim: int,
        ids: Activation,
        name: str = "embedding",
        sparse_update: bool = False,
    ) -> Activation:
        """Gather rows of an embedding matrix; grad is UnsortedSegmentSum.

        With ``sparse_update`` the optimizer update for the table touches
        only the gathered rows (sparse ApplyAdam — the recommender-model
        path) instead of the full ``vocab_size x embed_dim`` matrix.
        """
        table = self._param(f"{name}/table", (vocab_size, embed_dim))
        n = ids.num_elements
        if sparse_update:
            rows = min(vocab_size, n)
            prev = self._sparse_rows.get(table.name)
            self._sparse_rows[table.name] = (
                rows if prev is None else min(vocab_size, prev + rows)
            )
        out = self._tensor(f"{name}/gathered", ids.shape + (embed_dim,))
        self._op(
            f"{name}/GatherV2", "GatherV2",
            [table.name, ids.tensor], [out.name],
            OpCost(other_flops=n, bytes_in=n * embed_dim * 4 + n * 4,
                   bytes_out=n * embed_dim * 4, parallelism=max(1, n)),
            params_read=(table.name,),
            layer=name,
        )

        def backward(grad_out: str) -> Mapping[str, str]:
            gt = self._tensor(f"grad/{name}/table", table.shape)
            self._op(
                f"{name}/UnsortedSegmentSum", "UnsortedSegmentSum",
                [grad_out, ids.tensor], [gt.name],
                OpCost(adds=n * embed_dim,
                       bytes_in=n * embed_dim * 4,
                       bytes_out=n * embed_dim * 4,
                       parallelism=max(1, embed_dim)),
                layer=name,
            )
            self._register_grad(table.name, gt.name)
            return {}

        self._record(name, out.name, backward)
        return Activation(out.name, ids.shape + (embed_dim,))

    # ------------------------------------------------------------------
    # losses and finalization
    # ------------------------------------------------------------------
    def softmax_loss(
        self, logits: Activation, num_classes: int, name: str = "loss"
    ) -> Activation:
        """Sparse softmax cross-entropy producing the initial gradient."""
        if logits.shape[-1] != num_classes:
            raise ShapeError(
                f"logits last dim {logits.shape[-1]} != num_classes {num_classes}"
            )
        batch = logits.shape[0]
        labels = self._tensor(f"{name}/labels", (batch,))
        self.graph.input_bytes += labels.nbytes
        loss = self._tensor(f"{name}/value", (batch,))
        grad0 = self._tensor(f"grad/{name}/logits", logits.shape)
        numel = logits.num_elements
        self._op(
            f"{name}/SparseSoftmaxCrossEntropyWithLogits",
            "SparseSoftmaxCrossEntropyWithLogits",
            [logits.tensor, labels.name],
            [loss.name, grad0.name],
            OpCost(muls=numel, adds=numel, other_flops=4 * numel,
                   bytes_in=numel * 4, bytes_out=numel * 4,
                   parallelism=max(1, batch)),
            layer=name,
        )
        self._seed_loss(logits.tensor, grad0.name)
        return Activation(loss.name, (batch,))

    def sigmoid_loss(self, logits: Activation, name: str = "sigloss") -> Activation:
        """Sigmoid cross-entropy (GAN discriminator / generator losses)."""
        numel = logits.num_elements
        loss = self._tensor(f"{name}/value", (logits.shape[0],))
        grad0 = self._tensor(f"grad/{name}/logits", logits.shape)
        self._op(
            f"{name}/SigmoidCrossEntropy", "Sigmoid",
            [logits.tensor], [loss.name, grad0.name],
            elementwise_cost(numel, flops_per_element=6.0), layer=name,
        )
        self._seed_loss(logits.tensor, grad0.name)
        return Activation(loss.name, (logits.shape[0],))

    def nce_loss(
        self,
        embeddings: Activation,
        vocab_size: int,
        num_sampled: int,
        name: str = "nce",
    ) -> Activation:
        """Noise-contrastive estimation loss (Word2vec skip-gram)."""
        batch, dim = embeddings.shape
        w = self._param(f"{name}/weights", (vocab_size, dim))
        b = self._param(f"{name}/bias", (vocab_size,))
        logits = self._tensor(f"{name}/logits", (batch, num_sampled + 1))
        loss = self._tensor(f"{name}/value", (batch,))
        grad0 = self._tensor(f"grad/{name}/embed", embeddings.shape)
        macs = batch * dim * (num_sampled + 1)
        self._op(
            f"{name}/NceLoss", "NceLoss",
            [embeddings.tensor, w.name, b.name],
            [logits.name, loss.name, grad0.name],
            OpCost(muls=macs, adds=macs,
                   other_flops=batch * (num_sampled + 1) * 4,
                   bytes_in=(batch * dim + (num_sampled + 1) * dim) * 4,
                   bytes_out=batch * (num_sampled + 1) * 4,
                   parallelism=max(1, dim)),
            params_read=(w.name, b.name),
            layer=name,
        )
        gw = self._tensor(f"grad/{name}/weights", w.shape)
        self._op(
            f"{name}/NceGradWeights", "MatMul",
            [embeddings.tensor, logits.name], [gw.name],
            matmul_cost(dim, batch, num_sampled + 1), layer=name,
        )
        self._register_grad(w.name, gw.name)
        self._seed_loss(embeddings.tensor, grad0.name)
        return Activation(loss.name, (batch,))

    def _seed_loss(self, wrt_tensor: str, grad_tensor: str) -> None:
        if wrt_tensor in self._loss_seeds:
            raise GraphError(f"tensor {wrt_tensor!r} already has a loss seed")
        self._loss_seeds[wrt_tensor] = grad_tensor

    def _register_grad(self, param: str, grad_tensor: str) -> None:
        if param in self._param_grads:
            # shared parameter (e.g. tied embeddings): combine gradients
            prev = self._param_grads[param]
            spec = self.graph.tensor(param)
            combined = self._tensor(f"grad/{param}/combined", spec.shape)
            self._op(
                f"{param}/GradAddN_{self._uid}", "AddN",
                [prev, grad_tensor], [combined.name],
                elementwise_cost(spec.num_elements, n_inputs=2, mac=True),
                layer=param,
            )
            self._param_grads[param] = combined.name
        else:
            self._param_grads[param] = grad_tensor

    def finish(self, optimizer: str = "adam") -> Graph:
        """Emit the backward pass + optimizer updates and return the graph."""
        if not self._loss_seeds:
            raise GraphError(
                f"graph {self.graph.name!r} has no loss; call softmax_loss, "
                "sigmoid_loss or nce_loss before finish()"
            )
        grads: Dict[str, str] = dict(self._loss_seeds)

        def deposit(tensor: str, grad_tensor: str) -> None:
            existing = grads.get(tensor)
            if existing is None:
                grads[tensor] = grad_tensor
                return
            if existing == grad_tensor:
                return
            spec = self.graph.tensor(tensor)
            combined = self._tensor(f"grad/{tensor}/sum", spec.shape)
            self._op(
                self._fresh(f"gradsum/{tensor}/AddN"), "AddN",
                [existing, grad_tensor], [combined.name],
                elementwise_cost(spec.num_elements, n_inputs=2, mac=True),
                layer="gradsum",
            )
            grads[tensor] = combined.name

        for record in reversed(self._tape):
            g = grads.get(record.output)
            if g is None:
                continue  # branch not on any loss path
            for tensor, grad_tensor in record.backward(g).items():
                deposit(tensor, grad_tensor)
        self._emit_optimizer(optimizer)
        self.graph.validate()
        return self.graph

    def _emit_optimizer(self, optimizer: str) -> None:
        op_type = "ApplyAdam" if optimizer == "adam" else "ApplyGradientDescent"
        for param, spec in self._params:
            grad_tensor = self._param_grads.get(param)
            if grad_tensor is None:
                continue  # frozen / unused parameter
            updated = self._tensor(f"{param}/updated", spec.shape)
            n = spec.num_elements
            sparse_rows = self._sparse_rows.get(param)
            attrs: Dict[str, object] = {}
            if sparse_rows is not None:
                # sparse optimizer update: only the gathered rows are
                # touched, so the update cost scales with the minibatch's
                # id set, not the full table.
                row_elems = (
                    spec.num_elements // spec.shape[0]
                    if len(spec.shape) > 1 else 1
                )
                n = min(spec.num_elements, sparse_rows * row_elems)
                attrs["sparse_rows"] = sparse_rows
            cost = adam_cost(n) if optimizer == "adam" else elementwise_cost(
                n, n_inputs=2, flops_per_element=2.0, mac=True
            )
            self._op(
                f"{param}/{op_type}",
                op_type,
                [param, grad_tensor],
                [updated.name],
                cost,
                param_written=param,
                layer=param,
                **attrs,
            )

    @property
    def params(self) -> List[Tuple[str, TensorSpec]]:
        return list(self._params)

    def num_parameters(self) -> int:
        """Total trainable parameter count of the model."""
        return sum(spec.num_elements for _, spec in self._params)
