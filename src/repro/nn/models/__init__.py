"""Model zoo: the paper's seven training workloads (section V-C).

Every builder returns a :class:`~repro.nn.graph.Graph` describing one
training step (forward + backward + optimizer) at the paper's default batch
size; :func:`build_model` is the name-based entry point used by experiments
and examples.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ...errors import ReproError
from ..datasets import DEFAULT_BATCH_SIZES
from ..graph import Graph
from .alexnet import build_alexnet
from .dcgan import build_dcgan
from .embedrec import build_embedrec
from .gnn import build_gnn
from .inception import build_inception_v3
from .lstm import build_lstm
from .resnet import build_resnet50
from .transformer import build_transformer
from .vgg import build_vgg19
from .word2vec import build_word2vec

_BUILDERS: Dict[str, Callable[[int], Graph]] = {
    "vgg-19": build_vgg19,
    "alexnet": build_alexnet,
    "dcgan": build_dcgan,
    "resnet-50": build_resnet50,
    "inception-v3": build_inception_v3,
    "lstm": build_lstm,
    "word2vec": build_word2vec,
    "transformer": build_transformer,
    "gnn": build_gnn,
    "embedrec": build_embedrec,
}

#: The five CNN models of the main evaluation (Figures 8-15).
CNN_MODELS = ("vgg-19", "alexnet", "dcgan", "resnet-50", "inception-v3")
#: The non-CNN co-run partners of the mixed-workload study (Figure 16).
NON_CNN_MODELS = ("lstm", "word2vec")
#: Post-paper workload families: transformer attention, GNN message
#: passing, embedding-heavy recommendation.
MODERN_MODELS = ("transformer", "gnn", "embedrec")
ALL_MODELS = CNN_MODELS + NON_CNN_MODELS + MODERN_MODELS

#: Workload family of each model — the granularity at which surrogate
#: calibration transfers (a CNN-trained surrogate says nothing about a
#: transformer's step time).
MODEL_FAMILIES: Dict[str, str] = {
    "vgg-19": "cnn",
    "alexnet": "cnn",
    "dcgan": "cnn",
    "resnet-50": "cnn",
    "inception-v3": "cnn",
    "lstm": "rnn",
    "word2vec": "embedding",
    "transformer": "transformer",
    "gnn": "gnn",
    "embedrec": "embedding",
}


def workload_family(model_name: str) -> Optional[str]:
    """Family of ``model_name``, or ``None`` if unrecognized.

    Understands merged co-run names (``"vgg-19+4xword2vec"``, including
    the surrogate's ``"+*x"`` calibration wildcard): when every component
    maps to a family the result joins the distinct families with ``"+"``;
    any unknown component yields ``None``.
    """
    direct = MODEL_FAMILIES.get(model_name)
    if direct is not None:
        return direct
    if "+" not in model_name:
        return None
    families = []
    for part in model_name.split("+"):
        if "x" in part:
            head, _, tail = part.partition("x")
            if tail and (head == "*" or head.isdigit()):
                part = tail
        family = MODEL_FAMILIES.get(part)
        if family is None:
            return None
        if family not in families:
            families.append(family)
    return "+".join(families)


def available_models() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_BUILDERS)


def build_model(name: str, batch_size: Optional[int] = None) -> Graph:
    """Build one training step of ``name`` at ``batch_size``.

    ``batch_size=None`` selects the paper's default (section V-C).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ReproError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZES[name]
    return builder(batch_size)


__all__ = [
    "ALL_MODELS",
    "CNN_MODELS",
    "MODEL_FAMILIES",
    "MODERN_MODELS",
    "NON_CNN_MODELS",
    "available_models",
    "build_alexnet",
    "build_dcgan",
    "build_embedrec",
    "build_gnn",
    "build_inception_v3",
    "build_lstm",
    "build_model",
    "build_resnet50",
    "build_transformer",
    "build_vgg19",
    "build_word2vec",
    "workload_family",
]
