"""Model zoo: the paper's seven training workloads (section V-C).

Every builder returns a :class:`~repro.nn.graph.Graph` describing one
training step (forward + backward + optimizer) at the paper's default batch
size; :func:`build_model` is the name-based entry point used by experiments
and examples.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ...errors import ReproError
from ..datasets import DEFAULT_BATCH_SIZES
from ..graph import Graph
from .alexnet import build_alexnet
from .dcgan import build_dcgan
from .inception import build_inception_v3
from .lstm import build_lstm
from .resnet import build_resnet50
from .vgg import build_vgg19
from .word2vec import build_word2vec

_BUILDERS: Dict[str, Callable[[int], Graph]] = {
    "vgg-19": build_vgg19,
    "alexnet": build_alexnet,
    "dcgan": build_dcgan,
    "resnet-50": build_resnet50,
    "inception-v3": build_inception_v3,
    "lstm": build_lstm,
    "word2vec": build_word2vec,
}

#: The five CNN models of the main evaluation (Figures 8-15).
CNN_MODELS = ("vgg-19", "alexnet", "dcgan", "resnet-50", "inception-v3")
#: The non-CNN co-run partners of the mixed-workload study (Figure 16).
NON_CNN_MODELS = ("lstm", "word2vec")
ALL_MODELS = CNN_MODELS + NON_CNN_MODELS


def available_models() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(_BUILDERS)


def build_model(name: str, batch_size: Optional[int] = None) -> Graph:
    """Build one training step of ``name`` at ``batch_size``.

    ``batch_size=None`` selects the paper's default (section V-C).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ReproError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZES[name]
    return builder(batch_size)


__all__ = [
    "ALL_MODELS",
    "CNN_MODELS",
    "NON_CNN_MODELS",
    "available_models",
    "build_alexnet",
    "build_dcgan",
    "build_inception_v3",
    "build_lstm",
    "build_model",
    "build_resnet50",
    "build_vgg19",
    "build_word2vec",
]
