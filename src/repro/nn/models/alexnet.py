"""AlexNet training graph (Krizhevsky et al., 2012).

Five convolutional layers (the first with the 11x11 filter the paper uses
as its operation-pipeline example) plus three fully connected layers.
"""

from __future__ import annotations

from ..datasets import IMAGENET
from ..graph import Graph
from ..layers import GraphBuilder


def build_alexnet(batch_size: int = 32) -> Graph:
    """Build one AlexNet training step over ImageNet-shaped inputs."""
    b = GraphBuilder("alexnet", batch_size=batch_size, dataset=IMAGENET.name)
    x = b.input(IMAGENET.batch_shape(batch_size))
    x = b.conv2d(x, 96, (11, 11), stride=(4, 4), padding="VALID", name="conv1")
    x = b.lrn(x, name="lrn1")
    x = b.max_pool(x, (3, 3), (2, 2), name="pool1")
    x = b.conv2d(x, 256, (5, 5), name="conv2")
    x = b.lrn(x, name="lrn2")
    x = b.max_pool(x, (3, 3), (2, 2), name="pool2")
    x = b.conv2d(x, 384, (3, 3), name="conv3")
    x = b.conv2d(x, 384, (3, 3), name="conv4")
    x = b.conv2d(x, 256, (3, 3), name="conv5")
    x = b.max_pool(x, (3, 3), (2, 2), name="pool5")
    x = b.flatten(x)
    x = b.dense(x, 4096, name="fc6")
    x = b.dropout(x, name="drop6")
    x = b.dense(x, 4096, name="fc7")
    x = b.dropout(x, name="drop7")
    x = b.dense(x, IMAGENET.num_classes, activation=None, name="fc8")
    b.softmax_loss(x, IMAGENET.num_classes)
    return b.finish()
