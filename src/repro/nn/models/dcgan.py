"""DCGAN training graph over MNIST (Radford et al., 2015).

One step trains both networks: the generator upsamples a latent code with
two transposed convolutions; the discriminator (two strided convolutions +
dense head) is applied to the real minibatch and to the generated fake
minibatch.  The two discriminator applications give the four Conv2D /
Conv2DBackpropFilter invocations per step the paper's Table I reports, and
the per-application slicing/masking contributes the model's characteristic
population of small Slice and Mul operations.
"""

from __future__ import annotations

from ..datasets import MNIST
from ..graph import Graph
from ..layers import Activation, GraphBuilder

LATENT_DIM = 100


def _discriminator(b: GraphBuilder, x: Activation, tag: str) -> Activation:
    """Two strided conv layers + dense score head.

    The two applications (real / fake) use separate parameter tensors; the
    paper's simulator only consumes per-op costs, which are identical to the
    weight-tied implementation.
    """
    h = b.conv2d(x, 64, (5, 5), stride=(2, 2), activation="lrelu",
                 name=f"d_{tag}_conv1")
    h = b.conv2d(h, 128, (5, 5), stride=(2, 2), activation="lrelu",
                 name=f"d_{tag}_conv2")
    h = b.flatten(h, name=f"d_{tag}_flatten")
    return b.dense(h, 1, activation=None, name=f"d_{tag}_fc")


def build_dcgan(batch_size: int = 64) -> Graph:
    """Build one DCGAN training step (generator + discriminator updates)."""
    b = GraphBuilder("dcgan", batch_size=batch_size, dataset=MNIST.name)

    # generator: latent -> 7x7x128 -> 14x14x64 -> 28x28x1
    z = b.input((batch_size, LATENT_DIM), name="latent")
    g = b.dense(z, 7 * 7 * 128, name="g_fc")
    g = b.reshape(g, (batch_size, 7, 7, 128), name="g_reshape")
    g = b.conv2d_transpose(g, 64, (5, 5), stride=(2, 2), name="g_deconv1")
    fake = b.conv2d_transpose(g, 1, (5, 5), stride=(2, 2),
                              activation="tanh", name="g_deconv2")

    # discriminator on the real minibatch
    real = b.input(MNIST.batch_shape(batch_size), name="real_images")
    d_real = _discriminator(b, real, "real")
    b.sigmoid_loss(d_real, name="d_real_loss")

    # discriminator on the generated minibatch (gradients flow into G)
    d_fake = _discriminator(b, fake, "fake")
    b.sigmoid_loss(d_fake, name="d_fake_loss")

    # the TF implementation's per-batch bookkeeping: minibatch-statistic
    # slices over the score tensors plus small element-wise multiplies —
    # the population of Slice and Mul operations Table I reports for DCGAN
    chunk = batch_size // 4
    for tag, scores in (("real", d_real), ("fake", d_fake)):
        parts = [
            b.slice_batch(scores, i * chunk, chunk, name=f"stat_{tag}_{i}")
            for i in range(4)
        ]
        m = b.multiply(parts[0], parts[1], name=f"stat_{tag}_m0")
        m2 = b.multiply(parts[2], parts[3], name=f"stat_{tag}_m1")
        b.multiply(m, m2, name=f"stat_{tag}_m2")
    mask = b.multiply(d_real, d_real, name="d_real_mask")
    b.multiply(mask, mask, name="d_real_scale")
    return b.finish()
