"""Embedding-heavy click-through recommender (DLRM-style, Naumov et al., 2019).

Extends word2vec's sparse path to the memory-bound extreme: eight large
embedding tables gathered with multi-hot id lists (GatherV2), sparse
ApplyAdam updates that touch only the gathered rows, a small bottom MLP
over dense features, and a top MLP over the concatenated representation.
Step time is dominated by irregular table traffic — the case where
fixed-function PIM should shine.
"""

from __future__ import annotations

from ..datasets import CRITEO
from ..graph import Graph
from ..layers import GraphBuilder

DENSE_FEATURES = CRITEO.sample_shape[0]
NUM_TABLES = 8
TABLE_ROWS = 200_000
EMBED_DIM = 64
#: Multi-hot ids gathered per table per sample.
IDS_PER_SAMPLE = 4
BOTTOM_MLP = (64, 64)
TOP_MLP = (512, 256)


def build_embedrec(batch_size: int = 256) -> Graph:
    """Build one recommender training step over ``batch_size`` samples."""
    b = GraphBuilder("embedrec", batch_size=batch_size, dataset=CRITEO.name)

    dense_in = b.input((batch_size, DENSE_FEATURES), name="dense_features")
    bottom = dense_in
    for i, units in enumerate(BOTTOM_MLP):
        bottom = b.dense(bottom, units, activation="relu", name=f"bottom{i}")

    ids_per_table = batch_size * IDS_PER_SAMPLE
    features = [bottom]
    for t in range(NUM_TABLES):
        ids = b.input((ids_per_table,), name=f"table{t}_ids")
        rows = b.embedding_lookup(
            TABLE_ROWS, EMBED_DIM, ids, name=f"table{t}", sparse_update=True
        )
        pooled = b.reshape(
            rows, (batch_size, IDS_PER_SAMPLE * EMBED_DIM), name=f"table{t}/pool"
        )
        features.append(pooled)

    interact = b.concat(features, name="interact")
    top = interact
    for i, units in enumerate(TOP_MLP):
        top = b.dense(top, units, activation="relu", name=f"top{i}")
    logits = b.dense(top, 1, activation=None, name="click_logit")
    b.sigmoid_loss(logits, name="loss")
    return b.finish()
