"""GraphSAGE-style GNN over a fixed sampled subgraph (Hamilton et al., 2017).

Node classification on an ogbn-arxiv-sized citation graph: each training
step runs message passing over a fixed minibatch subgraph — gather source
node states along edges (GatherV2), sum messages into destinations
(UnsortedSegmentSum), concatenate with the self state and apply a dense
update — then classifies the seed nodes.  The gather/scatter pair is the
irregular-access pattern that separates prog-PIM from fixed-PIM placement.
"""

from __future__ import annotations

from ..datasets import OGBN_ARXIV
from ..graph import Graph
from ..layers import Activation, GraphBuilder

FEATURE_DIM = OGBN_ARXIV.sample_shape[0]
HIDDEN_DIM = 256
NUM_LAYERS = 2
#: Subgraph nodes per seed node (2-hop neighbourhood sample).
FANOUT_NODES = 4
#: Average sampled degree — edges per subgraph node.
AVG_DEGREE = 10


def _sage_layer(
    b: GraphBuilder,
    h: Activation,
    src_ids: Activation,
    dst_ids: Activation,
    num_nodes: int,
    units: int,
    name: str,
) -> Activation:
    """Aggregate neighbour messages and update: SAGE-mean style."""
    messages = b.gather(h, src_ids, name=f"{name}/gather_src")
    aggregated = b.segment_sum(
        messages, dst_ids, num_nodes, name=f"{name}/aggregate"
    )
    combined = b.concat([h, aggregated], name=f"{name}/combine")
    return b.dense(combined, units, activation="relu", name=f"{name}/update")


def build_gnn(batch_size: int = 1024) -> Graph:
    """Build one training step over ``batch_size`` seed nodes."""
    b = GraphBuilder("gnn", batch_size=batch_size, dataset=OGBN_ARXIV.name)
    num_nodes = batch_size * FANOUT_NODES
    num_edges = num_nodes * AVG_DEGREE

    h = b.input((num_nodes, FEATURE_DIM), name="node_features")
    src_ids = b.input((num_edges,), name="edge_src")
    dst_ids = b.input((num_edges,), name="edge_dst")

    units = HIDDEN_DIM
    for layer in range(NUM_LAYERS):
        h = _sage_layer(
            b, h, src_ids, dst_ids, num_nodes, units, name=f"sage{layer}"
        )
    seeds = b.slice_batch(h, 0, batch_size, name="seed_nodes")
    logits = b.dense(
        seeds, OGBN_ARXIV.num_classes, activation=None, name="classifier"
    )
    b.softmax_loss(logits, OGBN_ARXIV.num_classes, name="loss")
    return b.finish()
