"""Inception-v3 training graph (Szegedy et al., 2016).

Stem + 3x Inception-A + reduction-A + 4x Inception-B + reduction-B +
2x Inception-C modules over 299x299 inputs, with batch normalization after
every convolution.  Branches concatenate along channels, so the backward
pass produces the Slice populations characteristic of branched models.
"""

from __future__ import annotations

from typing import Tuple

from ..datasets import IMAGENET_299
from ..graph import Graph
from ..layers import Activation, GraphBuilder


def _conv_bn(
    b: GraphBuilder,
    x: Activation,
    filters: int,
    kernel: Tuple[int, int],
    stride: Tuple[int, int] = (1, 1),
    padding: str = "SAME",
    name: str = "conv",
) -> Activation:
    h = b.conv2d(x, filters, kernel, stride=stride, padding=padding,
                 activation=None, use_bias=False, name=name)
    h = b.batch_norm(h, name=f"{name}/bn")
    return b.relu(h, name=f"{name}/relu")


def _inception_a(b: GraphBuilder, x: Activation, pool_ch: int, name: str) -> Activation:
    b1 = _conv_bn(b, x, 64, (1, 1), name=f"{name}/b1x1")
    b2 = _conv_bn(b, x, 48, (1, 1), name=f"{name}/b5x5_1")
    b2 = _conv_bn(b, b2, 64, (5, 5), name=f"{name}/b5x5_2")
    b3 = _conv_bn(b, x, 64, (1, 1), name=f"{name}/b3x3_1")
    b3 = _conv_bn(b, b3, 96, (3, 3), name=f"{name}/b3x3_2")
    b3 = _conv_bn(b, b3, 96, (3, 3), name=f"{name}/b3x3_3")
    b4 = b.avg_pool(x, (3, 3), (1, 1), padding="SAME", name=f"{name}/pool")
    b4 = _conv_bn(b, b4, pool_ch, (1, 1), name=f"{name}/bpool")
    return b.concat([b1, b2, b3, b4], name=f"{name}/concat")


def _reduction_a(b: GraphBuilder, x: Activation, name: str) -> Activation:
    b1 = _conv_bn(b, x, 384, (3, 3), stride=(2, 2), padding="VALID",
                  name=f"{name}/b3x3")
    b2 = _conv_bn(b, x, 64, (1, 1), name=f"{name}/b3x3dbl_1")
    b2 = _conv_bn(b, b2, 96, (3, 3), name=f"{name}/b3x3dbl_2")
    b2 = _conv_bn(b, b2, 96, (3, 3), stride=(2, 2), padding="VALID",
                  name=f"{name}/b3x3dbl_3")
    b3 = b.max_pool(x, (3, 3), (2, 2), padding="VALID", name=f"{name}/pool")
    return b.concat([b1, b2, b3], name=f"{name}/concat")


def _inception_b(b: GraphBuilder, x: Activation, mid: int, name: str) -> Activation:
    b1 = _conv_bn(b, x, 192, (1, 1), name=f"{name}/b1x1")
    b2 = _conv_bn(b, x, mid, (1, 1), name=f"{name}/b7x7_1")
    b2 = _conv_bn(b, b2, mid, (1, 7), name=f"{name}/b7x7_2")
    b2 = _conv_bn(b, b2, 192, (7, 1), name=f"{name}/b7x7_3")
    b3 = _conv_bn(b, x, mid, (1, 1), name=f"{name}/b7x7dbl_1")
    b3 = _conv_bn(b, b3, mid, (7, 1), name=f"{name}/b7x7dbl_2")
    b3 = _conv_bn(b, b3, mid, (1, 7), name=f"{name}/b7x7dbl_3")
    b3 = _conv_bn(b, b3, mid, (7, 1), name=f"{name}/b7x7dbl_4")
    b3 = _conv_bn(b, b3, 192, (1, 7), name=f"{name}/b7x7dbl_5")
    b4 = b.avg_pool(x, (3, 3), (1, 1), padding="SAME", name=f"{name}/pool")
    b4 = _conv_bn(b, b4, 192, (1, 1), name=f"{name}/bpool")
    return b.concat([b1, b2, b3, b4], name=f"{name}/concat")


def _reduction_b(b: GraphBuilder, x: Activation, name: str) -> Activation:
    b1 = _conv_bn(b, x, 192, (1, 1), name=f"{name}/b3x3_1")
    b1 = _conv_bn(b, b1, 320, (3, 3), stride=(2, 2), padding="VALID",
                  name=f"{name}/b3x3_2")
    b2 = _conv_bn(b, x, 192, (1, 1), name=f"{name}/b7x7x3_1")
    b2 = _conv_bn(b, b2, 192, (1, 7), name=f"{name}/b7x7x3_2")
    b2 = _conv_bn(b, b2, 192, (7, 1), name=f"{name}/b7x7x3_3")
    b2 = _conv_bn(b, b2, 192, (3, 3), stride=(2, 2), padding="VALID",
                  name=f"{name}/b7x7x3_4")
    b3 = b.max_pool(x, (3, 3), (2, 2), padding="VALID", name=f"{name}/pool")
    return b.concat([b1, b2, b3], name=f"{name}/concat")


def _inception_c(b: GraphBuilder, x: Activation, name: str) -> Activation:
    b1 = _conv_bn(b, x, 320, (1, 1), name=f"{name}/b1x1")
    b2 = _conv_bn(b, x, 384, (1, 1), name=f"{name}/b3x3_1")
    b2a = _conv_bn(b, b2, 384, (1, 3), name=f"{name}/b3x3_2a")
    b2b = _conv_bn(b, b2, 384, (3, 1), name=f"{name}/b3x3_2b")
    b3 = _conv_bn(b, x, 448, (1, 1), name=f"{name}/b3x3dbl_1")
    b3 = _conv_bn(b, b3, 384, (3, 3), name=f"{name}/b3x3dbl_2")
    b3a = _conv_bn(b, b3, 384, (1, 3), name=f"{name}/b3x3dbl_3a")
    b3b = _conv_bn(b, b3, 384, (3, 1), name=f"{name}/b3x3dbl_3b")
    b4 = b.avg_pool(x, (3, 3), (1, 1), padding="SAME", name=f"{name}/pool")
    b4 = _conv_bn(b, b4, 192, (1, 1), name=f"{name}/bpool")
    return b.concat([b1, b2a, b2b, b3a, b3b, b4], name=f"{name}/concat")


def build_inception_v3(batch_size: int = 32) -> Graph:
    """Build one Inception-v3 training step over 299x299 inputs."""
    b = GraphBuilder(
        "inception-v3", batch_size=batch_size, dataset=IMAGENET_299.name
    )
    x = b.input(IMAGENET_299.batch_shape(batch_size))
    # stem
    x = _conv_bn(b, x, 32, (3, 3), stride=(2, 2), padding="VALID", name="stem1")
    x = _conv_bn(b, x, 32, (3, 3), padding="VALID", name="stem2")
    x = _conv_bn(b, x, 64, (3, 3), name="stem3")
    x = b.max_pool(x, (3, 3), (2, 2), padding="VALID", name="stem_pool1")
    x = _conv_bn(b, x, 80, (1, 1), name="stem4")
    x = _conv_bn(b, x, 192, (3, 3), padding="VALID", name="stem5")
    x = b.max_pool(x, (3, 3), (2, 2), padding="VALID", name="stem_pool2")
    # inception stacks
    for i, pool_ch in enumerate((32, 64, 64)):
        x = _inception_a(b, x, pool_ch, name=f"mixed_a{i}")
    x = _reduction_a(b, x, name="reduction_a")
    for i, mid in enumerate((128, 160, 160, 192)):
        x = _inception_b(b, x, mid, name=f"mixed_b{i}")
    x = _reduction_b(b, x, name="reduction_b")
    for i in range(2):
        x = _inception_c(b, x, name=f"mixed_c{i}")
    x = b.avg_pool(x, (x.shape[1], x.shape[2]), (1, 1), name="global_pool")
    x = b.flatten(x)
    x = b.dropout(x, name="dropout")
    x = b.dense(x, IMAGENET_299.num_classes, activation=None, name="logits")
    b.softmax_loss(x, IMAGENET_299.num_classes)
    return b.finish()
