"""Two-layer LSTM language model over Penn Tree Bank (Zaremba et al., 2014).

The paper evaluates this model (with dropout) in the mixed-workload study
(section VI-F): it is dominated by moderate MatMuls and element-wise gate
operations — exactly the non-CNN profile that co-runs well on the CPU and
the programmable PIM while a CNN occupies the fixed-function PIMs.
"""

from __future__ import annotations

from ..datasets import PTB
from ..graph import Graph
from ..layers import Activation, GraphBuilder

HIDDEN = 650
NUM_LAYERS = 2
#: Truncated-backpropagation length; kept moderate so the graph stays
#: simulation-friendly while preserving the op mix.
SEQ_LEN = 12


def _lstm_cell(
    b: GraphBuilder,
    x: Activation,
    h: Activation,
    c: Activation,
    name: str,
    param_scope: str,
) -> tuple:
    """One LSTM cell step: fused gate MatMul + gate nonlinearities.

    ``param_scope`` ties the gate weights across timesteps of one layer.
    """
    hidden = h.shape[-1]
    xh = b.concat([x, h], name=f"{name}/xh")
    gates = b.dense(xh, 4 * hidden, activation=None, name=f"{name}/gates",
                    param_scope=param_scope)
    i = b.slice_channels(gates, 0, hidden, name=f"{name}/gate_i")
    f = b.slice_channels(gates, hidden, hidden, name=f"{name}/gate_f")
    g = b.slice_channels(gates, 2 * hidden, hidden, name=f"{name}/gate_g")
    o = b.slice_channels(gates, 3 * hidden, hidden, name=f"{name}/gate_o")
    i = b.activation(i, "sigmoid", name=f"{name}/sig_i")
    f = b.activation(f, "sigmoid", name=f"{name}/sig_f")
    o = b.activation(o, "sigmoid", name=f"{name}/sig_o")
    g = b.activation(g, "tanh", name=f"{name}/tanh_g")
    fc = b.multiply(f, c, name=f"{name}/f_c")
    ig = b.multiply(i, g, name=f"{name}/i_g")
    c_new = b.add(fc, ig, name=f"{name}/c_new")
    c_act = b.activation(c_new, "tanh", name=f"{name}/tanh_c")
    h_new = b.multiply(o, c_act, name=f"{name}/h_new")
    return h_new, c_new


def build_lstm(batch_size: int = 20, seq_len: int = SEQ_LEN) -> Graph:
    """Build one training step of the PTB LSTM with dropout."""
    b = GraphBuilder("lstm", batch_size=batch_size, dataset=PTB.name)
    vocab = PTB.vocab_size
    ids = b.input((batch_size, seq_len), name="token_ids")
    embedded = b.embedding_lookup(vocab, HIDDEN, ids, name="embedding")

    # initial hidden/cell states are external (stateful training)
    states = []
    for layer in range(NUM_LAYERS):
        h0 = b.input((batch_size, HIDDEN), name=f"h0_l{layer}")
        c0 = b.input((batch_size, HIDDEN), name=f"c0_l{layer}")
        states.append((h0, c0))

    for t in range(seq_len):
        x = b.slice_channels(
            b.reshape(embedded, (batch_size, seq_len * HIDDEN),
                      name=f"t{t}/flatten_embed"),
            t * HIDDEN, HIDDEN, name=f"t{t}/embed_slice",
        )
        for layer in range(NUM_LAYERS):
            h, c = states[layer]
            h_new, c_new = _lstm_cell(
                b, x, h, c, name=f"t{t}/l{layer}", param_scope=f"lstm_l{layer}"
            )
            if layer == NUM_LAYERS - 1:
                h_new = b.dropout(h_new, name=f"t{t}/l{layer}/dropout")
            states[layer] = (h_new, c_new)
            x = h_new
        logits = b.dense(x, vocab, activation=None, name=f"t{t}/proj",
                         param_scope="proj")
        b.softmax_loss(logits, vocab, name=f"t{t}/loss")
    return b.finish()
