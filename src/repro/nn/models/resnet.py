"""ResNet-50 training graph (He et al., 2016).

Bottleneck residual blocks (1x1 -> 3x3 -> 1x1 convolutions, each followed by
batch normalization) in the standard [3, 4, 6, 3] stage layout, trained with
the paper's batch size of 128 — the largest working set in the evaluation,
which is why the paper finds Hetero PIM *faster* than the GPU on this model.
"""

from __future__ import annotations

from ..datasets import IMAGENET
from ..graph import Graph
from ..layers import Activation, GraphBuilder

#: (blocks, base_channels) per stage; bottleneck output is 4x base.
RESNET50_STAGES = ((3, 64), (4, 128), (6, 256), (3, 512))


def _bottleneck(
    b: GraphBuilder,
    x: Activation,
    base: int,
    stride: int,
    name: str,
) -> Activation:
    """One bottleneck residual block with projection shortcut when needed."""
    out_channels = 4 * base
    shortcut = x
    if stride != 1 or x.shape[-1] != out_channels:
        shortcut = b.conv2d(
            x, out_channels, (1, 1), stride=(stride, stride),
            activation=None, use_bias=False, name=f"{name}/shortcut",
        )
        shortcut = b.batch_norm(shortcut, name=f"{name}/shortcut_bn")
    h = b.conv2d(x, base, (1, 1), stride=(stride, stride),
                 activation=None, use_bias=False, name=f"{name}/conv1")
    h = b.batch_norm(h, name=f"{name}/bn1")
    h = b.relu(h, name=f"{name}/relu1")
    h = b.conv2d(h, base, (3, 3), activation=None, use_bias=False,
                 name=f"{name}/conv2")
    h = b.batch_norm(h, name=f"{name}/bn2")
    h = b.relu(h, name=f"{name}/relu2")
    h = b.conv2d(h, out_channels, (1, 1), activation=None, use_bias=False,
                 name=f"{name}/conv3")
    h = b.batch_norm(h, name=f"{name}/bn3")
    h = b.add(h, shortcut, name=f"{name}/residual")
    return b.relu(h, name=f"{name}/relu_out")


def build_resnet50(batch_size: int = 128) -> Graph:
    """Build one ResNet-50 training step over ImageNet-shaped inputs."""
    b = GraphBuilder("resnet-50", batch_size=batch_size, dataset=IMAGENET.name)
    x = b.input(IMAGENET.batch_shape(batch_size))
    x = b.conv2d(x, 64, (7, 7), stride=(2, 2), activation=None,
                 use_bias=False, name="conv1")
    x = b.batch_norm(x, name="bn1")
    x = b.relu(x, name="relu1")
    x = b.max_pool(x, (3, 3), (2, 2), padding="SAME", name="pool1")
    for stage_idx, (blocks, base) in enumerate(RESNET50_STAGES, start=2):
        for block_idx in range(blocks):
            stride = 2 if (block_idx == 0 and stage_idx > 2) else 1
            x = _bottleneck(
                b, x, base, stride, name=f"stage{stage_idx}/block{block_idx}"
            )
    x = b.avg_pool(x, (x.shape[1], x.shape[2]), (1, 1), name="global_pool")
    x = b.flatten(x)
    x = b.dense(x, IMAGENET.num_classes, activation=None, name="fc")
    b.softmax_loss(x, IMAGENET.num_classes)
    return b.finish()
