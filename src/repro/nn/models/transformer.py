"""Transformer encoder block (Vaswani et al., 2017) for language modelling.

A small encoder over WikiText-2-sized vocabulary: token embedding, two
encoder layers (multi-head scaled-dot-product attention + position-wise
FFN, each with residual + LayerNorm and dropout), and a tied-size output
projection.  Attention is expressed with the BatchMatMul / Softmax /
Dropout op vocabulary so the profiler sees the modern kernel mix the
2018-era CNN set lacks.
"""

from __future__ import annotations

from ..datasets import WIKITEXT2
from ..graph import Graph
from ..layers import Activation, GraphBuilder

SEQ_LEN = WIKITEXT2.sample_shape[0]
D_MODEL = 512
NUM_HEADS = 8
HEAD_DIM = D_MODEL // NUM_HEADS
FFN_DIM = 2048
NUM_LAYERS = 2


def _encoder_layer(
    b: GraphBuilder, x: Activation, batch_size: int, name: str
) -> Activation:
    """One encoder layer over tokens flattened to ``(B*S, D_MODEL)``."""
    tokens = batch_size * SEQ_LEN
    heads = batch_size * NUM_HEADS

    q = b.dense(x, D_MODEL, activation=None, name=f"{name}/q")
    k = b.dense(x, D_MODEL, activation=None, name=f"{name}/k")
    v = b.dense(x, D_MODEL, activation=None, name=f"{name}/v")
    qh = b.reshape(q, (heads, SEQ_LEN, HEAD_DIM), name=f"{name}/q_heads")
    kh = b.reshape(k, (heads, SEQ_LEN, HEAD_DIM), name=f"{name}/k_heads")
    vh = b.reshape(v, (heads, SEQ_LEN, HEAD_DIM), name=f"{name}/v_heads")

    scores = b.batch_matmul(qh, kh, transpose_b=True, name=f"{name}/scores")
    weights = b.softmax(scores, name=f"{name}/attn")
    weights = b.dropout(weights, name=f"{name}/attn_drop")
    context = b.batch_matmul(weights, vh, name=f"{name}/context")
    context2d = b.reshape(context, (tokens, D_MODEL), name=f"{name}/merge")
    attn_out = b.dense(context2d, D_MODEL, activation=None, name=f"{name}/proj")
    attn_out = b.dropout(attn_out, name=f"{name}/proj_drop")
    x = b.add(x, attn_out, name=f"{name}/res1")
    x = b.layer_norm(x, name=f"{name}/ln1")

    h = b.dense(x, FFN_DIM, activation="relu", name=f"{name}/ffn1")
    h = b.dense(h, D_MODEL, activation=None, name=f"{name}/ffn2")
    h = b.dropout(h, name=f"{name}/ffn_drop")
    x = b.add(x, h, name=f"{name}/res2")
    return b.layer_norm(x, name=f"{name}/ln2")


def build_transformer(batch_size: int = 16) -> Graph:
    """Build one encoder training step over ``batch_size`` sequences."""
    b = GraphBuilder(
        "transformer", batch_size=batch_size, dataset=WIKITEXT2.name
    )
    tokens = batch_size * SEQ_LEN
    token_ids = b.input((batch_size, SEQ_LEN), name="token_ids")
    embedded = b.embedding_lookup(
        WIKITEXT2.vocab_size, D_MODEL, token_ids, name="embedding"
    )
    x = b.reshape(embedded, (tokens, D_MODEL), name="flatten_tokens")
    for layer in range(NUM_LAYERS):
        x = _encoder_layer(b, x, batch_size, name=f"layer{layer}")
    logits = b.dense(
        x, WIKITEXT2.vocab_size, activation=None, use_bias=False, name="lm_head"
    )
    b.softmax_loss(logits, WIKITEXT2.vocab_size, name="loss")
    return b.finish()
