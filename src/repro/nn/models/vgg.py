"""VGG-19 training graph (Simonyan & Zisserman, 2014).

16 convolutional layers in five blocks separated by max-pooling, followed by
three fully connected layers — 138M additional parameters make it the
heaviest per-step workload among the paper's CNN models.
"""

from __future__ import annotations

from ..datasets import IMAGENET
from ..graph import Graph
from ..layers import GraphBuilder

#: Channel plan: integers are 3x3 conv layers, "M" is a 2x2 max pool.
VGG19_PLAN = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, 256, "M",
    512, 512, 512, 512, "M",
    512, 512, 512, 512, "M",
)


def build_vgg19(batch_size: int = 32) -> Graph:
    """Build one VGG-19 training step over ImageNet-shaped inputs."""
    b = GraphBuilder("vgg-19", batch_size=batch_size, dataset=IMAGENET.name)
    x = b.input(IMAGENET.batch_shape(batch_size))
    block, conv_in_block = 1, 0
    for entry in VGG19_PLAN:
        if entry == "M":
            x = b.max_pool(x, name=f"pool{block}")
            block += 1
            conv_in_block = 0
        else:
            conv_in_block += 1
            x = b.conv2d(
                x, int(entry), (3, 3), name=f"conv{block}_{conv_in_block}"
            )
    x = b.flatten(x)
    x = b.dense(x, 4096, name="fc6")
    x = b.dropout(x, name="drop6")
    x = b.dense(x, 4096, name="fc7")
    x = b.dropout(x, name="drop7")
    x = b.dense(x, IMAGENET.num_classes, activation=None, name="fc8")
    b.softmax_loss(x, IMAGENET.num_classes)
    return b.finish()
