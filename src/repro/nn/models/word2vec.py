"""Word2vec skip-gram with NCE loss (Mikolov et al., 2013).

Evaluated in the paper's mixed-workload study (section VI-F) over the
TensorFlow "questions-words" dataset: a tiny graph dominated by embedding
gathers and a sampled-softmax MatMul — the canonical small, CPU-friendly
co-run partner.
"""

from __future__ import annotations

from ..datasets import QUESTIONS_WORDS
from ..graph import Graph
from ..layers import GraphBuilder

EMBED_DIM = 200
NUM_SAMPLED = 64


def build_word2vec(batch_size: int = 128) -> Graph:
    """Build one skip-gram training step."""
    b = GraphBuilder(
        "word2vec", batch_size=batch_size, dataset=QUESTIONS_WORDS.name
    )
    center_ids = b.input((batch_size,), name="center_ids")
    embedded = b.embedding_lookup(
        QUESTIONS_WORDS.vocab_size, EMBED_DIM, center_ids, name="embedding"
    )
    b.nce_loss(embedded, QUESTIONS_WORDS.vocab_size, NUM_SAMPLED, name="nce")
    return b.finish()
