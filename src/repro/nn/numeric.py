"""Numeric execution of op graphs and gradient verification.

The simulator consumes graphs as cost structures; this module executes the
*same* graphs on real numpy arrays, giving the substrate a semantic ground
truth: :func:`check_gradients` runs a builder-produced training graph
(forward + backward operations) numerically and verifies the backward
operations against finite differences of the loss — proving the tape-based
backward construction in :mod:`repro.nn.layers` computes correct
gradients, not merely correctly-shaped cost records.

Supported operation subset: the dense/conv/pool/elementwise/slicing
vocabulary the builder emits for feed-forward and recurrent-cell networks
(embedding gathers and the GAN loss variants are out of scope; see
``SUPPORTED_OPS``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ReproError
from .graph import Graph
from .ops import Op


class NumericExecutionError(ReproError):
    """Raised when a graph contains operations the executor cannot run."""


# ---------------------------------------------------------------------------
# padding / windowing helpers (TensorFlow conventions, NHWC)
# ---------------------------------------------------------------------------
def _same_padding(size: int, kernel: int, stride: int) -> Tuple[int, int]:
    out = -(-size // stride)
    total = max((out - 1) * stride + kernel - size, 0)
    return total // 2, total - total // 2


def _pad_input(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: str
) -> Tuple[np.ndarray, Tuple[int, int], Tuple[int, int]]:
    """Returns (padded x, output hw, top-left pad)."""
    _n, h, w, _c = x.shape
    kh, kw = kernel
    sh, sw = stride
    if padding == "SAME":
        ph0, ph1 = _same_padding(h, kh, sh)
        pw0, pw1 = _same_padding(w, kw, sw)
        xp = np.pad(x, ((0, 0), (ph0, ph1), (pw0, pw1), (0, 0)))
        ho, wo = -(-h // sh), -(-w // sw)
        return xp, (ho, wo), (ph0, pw0)
    if padding == "VALID":
        ho, wo = (h - kh) // sh + 1, (w - kw) // sw + 1
        return x, (ho, wo), (0, 0)
    raise NumericExecutionError(f"unknown padding {padding!r}")


def _conv2d(x, w, stride, padding):
    kh, kw = w.shape[0], w.shape[1]
    sh, sw = stride
    xp, (ho, wo), _ = _pad_input(x, (kh, kw), stride, padding)
    out = np.zeros((x.shape[0], ho, wo, w.shape[3]), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            window = xp[:, i : i + ho * sh : sh, j : j + wo * sw : sw, :]
            out += np.einsum("nhwc,cf->nhwf", window, w[i, j])
    return out


def _conv2d_backprop_filter(x, grad, kernel, stride, padding):
    kh, kw = kernel
    sh, sw = stride
    xp, (ho, wo), _ = _pad_input(x, kernel, stride, padding)
    dw = np.zeros((kh, kw, x.shape[3], grad.shape[3]), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            window = xp[:, i : i + ho * sh : sh, j : j + wo * sw : sw, :]
            dw[i, j] = np.einsum("nhwc,nhwf->cf", window, grad)
    return dw


def _conv2d_backprop_input(grad, w, stride, padding, input_shape):
    kh, kw = w.shape[0], w.shape[1]
    sh, sw = stride
    ref = np.zeros(input_shape, dtype=grad.dtype)
    xp, (ho, wo), (ph0, pw0) = _pad_input(ref, (kh, kw), stride, padding)
    dxp = np.zeros_like(xp)
    for i in range(kh):
        for j in range(kw):
            dxp[:, i : i + ho * sh : sh, j : j + wo * sw : sw, :] += np.einsum(
                "nhwf,cf->nhwc", grad, w[i, j]
            )
    _n, h, wdt, _c = input_shape
    return dxp[:, ph0 : ph0 + h, pw0 : pw0 + wdt, :]


def _max_pool(x, kernel, stride, padding):
    kh, kw = kernel
    sh, sw = stride
    xp, (ho, wo), _ = _pad_input(x, kernel, stride, padding)
    if padding == "SAME":
        # padded cells must never win the max
        mask = np.pad(
            np.ones(x.shape, dtype=bool),
            [(0, 0)] + [
                (p, q) for (p, q) in zip(
                    ((xp.shape[1] - x.shape[1]) // 2,
                     (xp.shape[2] - x.shape[2]) // 2),
                    (xp.shape[1] - x.shape[1] - (xp.shape[1] - x.shape[1]) // 2,
                     xp.shape[2] - x.shape[2] - (xp.shape[2] - x.shape[2]) // 2),
                )
            ] + [(0, 0)],
        )
        xp = np.where(mask, xp, -np.inf)
    out = np.full((x.shape[0], ho, wo, x.shape[3]), -np.inf, dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            window = xp[:, i : i + ho * sh : sh, j : j + wo * sw : sw, :]
            out = np.maximum(out, window)
    return out


def _max_pool_grad(x, y, grad, kernel, stride, padding):
    kh, kw = kernel
    sh, sw = stride
    xp, (ho, wo), (ph0, pw0) = _pad_input(x, kernel, stride, padding)
    dxp = np.zeros_like(xp)
    claimed = np.zeros_like(y, dtype=bool)  # route ties to one window cell
    for i in range(kh):
        for j in range(kw):
            window = xp[:, i : i + ho * sh : sh, j : j + wo * sw : sw, :]
            winner = (window == y) & ~claimed
            claimed |= winner
            dxp[:, i : i + ho * sh : sh, j : j + wo * sw : sw, :] += (
                grad * winner
            )
    _n, h, w, _c = x.shape
    return dxp[:, ph0 : ph0 + h, pw0 : pw0 + w, :]


def _softmax(logits):
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


#: Operation types the executor understands.
SUPPORTED_OPS = frozenset(
    {
        "Conv2D", "Conv2DBackpropFilter", "Conv2DBackpropInput",
        "MatMul", "BiasAdd", "BiasAddGrad",
        "Relu", "ReluGrad", "Sigmoid", "SigmoidGrad", "Tanh", "TanhGrad",
        "MaxPool", "MaxPoolGrad",
        "Add", "AddN", "Mul", "Sub",
        "Reshape", "ConcatV2", "Slice", "Pad",
        "Dropout", "DropoutGrad",
        "SparseSoftmaxCrossEntropyWithLogits",
        "ApplyAdam", "ApplyGradientDescent",
    }
)

#: Adam hyperparameters used by the numeric optimizer step.
ADAM_LR = 1e-3
ADAM_BETA1 = 0.9
ADAM_BETA2 = 0.999
ADAM_EPS = 1e-8


class NumericExecutor:
    """Executes a builder graph on numpy arrays in topological order."""

    def __init__(self, graph: Graph):
        self.graph = graph
        unsupported = sorted(
            {op.op_type for op in graph.ops} - SUPPORTED_OPS
        )
        if unsupported:
            raise NumericExecutionError(
                f"graph {graph.name!r} uses unsupported op types: "
                f"{unsupported}"
            )

    # ------------------------------------------------------------------
    def run(self, feeds: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Evaluate every tensor given external ``feeds`` (inputs + params).

        Returns the full tensor environment, including gradients.
        """
        values: Dict[str, np.ndarray] = {
            name: np.asarray(v, dtype=np.float64) for name, v in feeds.items()
        }
        for op in self.graph.topological_order():
            self._execute(op, values)
        return values

    def loss(self, values: Mapping[str, np.ndarray]) -> float:
        """Mean loss over every loss tensor in the environment."""
        losses = [
            values[op.outputs[0]]
            for op in self.graph.ops
            if op.op_type == "SparseSoftmaxCrossEntropyWithLogits"
        ]
        if not losses:
            raise NumericExecutionError("graph has no loss operation")
        return float(np.mean([np.mean(loss) for loss in losses]))

    # ------------------------------------------------------------------
    def _execute(self, op: Op, env: Dict[str, np.ndarray]) -> None:
        missing = [t for t in op.inputs if t not in env]
        if missing:
            raise NumericExecutionError(
                f"op {op.name!r} missing input values: {missing} "
                "(feed all external inputs and parameters)"
            )
        args = [env[t] for t in op.inputs]
        out = self._dispatch(op, args, env)
        if isinstance(out, tuple):
            for name, value in zip(op.outputs, out):
                env[name] = value
        else:
            env[op.outputs[0]] = out

    def _dispatch(self, op: Op, args: List[np.ndarray], env):
        t = op.op_type
        a = op.attrs
        if t == "Conv2D":
            return _conv2d(args[0], args[1], tuple(a["stride"]), str(a["padding"]))
        if t == "Conv2DBackpropFilter":
            return _conv2d_backprop_filter(
                args[0], args[1], tuple(a["kernel"]), tuple(a["stride"]),
                str(a["padding"]),
            )
        if t == "Conv2DBackpropInput":
            return _conv2d_backprop_input(
                args[0], args[1], tuple(a["stride"]), str(a["padding"]),
                tuple(a["input_shape"]),
            )
        if t == "MatMul":
            x, y = args
            if a.get("transpose_a"):
                x = x.T
            if a.get("transpose_b"):
                y = y.T
            return x @ y
        if t == "BiasAdd":
            return args[0] + args[1]
        if t == "BiasAddGrad":
            g = args[0]
            return g.reshape(-1, g.shape[-1]).sum(axis=0)
        if t == "Relu":
            return np.maximum(args[0], 0.0)
        if t == "ReluGrad":
            g, y = args
            return g * (y > 0)
        if t == "Sigmoid":
            return 1.0 / (1.0 + np.exp(-args[0]))
        if t == "SigmoidGrad":
            g, y = args
            return g * y * (1.0 - y)
        if t == "Tanh":
            return np.tanh(args[0])
        if t == "TanhGrad":
            g, y = args
            return g * (1.0 - y * y)
        if t == "MaxPool":
            return _max_pool(
                args[0], tuple(a["kernel"]), tuple(a["stride"]), str(a["padding"])
            )
        if t == "MaxPoolGrad":
            x, y, g = args
            return _max_pool_grad(
                x, y, g, tuple(a["kernel"]), tuple(a["stride"]), str(a["padding"])
            )
        if t == "Add":
            return args[0] + args[1]
        if t == "Sub":
            return args[0] - args[1]
        if t == "Mul":
            return args[0] * args[1]
        if t == "AddN":
            return sum(args[1:], args[0].copy())
        if t == "Reshape":
            target = self.graph.tensor(op.outputs[0]).shape
            return args[0].reshape(target)
        if t == "ConcatV2":
            return np.concatenate(args, axis=int(a.get("axis", -1)))
        if t == "Slice":
            axis = int(a["axis"])
            start = int(a["start"])
            size = int(a["size"])
            index = [slice(None)] * args[0].ndim
            index[axis] = slice(start, start + size)
            return args[0][tuple(index)]
        if t == "Pad":
            # slice gradient: scatter back into a zero tensor of the
            # original shape at the recorded (axis, start) position
            target = tuple(a["target_shape"])
            axis = int(a["axis"])
            start = int(a["start"])
            size = int(a["size"])
            out = np.zeros(target, dtype=args[0].dtype)
            index = [slice(None)] * len(target)
            index[axis] = slice(start, start + size)
            out[tuple(index)] = args[0]
            return out
        if t in ("Dropout", "DropoutGrad"):
            return args[0]  # evaluation mode: identity
        if t == "SparseSoftmaxCrossEntropyWithLogits":
            logits, labels = args
            labels = labels.astype(int)
            probs = _softmax(logits)
            batch = logits.shape[0]
            rows = np.arange(batch)
            loss = -np.log(np.clip(probs[rows, labels], 1e-300, None))
            grad = probs.copy()
            grad[rows, labels] -= 1.0
            grad /= batch  # gradient of the *mean* loss
            return loss, grad
        if t in ("ApplyAdam", "ApplyGradientDescent"):
            param, grad = args
            if t == "ApplyGradientDescent":
                return param - ADAM_LR * grad
            # first Adam step from zero moments (bias-corrected)
            m_hat = grad
            v_hat = grad * grad
            return param - ADAM_LR * m_hat / (np.sqrt(v_hat) + ADAM_EPS)
        raise NumericExecutionError(f"no numeric rule for op type {t!r}")


# ---------------------------------------------------------------------------
# gradient verification
# ---------------------------------------------------------------------------
def param_gradient_tensors(graph: Graph) -> Dict[str, str]:
    """Map parameter name -> gradient tensor consumed by its update op."""
    out: Dict[str, str] = {}
    for param, update_name in graph.param_update_ops.items():
        update = graph.op(update_name)
        out[param] = update.inputs[1]
    return out


def check_gradients(
    graph: Graph,
    feeds: Mapping[str, np.ndarray],
    params: Optional[Iterable[str]] = None,
    samples_per_param: int = 4,
    eps: float = 1e-5,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    seed: int = 0,
) -> Dict[str, float]:
    """Verify backward ops against central finite differences of the loss.

    For each parameter, ``samples_per_param`` random entries are perturbed
    by ±``eps`` and the resulting loss slope is compared to the analytic
    gradient the graph's backward operations computed.  Returns the maximum
    relative error per parameter; raises AssertionError on mismatch.
    """
    executor = NumericExecutor(graph)
    env = executor.run(feeds)
    grad_of = param_gradient_tensors(graph)
    rng = np.random.default_rng(seed)
    names = list(params) if params is not None else sorted(grad_of)
    errors: Dict[str, float] = {}
    for pname in names:
        analytic = env[grad_of[pname]]
        base = np.asarray(feeds[pname], dtype=np.float64)
        worst = 0.0
        flat_indices = rng.choice(
            base.size, size=min(samples_per_param, base.size), replace=False
        )
        for flat in flat_indices:
            idx = np.unravel_index(flat, base.shape)
            loss_plus = _loss_with(executor, feeds, pname, base, idx, +eps)
            loss_minus = _loss_with(executor, feeds, pname, base, idx, -eps)
            numeric = (loss_plus - loss_minus) / (2 * eps)
            got = float(analytic[idx])
            err = abs(got - numeric) / max(abs(numeric), abs(got), atol / rtol)
            worst = max(worst, err)
            if abs(got - numeric) > atol + rtol * max(abs(numeric), abs(got)):
                raise AssertionError(
                    f"gradient mismatch for {pname}{list(idx)}: "
                    f"analytic {got:.6g} vs finite-difference {numeric:.6g}"
                )
        errors[pname] = worst
    return errors


def _loss_with(executor, feeds, pname, base, idx, delta) -> float:
    perturbed = dict(feeds)
    changed = base.copy()
    changed[idx] += delta
    perturbed[pname] = changed
    return executor.loss(executor.run(perturbed))


def random_feeds(
    graph: Graph, seed: int = 0, scale: float = 0.5
) -> Dict[str, np.ndarray]:
    """Random external inputs + parameters for a builder graph.

    Label tensors (names containing ``/labels``) get integer class ids.
    """
    rng = np.random.default_rng(seed)
    produced = {name for op in graph.ops for name in op.outputs}
    feeds: Dict[str, np.ndarray] = {}
    for name, spec in graph.tensors.items():
        if name in produced:
            continue
        if "/labels" in name:
            n_classes = _infer_classes(graph, name)
            feeds[name] = rng.integers(0, n_classes, size=spec.shape)
        else:
            feeds[name] = rng.normal(0.0, scale, size=spec.shape)
    return feeds


def _infer_classes(graph: Graph, labels_name: str) -> int:
    for op in graph.ops:
        if (
            op.op_type == "SparseSoftmaxCrossEntropyWithLogits"
            and labels_name in op.inputs
        ):
            logits = op.inputs[0]
            return graph.tensor(logits).shape[-1]
    raise NumericExecutionError(f"no loss consumes labels {labels_name!r}")
