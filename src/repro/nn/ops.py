"""Operation definitions, the op-type registry and the per-op cost model.

The paper characterizes NN training at TensorFlow *operation* granularity
(Table I): each operation instance carries an execution-time cost, a
main-memory-access cost and a decomposition into multiply/add ("MAC") work —
offloadable to fixed-function PIMs — and "other" work (conditionals,
sampling, transcendental math, data staging) that needs a programmable
device.  This module defines:

* :class:`OffloadClass` — which compute devices can execute an op type,
  mirroring the paper's classification (section II-A / Figure 6):
  pure multiply-add ops (``FIXED``), complex ops with an extractable MAC
  core that become *recursive PIM kernels* (``HYBRID``), conditional or
  sampling ops for the programmable PIM (``PROG``), and host-only
  bookkeeping (``HOST``).
* :class:`OpTypeInfo` — static per-type properties, including TensorFlow
  CPU-kernel efficiency factors that reproduce the *measured* profile the
  authors obtained with VTune (Table I); see DESIGN.md section 2.
* :class:`OpCost` — the per-instance work/traffic vector.
* :class:`Op` — one operation instance in a training-step graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Mapping, Optional, Tuple

from ..errors import UnknownOpError


class OffloadClass(enum.Enum):
    """Which devices may execute an operation type."""

    #: Pure multiply/add (or pure streaming) work: fully offloadable to the
    #: fixed-function PIMs, e.g. MatMul, Conv2D, BiasAdd.
    FIXED = "fixed"
    #: Complex operation with an extractable MAC core: executed as a
    #: recursive PIM kernel (programmable PIM + fixed-function sub-kernels),
    #: e.g. Conv2DBackpropFilter (paper Figure 6).
    HYBRID = "hybrid"
    #: Conditional / sampling / optimizer work for the programmable PIM,
    #: e.g. Relu, MaxPool, ApplyAdam.
    PROG = "prog"
    #: Host-only bookkeeping (shape manipulation, constants, control).
    HOST = "host"


@dataclass(frozen=True)
class OpTypeInfo:
    """Static properties of an operation type.

    Attributes:
        name: TensorFlow operation-type name (``"Conv2DBackpropFilter"``).
        offload_class: Device eligibility (see :class:`OffloadClass`).
        traffic_factor: Main-memory bytes per ideal (compulsory) byte for a
            well-tiled implementation (PIM kernels, GPU kernels); > 1 models
            cache-capacity spill of poorly blocked kernels.
        cpu_traffic_factor: Main-memory bytes per compulsory byte of the
            *TensorFlow CPU kernel* for this type — the quantity the paper's
            VTune counters measure (Table I).  Contemporary TF backward
            convolutions and reductions thrash the cache (factors far above
            1), while elementwise kernels run largely cache-resident behind
            their producers (factors below 1).  ``None`` means "same as
            ``traffic_factor``".
        cpu_compute_eff: Fraction of the host CPU's effective FLOP rate the
            TensorFlow kernel for this type achieves.  Backward convolution
            kernels are markedly less optimized than forward ones, which is
            why they dominate the paper's measured profile.
        cpu_mem_eff: Fraction of host memory bandwidth the kernel achieves
            on its main-memory traffic.
        mac_chunks: Number of fixed-function sub-kernels the MAC core is
            split into by binary generation (paper section IV-B); each chunk
            costs one kernel launch when executed without recursive calls.
        stages_bytes_factor: For HYBRID ops, the fraction of the op's ideal
            bytes that must be staged/rearranged by the complex phases
            (paper Figure 6 phases 1 and 2).
    """

    name: str
    offload_class: OffloadClass
    traffic_factor: float = 1.0
    cpu_traffic_factor: Optional[float] = None
    cpu_compute_eff: float = 1.0
    cpu_mem_eff: float = 1.0
    mac_chunks: int = 1
    stages_bytes_factor: float = 0.0

    @cached_property
    def host_traffic_factor(self) -> float:
        """Effective main-memory traffic factor on the host CPU."""
        return (
            self.traffic_factor
            if self.cpu_traffic_factor is None
            else self.cpu_traffic_factor
        )


def _registry() -> Dict[str, OpTypeInfo]:
    f = OffloadClass.FIXED
    h = OffloadClass.HYBRID
    p = OffloadClass.PROG
    o = OffloadClass.HOST
    infos = [
        # --- dense MAC ops: fixed-function targets ---------------------
        OpTypeInfo("MatMul", f, traffic_factor=1.15, cpu_compute_eff=0.90,
                   mac_chunks=2),
        # Batched MatMul (transformer attention): same dense-MAC profile as
        # MatMul, but contemporary TF batches the GEMMs with a strided
        # kernel that is slightly less cache-friendly than the single-GEMM
        # path.
        OpTypeInfo("BatchMatMul", f, traffic_factor=1.20,
                   cpu_traffic_factor=1.4, cpu_compute_eff=0.80,
                   mac_chunks=2),
        OpTypeInfo("Conv2D", f, traffic_factor=1.10, cpu_traffic_factor=2.0,
                   cpu_compute_eff=0.85, mac_chunks=2),
        OpTypeInfo("Conv2DTranspose", f, traffic_factor=1.20,
                   cpu_traffic_factor=5.0, cpu_compute_eff=0.55,
                   mac_chunks=2),
        OpTypeInfo("BiasAdd", f, cpu_traffic_factor=0.10, cpu_mem_eff=0.60),
        OpTypeInfo("BiasAddGrad", f, cpu_traffic_factor=20.0,
                   cpu_mem_eff=0.50),
        OpTypeInfo("Add", f, cpu_traffic_factor=0.10, cpu_mem_eff=0.70),
        OpTypeInfo("AddN", f, cpu_traffic_factor=0.10, cpu_mem_eff=0.60),
        OpTypeInfo("Sub", f, cpu_traffic_factor=0.10, cpu_mem_eff=0.70),
        OpTypeInfo("Mul", f, cpu_traffic_factor=0.10, cpu_mem_eff=0.70),
        OpTypeInfo("Sum", f, cpu_traffic_factor=0.50, cpu_mem_eff=0.50),
        OpTypeInfo("Mean", f, cpu_traffic_factor=0.50, cpu_mem_eff=0.50),
        OpTypeInfo("AvgPool", f, cpu_traffic_factor=0.30, cpu_mem_eff=0.50),
        OpTypeInfo("AvgPoolGrad", f, cpu_traffic_factor=0.80,
                   cpu_mem_eff=0.40),
        OpTypeInfo("Pad", f, cpu_traffic_factor=0.50, cpu_mem_eff=0.60),
        OpTypeInfo("Transpose", f, traffic_factor=1.3, cpu_mem_eff=0.35),
        OpTypeInfo("Slice", f, cpu_mem_eff=0.40),
        OpTypeInfo("ConcatV2", f, cpu_mem_eff=0.50),
        OpTypeInfo("L2Loss", f, cpu_traffic_factor=0.30, cpu_mem_eff=0.50),
        # --- complex ops with a MAC core: recursive PIM kernels --------
        OpTypeInfo("Conv2DBackpropFilter", h, traffic_factor=1.45,
                   cpu_traffic_factor=16.0, cpu_compute_eff=0.45,
                   mac_chunks=4, stages_bytes_factor=0.8),
        OpTypeInfo("Conv2DBackpropInput", h, traffic_factor=1.25,
                   cpu_traffic_factor=10.0, cpu_compute_eff=0.50,
                   mac_chunks=4, stages_bytes_factor=0.6),
        OpTypeInfo("FusedBatchNorm", f, cpu_traffic_factor=0.50,
                   cpu_mem_eff=0.50, mac_chunks=2),
        OpTypeInfo("FusedBatchNormGrad", f, traffic_factor=1.2,
                   cpu_traffic_factor=1.2, cpu_mem_eff=0.40, mac_chunks=3),
        # LayerNorm (transformer blocks): like FusedBatchNorm, the
        # normalize/scale/shift core is pure multiply-add with a small
        # per-row rsqrt residue, so both directions stay fixed-function
        # eligible.
        OpTypeInfo("LayerNorm", f, cpu_traffic_factor=0.50,
                   cpu_mem_eff=0.50, mac_chunks=2),
        OpTypeInfo("LayerNormGrad", f, traffic_factor=1.2,
                   cpu_traffic_factor=1.2, cpu_mem_eff=0.40, mac_chunks=3),
        OpTypeInfo("SparseSoftmaxCrossEntropyWithLogits", h,
                   cpu_traffic_factor=0.30, cpu_compute_eff=0.40,
                   mac_chunks=2, stages_bytes_factor=0.2),
        # --- conditional / sampling / optimizer: programmable PIM ------
        OpTypeInfo("Relu", p, cpu_traffic_factor=0.08, cpu_mem_eff=0.55),
        OpTypeInfo("ReluGrad", p, cpu_traffic_factor=0.10, cpu_mem_eff=0.45),
        OpTypeInfo("MaxPool", p, cpu_traffic_factor=0.30, cpu_mem_eff=0.45),
        OpTypeInfo("MaxPoolGrad", p, traffic_factor=1.2,
                   cpu_traffic_factor=1.5, cpu_mem_eff=0.50),
        OpTypeInfo("ApplyAdam", p, cpu_traffic_factor=0.15, cpu_mem_eff=0.50,
                   cpu_compute_eff=0.50),
        OpTypeInfo("ApplyGradientDescent", p, cpu_traffic_factor=0.15,
                   cpu_mem_eff=0.50),
        OpTypeInfo("Softmax", p, cpu_traffic_factor=0.30,
                   cpu_compute_eff=0.40),
        OpTypeInfo("SoftmaxGrad", p, cpu_traffic_factor=0.30,
                   cpu_compute_eff=0.45),
        OpTypeInfo("LRN", p, cpu_traffic_factor=0.20, cpu_compute_eff=0.30),
        OpTypeInfo("LRNGrad", p, cpu_traffic_factor=0.30,
                   cpu_compute_eff=0.20),
        OpTypeInfo("Sigmoid", p, cpu_traffic_factor=0.10,
                   cpu_compute_eff=0.30),
        OpTypeInfo("SigmoidGrad", p, cpu_traffic_factor=0.10,
                   cpu_compute_eff=0.35),
        OpTypeInfo("Tanh", p, cpu_traffic_factor=0.10, cpu_compute_eff=0.30),
        OpTypeInfo("TanhGrad", p, cpu_traffic_factor=0.10,
                   cpu_compute_eff=0.35),
        OpTypeInfo("Dropout", p, cpu_traffic_factor=0.15,
                   cpu_compute_eff=0.40),
        OpTypeInfo("DropoutGrad", p, cpu_traffic_factor=0.15,
                   cpu_compute_eff=0.45),
        OpTypeInfo("GatherV2", p, traffic_factor=1.6, cpu_mem_eff=0.20),
        OpTypeInfo("UnsortedSegmentSum", p, traffic_factor=1.8,
                   cpu_mem_eff=0.12),
        OpTypeInfo("NceLoss", p, cpu_traffic_factor=0.50,
                   cpu_compute_eff=0.40),
        # --- host bookkeeping -------------------------------------------
        OpTypeInfo("Reshape", o),
        OpTypeInfo("Identity", o),
        OpTypeInfo("Shape", o),
        OpTypeInfo("Const", o),
        OpTypeInfo("VariableV2", o),
        OpTypeInfo("NoOp", o),
        OpTypeInfo("Cast", o, cpu_mem_eff=0.60),
        OpTypeInfo("ExpandDims", o),
        OpTypeInfo("Tile", o, cpu_mem_eff=0.50),
    ]
    return {info.name: info for info in infos}


#: Singleton registry of every operation type the library understands.
OP_TYPES: Mapping[str, OpTypeInfo] = _registry()


def op_type_info(op_type: str) -> OpTypeInfo:
    """Look up static info for ``op_type``; raise :class:`UnknownOpError`."""
    try:
        return OP_TYPES[op_type]
    except KeyError:
        raise UnknownOpError(
            f"operation type {op_type!r} is not registered; known types: "
            f"{sorted(OP_TYPES)}"
        ) from None


@dataclass(frozen=True)
class OpCost:
    """Work and traffic vector of one operation instance.

    Attributes:
        muls / adds: Multiply and add counts (the fixed-function PIM work).
        other_flops: Non-MAC work units (comparisons, exp/sqrt/div,
            index arithmetic) that need a programmable device.
        bytes_in / bytes_out: Compulsory tensor traffic.
        parallelism: Maximum number of fixed-function PIM pairs the MAC
            core can occupy simultaneously, following the paper's
            granularity (e.g. an 11x11 convolution filter exposes one pair
            per filter tap — section III-C's pipeline example).
    """

    muls: int = 0
    adds: int = 0
    other_flops: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    parallelism: int = 1

    def __post_init__(self) -> None:
        for fname in ("muls", "adds", "other_flops", "bytes_in", "bytes_out"):
            if getattr(self, fname) < 0:
                raise ValueError(f"OpCost.{fname} must be non-negative")
        if self.parallelism < 1:
            raise ValueError("OpCost.parallelism must be >= 1")

    # Derived quantities are memoized: the simulator's placement estimator
    # reads them millions of times per run, and every field is frozen.
    # (``cached_property`` writes straight into the instance ``__dict__``,
    # which frozen dataclasses permit.)
    @cached_property
    def mac_flops(self) -> int:
        """Fixed-function-PIM-eligible floating point operations."""
        return self.muls + self.adds

    @cached_property
    def macs(self) -> int:
        """Multiply-accumulate count (one MAC = one mul + one add)."""
        return max(self.muls, self.adds)

    @cached_property
    def flops(self) -> int:
        return self.mac_flops + self.other_flops

    @cached_property
    def bytes_total(self) -> int:
        return self.bytes_in + self.bytes_out


@dataclass(frozen=True)
class Op:
    """One operation instance in a training-step dataflow graph.

    Attributes:
        name: Unique instance name, e.g. ``"conv3_1/Conv2DBackpropFilter"``.
        op_type: Registered type name (key into :data:`OP_TYPES`).
        inputs / outputs: Names of consumed / produced tensors.
        cost: Work vector for this instance.
        attrs: Optional free-form attributes (layer metadata).
    """

    name: str
    op_type: str
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    cost: OpCost = field(default_factory=OpCost)
    attrs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        op_type_info(self.op_type)  # validates the type early

    # Memoized like OpCost's derived fields: every input is frozen and the
    # scheduler queries these on each placement attempt.
    @cached_property
    def info(self) -> OpTypeInfo:
        return op_type_info(self.op_type)

    @cached_property
    def offload_class(self) -> OffloadClass:
        return self.info.offload_class

    @cached_property
    def traffic_bytes(self) -> int:
        """Estimated main-memory traffic (compulsory bytes x spill factor)."""
        return int(self.cost.bytes_total * self.info.traffic_factor)

    @cached_property
    def host_traffic_bytes(self) -> int:
        """Main-memory traffic of the TensorFlow CPU kernel — the quantity
        the paper's profiling counters measure (Table I)."""
        return int(self.cost.bytes_total * self.info.host_traffic_factor)

    @cached_property
    def staging_bytes(self) -> int:
        """Bytes rearranged by the complex phases of a HYBRID op."""
        return int(self.cost.bytes_total * self.info.stages_bytes_factor)


# ---------------------------------------------------------------------------
# Cost constructors used by the layer builders
# ---------------------------------------------------------------------------


def conv2d_cost(
    batch: int,
    out_h: int,
    out_w: int,
    c_in: int,
    c_out: int,
    kernel: Tuple[int, int],
    in_bytes: int,
    w_bytes: int,
    out_bytes: int,
    index_overhead: float = 0.0,
) -> OpCost:
    """Cost of a direct convolution (also used for its backprops).

    ``index_overhead`` adds ``other`` work proportional to the output size,
    modeling the rearrangement/control in complex backward kernels.
    """
    kh, kw = kernel
    out_elems = batch * out_h * out_w * c_out
    macs = out_elems * kh * kw * c_in
    return OpCost(
        muls=macs,
        adds=macs,
        other_flops=int(out_elems * index_overhead),
        bytes_in=in_bytes + w_bytes,
        bytes_out=out_bytes,
        parallelism=max(1, kh * kw * c_in),
    )


def matmul_cost(m: int, k: int, n: int, dtype_bytes: int = 4) -> OpCost:
    """Cost of an ``m x k`` by ``k x n`` dense matrix multiplication."""
    macs = m * k * n
    return OpCost(
        muls=macs,
        adds=macs,
        bytes_in=(m * k + k * n) * dtype_bytes,
        bytes_out=m * n * dtype_bytes,
        parallelism=max(1, k),
    )


def batch_matmul_cost(
    batch: int, m: int, k: int, n: int, dtype_bytes: int = 4
) -> OpCost:
    """Cost of ``batch`` independent ``m x k`` by ``k x n`` GEMMs.

    The attention pattern: every GEMM in the batch is independent, so the
    MAC core exposes one fixed-function pair per (batch, k) slice.
    """
    macs = batch * m * k * n
    return OpCost(
        muls=macs,
        adds=macs,
        bytes_in=batch * (m * k + k * n) * dtype_bytes,
        bytes_out=batch * m * n * dtype_bytes,
        parallelism=max(1, batch * k),
    )


def elementwise_cost(
    num_elements: int,
    n_inputs: int = 1,
    flops_per_element: float = 1.0,
    mac: bool = False,
    dtype_bytes: int = 4,
    parallelism: Optional[int] = None,
) -> OpCost:
    """Cost of an element-wise map (Relu, Mul, Add, ...).

    ``mac=True`` books the per-element work as multiply/add (eligible for
    fixed-function PIMs); otherwise it is "other" work.
    """
    work = int(num_elements * flops_per_element)
    par = parallelism if parallelism is not None else max(1, num_elements // 1024)
    if mac:
        half = work // 2
        return OpCost(
            muls=half,
            adds=work - half,
            bytes_in=num_elements * dtype_bytes * n_inputs,
            bytes_out=num_elements * dtype_bytes,
            parallelism=par,
        )
    return OpCost(
        other_flops=work,
        bytes_in=num_elements * dtype_bytes * n_inputs,
        bytes_out=num_elements * dtype_bytes,
        parallelism=par,
    )


def reduction_cost(
    in_elements: int,
    out_elements: int,
    mac: bool = True,
    dtype_bytes: int = 4,
) -> OpCost:
    """Cost of a reduction (BiasAddGrad, Sum, Mean): one add per input."""
    if mac:
        return OpCost(
            adds=in_elements,
            bytes_in=in_elements * dtype_bytes,
            bytes_out=out_elements * dtype_bytes,
            parallelism=max(1, out_elements),
        )
    return OpCost(
        other_flops=in_elements,
        bytes_in=in_elements * dtype_bytes,
        bytes_out=out_elements * dtype_bytes,
        parallelism=max(1, out_elements),
    )


def pool_cost(
    batch: int,
    out_h: int,
    out_w: int,
    channels: int,
    kernel: Tuple[int, int],
    in_bytes: int,
    out_bytes: int,
    flops_per_window_element: float = 1.0,
) -> OpCost:
    """Cost of a pooling op: one comparison/add per window element."""
    kh, kw = kernel
    windows = batch * out_h * out_w * channels
    return OpCost(
        other_flops=int(windows * kh * kw * flops_per_window_element),
        bytes_in=in_bytes,
        bytes_out=out_bytes,
        parallelism=max(1, channels),
    )


def data_movement_cost(nbytes: int, parallelism: int = 64) -> OpCost:
    """Cost of a pure data-movement op (Slice, ConcatV2, Pad, Transpose)."""
    return OpCost(bytes_in=nbytes, bytes_out=nbytes, parallelism=parallelism)


def adam_cost(n_params: int, dtype_bytes: int = 4) -> OpCost:
    """Cost of one ApplyAdam update over ``n_params`` parameters.

    Adam performs ~4 multiplies, ~3 adds and ~2 complex ops (sqrt, divide)
    per parameter, touching parameter, gradient and two moment tensors.
    """
    return OpCost(
        muls=4 * n_params,
        adds=3 * n_params,
        other_flops=2 * n_params,
        bytes_in=4 * n_params * dtype_bytes,
        bytes_out=3 * n_params * dtype_bytes,
        parallelism=max(1, n_params // 1024),
    )
