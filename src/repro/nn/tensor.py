"""Tensor shape descriptors for the operation-graph substrate.

The reproduction never materializes numeric tensor data: the runtime and the
simulator only need shapes, element sizes and producer/consumer relations.
:class:`TensorSpec` captures exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import ShapeError
from ..units import FLOAT32_BYTES


@dataclass(frozen=True)
class TensorSpec:
    """A named, shaped, typed tensor flowing through the training graph.

    Attributes:
        name: Globally unique tensor name, e.g. ``"conv1_1/output"``.
        shape: Tensor dimensions. Scalars use an empty tuple.
        dtype_bytes: Bytes per element (4 for float32, the paper's datatype).
    """

    name: str
    shape: Tuple[int, ...]
    dtype_bytes: int = FLOAT32_BYTES

    def __post_init__(self) -> None:
        if not self.name:
            raise ShapeError("tensor name must be non-empty")
        if any(d <= 0 for d in self.shape):
            raise ShapeError(f"tensor {self.name!r} has non-positive dim: {self.shape}")
        if self.dtype_bytes <= 0:
            raise ShapeError(f"tensor {self.name!r} has invalid dtype size")

    @property
    def num_elements(self) -> int:
        """Total element count (1 for scalars)."""
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        """Total size in bytes."""
        return self.num_elements * self.dtype_bytes

    @property
    def rank(self) -> int:
        return len(self.shape)

    def with_name(self, name: str) -> "TensorSpec":
        """A copy of this spec under a different name."""
        return TensorSpec(name=name, shape=self.shape, dtype_bytes=self.dtype_bytes)


def conv_output_hw(
    h: int, w: int, kernel: Tuple[int, int], stride: Tuple[int, int], padding: str
) -> Tuple[int, int]:
    """Spatial output size of a convolution/pool with TF padding semantics.

    Args:
        h, w: Input spatial size.
        kernel: ``(kh, kw)`` filter size.
        stride: ``(sh, sw)`` strides.
        padding: ``"SAME"`` or ``"VALID"`` (TensorFlow convention).
    """
    kh, kw = kernel
    sh, sw = stride
    if sh <= 0 or sw <= 0:
        raise ShapeError(f"strides must be positive: {stride}")
    if padding == "SAME":
        return math.ceil(h / sh), math.ceil(w / sw)
    if padding == "VALID":
        if h < kh or w < kw:
            raise ShapeError(
                f"VALID padding needs input >= kernel, got {(h, w)} vs {kernel}"
            )
        return (h - kh) // sh + 1, (w - kw) // sw + 1
    raise ShapeError(f"unknown padding mode {padding!r}")


def deconv_output_hw(
    h: int, w: int, stride: Tuple[int, int], padding: str = "SAME"
) -> Tuple[int, int]:
    """Spatial output size of a transposed convolution (DCGAN generator)."""
    sh, sw = stride
    if padding != "SAME":
        raise ShapeError("only SAME padding is supported for deconvolution")
    return h * sh, w * sw
