"""Observability layer: metrics registry, trace export, run reports.

Three pieces, consumable separately:

* :mod:`repro.obs.metrics` — a lightweight registry of counters, gauges
  and time-weighted accumulators that the simulator's components publish
  into (no-op when disabled);
* :mod:`repro.obs.trace` — Chrome Trace Event Format (``chrome://tracing``
  / Perfetto) export of schedule timelines with queue-wait, cache and
  offload-decision annotations;
* :mod:`repro.obs.report` — the versioned, JSON-serializable
  :class:`~repro.obs.report.RunReport` returned by :func:`repro.api.simulate`.

``metrics`` is imported eagerly (it is dependency-free); ``report`` and
``trace`` load lazily so that :mod:`repro.sim` modules can import the
registry without a circular import.
"""

from __future__ import annotations

from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeWeighted,
    merge_snapshots,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "RunReport",
    "TimeWeighted",
    "build_request_trace_events",
    "build_trace_events",
    "export_chrome_trace",
    "merge_snapshots",
    "validate_chrome_trace",
]

_LAZY = {
    "RunReport": ("repro.obs.report", "RunReport"),
    "build_request_trace_events": (
        "repro.obs.trace",
        "build_request_trace_events",
    ),
    "build_trace_events": ("repro.obs.trace", "build_trace_events"),
    "export_chrome_trace": ("repro.obs.trace", "export_chrome_trace"),
    "validate_chrome_trace": ("repro.obs.trace", "validate_chrome_trace"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
