"""Lightweight metrics registry (counters, gauges, time-weighted values).

The simulator's hot objects (the event engine, the device executors, the
scheduler) keep their instruments as plain attributes — an ``inc()`` is one
attribute add — and *publish* them into a :class:`MetricsRegistry` when a
snapshot is requested.  Publishing into a disabled registry is a no-op:
``counter()``/``gauge()``/``time_weighted()`` hand back shared null
instruments whose mutators do nothing, so instrumented code never branches
on an enabled flag itself.

Snapshots are deterministic: plain JSON types, keys sorted, values exactly
reproducible across processes and cache tiers (the simulator itself is
deterministic, and the registry adds no timing or randomness of its own).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

Value = Union[int, float, Tuple[float, ...]]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n


class Gauge:
    """Last-set value (scalars or fixed-length numeric tuples)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Value = 0

    def set(self, value: Value) -> None:
        self.value = value


class TimeWeighted:
    """Time-weighted accumulator: integral of a piecewise-constant signal.

    ``set(value, now)`` closes the current interval at ``now`` and starts a
    new one; ``integral(now)``/``mean(now)`` settle up to ``now``.  Used for
    utilization-style quantities (busy level over time).
    """

    __slots__ = ("name", "_value", "_last_t", "_integral")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._last_t = 0.0
        self._integral = 0.0

    def _settle(self, now: float) -> None:
        if now < self._last_t:
            raise ValueError(
                f"{self.name}: time went backwards ({now} < {self._last_t})"
            )
        self._integral += self._value * (now - self._last_t)
        self._last_t = now

    def set(self, value: float, now: float) -> None:
        self._settle(now)
        self._value = value

    def integral(self, now: float) -> float:
        self._settle(now)
        return self._integral

    def mean(self, now: float) -> float:
        """Time-weighted mean over [0, now]."""
        if now <= 0:
            return 0.0
        return self.integral(now) / now


#: Default bucket upper bounds of a :class:`Histogram` — a decade-spanning
#: latency ladder (milliseconds when observing latencies, but unit-free).
DEFAULT_BUCKETS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Histogram:
    """Fixed-bucket histogram with quantile estimates.

    ``observe(v)`` drops ``v`` into the first bucket whose upper bound is
    >= v (the last bucket is an implicit +inf overflow).  ``quantile(q)``
    interpolates linearly inside the winning bucket — exact enough for
    p50/p99 serving-latency reporting, bounded memory whatever the request
    volume.  The snapshot value is the bucket-count tuple.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"{name}: bucket bounds must be ascending")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = len(self.bounds)  # overflow unless a bound catches it
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else max(self.bounds[-1], self.total / self.count)
                )
                fraction = (rank - seen) / n
                return lo + (hi - lo) * min(1.0, max(0.0, fraction))
            seen += n
        return self.bounds[-1]

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def value(self) -> Tuple[float, ...]:
        return tuple(self.counts)


class _NullInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    __slots__ = ()
    name = "<null>"
    value: Value = 0
    count = 0
    total = 0.0

    def inc(self, n: float = 1) -> None:
        pass

    def set(self, value, now: float = 0.0) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def integral(self, now: float) -> float:
        return 0.0

    def mean(self, now: float = 0.0) -> float:
        return 0.0


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instruments with a deterministic snapshot.

    A disabled registry (``MetricsRegistry(enabled=False)``, or the module
    singleton :data:`NULL_REGISTRY`) accepts every call and records
    nothing; instrumented code pays one no-op method call.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._time_weighted: Dict[str, TimeWeighted] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: Dict) -> None:
        tables = (
            self._counters,
            self._gauges,
            self._time_weighted,
            self._histograms,
        )
        for other in tables:
            if other is not kind and name in other:
                raise ValueError(
                    f"metric {name!r} already registered as a different type"
                )

    # -- instrument accessors (create on first use) --------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        inst = self._counters.get(name)
        if inst is None:
            self._check_free(name, self._counters)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        inst = self._gauges.get(name)
        if inst is None:
            self._check_free(name, self._gauges)
            inst = self._gauges[name] = Gauge(name)
        return inst

    def time_weighted(self, name: str) -> TimeWeighted:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        inst = self._time_weighted.get(name)
        if inst is None:
            self._check_free(name, self._time_weighted)
            inst = self._time_weighted[name] = TimeWeighted(name)
        return inst

    def histogram(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        inst = self._histograms.get(name)
        if inst is None:
            self._check_free(name, self._histograms)
            inst = self._histograms[name] = Histogram(name, bounds)
        return inst

    # -- bulk updates ---------------------------------------------------
    def update(self, values: Dict[str, Value]) -> None:
        """Set one gauge per (name, value) pair."""
        if not self.enabled:
            return
        for name, value in values.items():
            self.gauge(name).set(value)

    def names(self) -> List[str]:
        return sorted(
            set(self._counters)
            | set(self._gauges)
            | set(self._time_weighted)
            | set(self._histograms)
        )

    def snapshot(self, now: float = 0.0) -> Dict[str, Value]:
        """All instrument values as plain JSON types, keys sorted.

        ``now`` settles time-weighted instruments (their integral is
        reported).  Tuples come back as tuples; serialize with
        :func:`repro.sim.results.canonical_dumps` for a stable byte form.
        """
        out: Dict[str, Value] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, tw in self._time_weighted.items():
            out[name] = tw.integral(now)
        for name, hist in self._histograms.items():
            out[name] = hist.value
        return {name: out[name] for name in sorted(out)}


#: Shared disabled registry: publish into it for free.
NULL_REGISTRY = MetricsRegistry(enabled=False)

#: Process-wide registry for infrastructure integrity events — corrupt
#: objects quarantined, store write errors, degraded-mode transitions.
#: Library code (the cache, the journal) publishes here because it has
#: no per-run registry in scope; the serve daemon folds a snapshot into
#: ``/healthz`` so operators see integrity incidents without log-diving.
GLOBAL_REGISTRY = MetricsRegistry()


def merge_snapshots(snaps: Iterable[Dict[str, Value]]) -> Dict[str, Value]:
    """Sum numeric metrics across snapshots (tuples are summed per-slot)."""
    merged: Dict[str, Value] = {}
    for snap in snaps:
        for name, value in snap.items():
            if name not in merged:
                merged[name] = value
            elif isinstance(value, tuple):
                prev = merged[name]
                merged[name] = tuple(a + b for a, b in zip(prev, value))
            else:
                merged[name] = merged[name] + value  # type: ignore[operator]
    return {name: merged[name] for name in sorted(merged)}
