"""The versioned run report returned by :func:`repro.api.simulate`.

:class:`RunReport` is the stable, renderer-facing view of a simulation:
it wraps the cached :class:`~repro.sim.results.RunResult` with a flat
summary (step time, energy breakdown, per-device busy fractions, the
fixed-pool occupancy histogram, offload decisions) and — when the run was
observed live — the schedule timeline, from which it can export a
Chrome/Perfetto trace.

The dict form is versioned independently of the result schema so that CLI
output, experiment scripts and ``BENCH_summary.json`` can all render from
one shape without re-deriving it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..errors import SimulationError
from ..sim.results import RunResult, canonical_dumps
from ..sim.timeline import Timeline

#: Version tag of the report envelope (the nested run result carries its
#: own ``schema`` field; the two evolve independently).
#: v2: added ``fault_counts`` (retry/degradation/re-selection totals).
#: v3: added ``validation`` (invariant-checker summary of validated runs).
#: v4: added ``surrogate`` (cost-surrogate mode/bands of the answering
#: path).
#: v5: added ``options`` (the resolved :class:`repro.api.SimulateOptions`
#: of the producing call, including the hardware-backend name).
REPORT_SCHEMA_VERSION = 5

#: Envelope versions :meth:`RunReport.from_dict` still reads.  Older
#: versions differ from v5 only by absent fields, which default.
_READABLE_SCHEMAS = (2, 3, 4, REPORT_SCHEMA_VERSION)


@dataclass(frozen=True)
class BatchSupervision:
    """Per-batch supervision counts from the crash-safe experiment runner.

    One record summarizes what the supervised pool did to complete (or
    abandon) a batch of jobs: how many were served from the cache, how
    many ran, and every intervention — retries after transient failures,
    watchdog timeouts, worker-pool crashes/respawns, and jobs quarantined
    after exhausting their retry budget.  ``repro resume`` and the
    experiment CLI print this; tests assert on it.
    """

    submitted: int = 0
    cached: int = 0
    completed: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    respawns: int = 0
    quarantined: tuple = ()  # fingerprints/keys of quarantined jobs
    interrupted: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "cached": self.cached,
            "completed": self.completed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "respawns": self.respawns,
            "quarantined": list(self.quarantined),
            "interrupted": self.interrupted,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BatchSupervision":
        return cls(
            submitted=int(data.get("submitted", 0)),
            cached=int(data.get("cached", 0)),
            completed=int(data.get("completed", 0)),
            retries=int(data.get("retries", 0)),
            timeouts=int(data.get("timeouts", 0)),
            crashes=int(data.get("crashes", 0)),
            respawns=int(data.get("respawns", 0)),
            quarantined=tuple(data.get("quarantined", ())),
            interrupted=bool(data.get("interrupted", False)),
        )

    def merge(self, other: "BatchSupervision") -> "BatchSupervision":
        """Accumulate another batch's counts (multi-batch experiments)."""
        return BatchSupervision(
            submitted=self.submitted + other.submitted,
            cached=self.cached + other.cached,
            completed=self.completed + other.completed,
            retries=self.retries + other.retries,
            timeouts=self.timeouts + other.timeouts,
            crashes=self.crashes + other.crashes,
            respawns=self.respawns + other.respawns,
            quarantined=self.quarantined + other.quarantined,
            interrupted=self.interrupted or other.interrupted,
        )

    def summary(self) -> str:
        """One-line human summary (printed to stderr by the CLI)."""
        parts = [
            f"{self.submitted} jobs",
            f"{self.cached} cached",
            f"{self.completed} run",
        ]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.crashes:
            parts.append(f"{self.crashes} pool crashes")
        if self.respawns:
            parts.append(f"{self.respawns} respawns")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        if self.interrupted:
            parts.append("interrupted")
        return ", ".join(parts)


@dataclass(frozen=True)
class RunReport:
    """Stable observability view of one simulated run."""

    result: RunResult
    #: Schedule timeline, present only when the run executed live with
    #: recording enabled (cached results carry aggregates, not timelines).
    timeline: Optional[Timeline] = None
    #: Simulation-cache statistics for the call that produced this report.
    cache_stats: Optional[Dict[str, int]] = None
    #: Invariant-checker summary when the run was validated
    #: (``api.simulate(..., validate=True)``): which invariant groups ran
    #: and passed.  None for unvalidated runs; a validated run that fails
    #: raises :class:`~repro.errors.InvariantViolation` instead of
    #: returning a report.
    validation: Optional[Dict[str, object]] = None
    #: How a surrogate-requested call was answered
    #: (``api.simulate(..., surrogate=True)``): ``{"mode": "surrogate",
    #: "tier": ..., "bands": {...}}`` for an estimate, or
    #: ``{"mode": "exact", "reason": ...}`` when the call fell back to
    #: the simulator.  None when the surrogate was never requested.
    surrogate: Optional[Dict[str, object]] = None
    #: Resolved options of the producing :func:`repro.api.simulate` call
    #: (backend, config, steps, observe/validate/surrogate flags, fault
    #: injection).  None for reports built outside the facade.
    options: Optional[Dict[str, object]] = None

    # -- delegating accessors ------------------------------------------
    @property
    def backend(self) -> str:
        """Hardware backend the run executed on (default when unknown)."""
        if self.options and self.options.get("backend"):
            return str(self.options["backend"])
        return "hmc-hetero"

    @property
    def config_name(self) -> str:
        return self.result.config_name

    @property
    def model_name(self) -> str:
        return self.result.model_name

    @property
    def steps(self) -> int:
        return self.result.steps

    @property
    def step_time_s(self) -> float:
        return self.result.step_time_s

    @property
    def makespan_s(self) -> float:
        return self.result.makespan_s

    @property
    def step_energy_j(self) -> float:
        return self.result.step_energy_j

    @property
    def step_dynamic_energy_j(self) -> float:
        return self.result.step_dynamic_energy_j

    @property
    def average_power_w(self) -> float:
        return self.result.average_power_w

    @property
    def device_busy_fraction(self) -> Dict[str, float]:
        return dict(self.result.device_busy_fraction or {})

    @property
    def bank_occupancy_hist_s(self) -> tuple:
        return tuple(self.result.bank_occupancy_hist_s or ())

    @property
    def queue_wait_s(self) -> Dict[str, float]:
        return dict(self.result.queue_wait_s or {})

    @property
    def selection(self) -> Optional[Dict]:
        return self.result.selection

    @property
    def metrics(self) -> Dict[str, float]:
        return dict(self.result.metrics or {})

    @property
    def faults(self) -> Optional[Dict]:
        """Fault/recovery log of a fault-injected run (None otherwise)."""
        return self.result.faults

    @property
    def fault_counts(self) -> Dict[str, int]:
        """Retry/degradation/re-selection totals (zeros when fault-free)."""
        if self.result.faults is None:
            return {
                "events": 0,
                "retries": 0,
                "degradations": 0,
                "reselections": 0,
            }
        return dict(self.result.faults["counts"])

    @property
    def has_timeline(self) -> bool:
        return self.timeline is not None and bool(self.timeline.entries)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict: flat summary plus the nested run record."""
        energy = self.result.energy
        return {
            "report_schema": REPORT_SCHEMA_VERSION,
            "model": self.model_name,
            "config": self.config_name,
            "steps": self.steps,
            "step_time_s": self.step_time_s,
            "makespan_s": self.makespan_s,
            "step_energy_j": self.step_energy_j,
            "step_dynamic_energy_j": self.step_dynamic_energy_j,
            "average_power_w": self.average_power_w,
            "energy_by_device_j": dict(sorted(energy.by_device.items())),
            "device_busy_fraction": self.device_busy_fraction,
            "bank_occupancy_hist_s": list(self.bank_occupancy_hist_s),
            "queue_wait_s": self.queue_wait_s,
            "selection": self.selection,
            "fault_counts": self.fault_counts,
            "validation": self.validation,
            "surrogate": self.surrogate,
            "options": self.options,
            "cache_stats": (
                dict(sorted(self.cache_stats.items()))
                if self.cache_stats is not None
                else None
            ),
            "run": self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunReport":
        version = data.get("report_schema")
        if version not in _READABLE_SCHEMAS:
            raise SimulationError(
                f"unsupported RunReport schema {version!r} "
                f"(expected one of {_READABLE_SCHEMAS})"
            )
        return cls(
            result=RunResult.from_dict(data["run"]),
            cache_stats=data.get("cache_stats"),
            validation=data.get("validation"),
            surrogate=data.get("surrogate"),
            options=data.get("options"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return canonical_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    # -- trace export --------------------------------------------------
    def trace_events(self) -> List[Dict]:
        """Chrome Trace Event dicts for this run's timeline."""
        if not self.has_timeline:
            raise SimulationError(
                "run has no timeline to trace; simulate with observe=True "
                "(repro.api.simulate) or record_timeline=True"
            )
        from .trace import build_trace_events

        return build_trace_events(
            self.timeline,
            selection=self.selection,
            cache_stats=self.cache_stats,
            process_name=f"{self.model_name} on {self.config_name}",
            faults=self.result.faults,
        )

    def save_trace(self, path: Union[str, Path]) -> int:
        """Write the Chrome/Perfetto trace to ``path``; returns event count."""
        from .trace import to_chrome_payload

        from ..experiments.common import write_atomic

        events = self.trace_events()
        payload = to_chrome_payload(
            events,
            other_data={
                "model": self.model_name,
                "config": self.config_name,
                "steps": self.steps,
            },
        )
        write_atomic(path, canonical_dumps(payload) + "\n")
        return len(events)
