"""Chrome Trace Event Format export of schedule timelines.

Upgrades the simulator's :class:`~repro.sim.timeline.Timeline` into a JSON
document loadable by ``chrome://tracing`` and https://ui.perfetto.dev:

* one complete (``"ph": "X"``) event per executed task, laned by device in
  :data:`~repro.sim.timeline.DEVICE_ORDER` order (devices with no tasks —
  e.g. the GPU on PIM configurations — get no lane);
* queue-wait intervals on a per-device ``<device> queue`` lane, making
  dependency-ready-but-device-busy time visible;
* instant events for the runtime's offload decisions (section III-C
  candidate selection) and counter events for simulation-cache hit/miss
  statistics when provided.

Timestamps are microseconds (the format's native unit).  Event order is
deterministic: metadata first, then strictly sorted by ``(ts, tid, name)``
— re-exporting the same run yields byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..sim.results import canonical_dumps
from ..sim.timeline import DEVICE_ORDER, Timeline, TimelineEntry

#: Version tag recorded in the exported document's ``otherData``.
CHROME_TRACE_SCHEMA = 1

#: Single simulated process id for all lanes.
_PID = 1

#: tid offset of the per-device queue-wait lanes.
_QUEUE_TID_OFFSET = 100

#: tid of the fault-injection lane (fault events, retries, degradations).
_FAULT_TID = 90

#: tid of the serve-daemon request-lifecycle lane (queue wait + execution
#: spans per accepted ``POST /v1/simulate``) and its queue sub-lane.
_REQUEST_TID = 95
_REQUEST_QUEUE_TID = 96


def build_trace_events(
    timeline: Union[Timeline, Iterable[TimelineEntry]],
    *,
    selection: Optional[Dict] = None,
    cache_stats: Optional[Dict[str, int]] = None,
    process_name: str = "repro simulator",
    faults: Optional[Dict] = None,
) -> List[Dict]:
    """Convert timeline entries (+ annotations) into Trace Event dicts.

    ``faults`` is a ``RunResult.faults`` fault/recovery log; when present
    its injected events, retries, degradations and re-selections render as
    instant events on a dedicated "faults" lane.
    """
    entries = (
        list(timeline.entries) if isinstance(timeline, Timeline) else list(timeline)
    )
    devices_present = sorted(
        {e.device for e in entries},
        key=lambda d: (
            DEVICE_ORDER.index(d) if d in DEVICE_ORDER else len(DEVICE_ORDER),
            d,
        ),
    )
    tids = {}
    for device in devices_present:
        if device in DEVICE_ORDER:
            tids[device] = DEVICE_ORDER.index(device) + 1
        else:
            tids[device] = len(DEVICE_ORDER) + 1 + len(tids)

    meta: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for device in devices_present:
        tid = tids[device]
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": device},
            }
        )
        meta.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )

    events: List[Dict] = []
    queue_lanes = set()
    for e in entries:
        tid = tids[e.device]
        ts = e.start_s * 1e6
        events.append(
            {
                "name": e.op_type,
                "cat": "task",
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "ts": ts,
                "dur": e.duration_s * 1e6,
                "args": {
                    "uid": e.uid,
                    "step": e.step,
                    "queue_wait_us": e.queue_wait_s * 1e6,
                },
            }
        )
        if e.queue_wait_s > 0:
            queue_tid = tid + _QUEUE_TID_OFFSET
            queue_lanes.add((e.device, queue_tid))
            events.append(
                {
                    "name": f"wait:{e.op_type}",
                    "cat": "queue-wait",
                    "ph": "X",
                    "pid": _PID,
                    "tid": queue_tid,
                    "ts": e.ready_s * 1e6,
                    "dur": e.queue_wait_s * 1e6,
                    "args": {"uid": e.uid, "step": e.step},
                }
            )
    for device, queue_tid in sorted(queue_lanes):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": queue_tid,
                "args": {"name": f"{device} queue"},
            }
        )

    if selection:
        events.append(
            {
                "name": "offload-selection",
                "cat": "selection",
                "ph": "i",
                "s": "g",
                "pid": _PID,
                "tid": 0,
                "ts": 0.0,
                "args": {
                    "target_coverage": selection.get("target_coverage"),
                    "time_coverage": selection.get("time_coverage"),
                    "candidate_types": selection.get("candidate_types"),
                },
            }
        )
        for decision in selection.get("decisions", ()):
            events.append(
                {
                    "name": f"offload:{decision['op_type']}",
                    "cat": "selection",
                    "ph": "i",
                    "s": "g",
                    "pid": _PID,
                    "tid": 0,
                    "ts": 0.0,
                    "args": dict(decision),
                }
            )

    if faults:
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": _FAULT_TID,
                "args": {"name": "faults"},
            }
        )
        meta.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": _FAULT_TID,
                "args": {"sort_index": _FAULT_TID},
            }
        )

        def fault_instant(name: str, cat: str, t_s: float, args: Dict) -> Dict:
            return {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "pid": _PID,
                "tid": _FAULT_TID,
                "ts": t_s * 1e6,
                "args": args,
            }

        for entry in faults.get("events", ()):
            events.append(
                fault_instant(
                    f"fault:{entry['kind']}",
                    "fault",
                    entry["t_s"],
                    dict(entry),
                )
            )
        for entry in faults.get("retries", ()):
            events.append(
                fault_instant(
                    f"retry:{entry['uid']}", "fault-retry", entry["t_s"], dict(entry)
                )
            )
        for entry in faults.get("degradations", ()):
            events.append(
                fault_instant(
                    f"degrade:{entry['uid']}",
                    "fault-degrade",
                    entry["t_s"],
                    dict(entry),
                )
            )
        for entry in faults.get("reselections", ()):
            events.append(
                fault_instant(
                    "reselect-offloads",
                    "fault-reselect",
                    entry["t_s"],
                    dict(entry),
                )
            )

    if cache_stats:
        events.append(
            {
                "name": "sim-cache",
                "cat": "cache",
                "ph": "C",
                "pid": _PID,
                "tid": 0,
                "ts": 0.0,
                "args": {k: cache_stats[k] for k in sorted(cache_stats)},
            }
        )

    events.sort(key=lambda ev: (ev["ts"], ev["tid"], ev["name"]))
    return meta + events


def build_request_trace_events(
    lifecycle: Iterable[Dict],
    *,
    process_name: str = "repro serve",
) -> List[Dict]:
    """Trace Event dicts for serve-daemon request lifecycles.

    ``lifecycle`` is an iterable of request records as kept by
    :class:`repro.serve.daemon.ServeDaemon`: dicts with ``id``,
    ``tenant``, ``model``/``config``/``backend``, monotonic offsets
    ``received_s``/``started_s``/``finished_s`` (seconds since daemon
    start; unfinished phases may be ``None``), terminal ``status`` and
    the ``dedup`` waiter count.  Each request renders as a queue-wait
    span on the "request queue" lane and an execution span on the
    "requests" lane, so a daemon's serving behavior (dedup fan-in, queue
    buildup, per-request latency) is inspectable in Perfetto exactly
    like a simulated schedule.
    """
    meta: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _REQUEST_TID,
            "args": {"name": "requests"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _REQUEST_QUEUE_TID,
            "args": {"name": "request queue"},
        },
    ]
    events: List[Dict] = []
    for record in lifecycle:
        label = str(record.get("model", "?"))
        if record.get("config"):
            label = f"{label}/{record['config']}"
        args = {
            "id": record.get("id"),
            "tenant": record.get("tenant"),
            "backend": record.get("backend"),
            "status": record.get("status"),
            "dedup": record.get("dedup", 0),
        }
        received = record.get("received_s")
        started = record.get("started_s")
        finished = record.get("finished_s")
        if received is not None and started is not None:
            events.append(
                {
                    "name": f"queued:{label}",
                    "cat": "serve-queue",
                    "ph": "X",
                    "pid": _PID,
                    "tid": _REQUEST_QUEUE_TID,
                    "ts": received * 1e6,
                    "dur": max(0.0, (started - received) * 1e6),
                    "args": args,
                }
            )
        if started is not None and finished is not None:
            events.append(
                {
                    "name": label,
                    "cat": "serve-request",
                    "ph": "X",
                    "pid": _PID,
                    "tid": _REQUEST_TID,
                    "ts": started * 1e6,
                    "dur": max(0.0, (finished - started) * 1e6),
                    "args": args,
                }
            )
        elif received is not None and finished is None:
            events.append(
                {
                    "name": f"pending:{label}",
                    "cat": "serve-request",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _REQUEST_TID,
                    "ts": received * 1e6,
                    "args": args,
                }
            )
    events.sort(key=lambda ev: (ev["ts"], ev["tid"], ev["name"]))
    return meta + events


def to_chrome_payload(
    events: List[Dict], other_data: Optional[Dict] = None
) -> Dict:
    """Wrap events in the JSON-object form of the Trace Event Format."""
    data = {"schema": CHROME_TRACE_SCHEMA}
    if other_data:
        data.update(other_data)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": data,
    }


def export_chrome_trace(
    timeline: Union[Timeline, Iterable[TimelineEntry]],
    path: Union[str, Path],
    *,
    selection: Optional[Dict] = None,
    cache_stats: Optional[Dict[str, int]] = None,
    other_data: Optional[Dict] = None,
) -> int:
    """Write a Chrome/Perfetto trace of ``timeline`` to ``path``.

    Returns the number of events written (metadata included).
    """
    from ..experiments.common import write_atomic

    events = build_trace_events(
        timeline, selection=selection, cache_stats=cache_stats
    )
    payload = to_chrome_payload(events, other_data=other_data)
    write_atomic(path, canonical_dumps(payload) + "\n")
    return len(events)


def validate_chrome_trace(payload: Union[Dict, str, Path]) -> List[Dict]:
    """Validate a trace document against the Trace Event Format.

    Accepts a parsed payload, a JSON string, or a file path.  Checks the
    properties Perfetto/catapult rely on: a ``traceEvents`` list, known
    phase codes, numeric non-negative ``ts``/``dur``, non-decreasing
    ``ts`` over non-metadata events, and B/E begin-end matching per lane.
    Returns the event list; raises :class:`ValueError` on any violation.
    """
    if isinstance(payload, (str, Path)) and not (
        isinstance(payload, str) and payload.lstrip().startswith(("{", "["))
    ):
        payload = json.loads(Path(payload).read_text())
    elif isinstance(payload, str):
        payload = json.loads(payload)
    if isinstance(payload, list):
        events = payload
    else:
        events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace has no traceEvents list")

    open_stacks: Dict[tuple, List[str]] = {}
    last_ts = None
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "i", "I", "C", "M"):
            raise ValueError(f"event #{i} has unsupported phase {ph!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event #{i} has invalid ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event #{i} ts {ts} precedes previous ts {last_ts}"
            )
        last_ts = ts
        lane = (ev.get("pid"), ev.get("tid"))
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event #{i} has invalid dur {dur!r}")
        elif ph == "B":
            open_stacks.setdefault(lane, []).append(ev.get("name", ""))
        elif ph == "E":
            stack = open_stacks.get(lane)
            if not stack:
                raise ValueError(f"event #{i}: E without matching B on {lane}")
            stack.pop()
    unmatched = {lane: s for lane, s in open_stacks.items() if s}
    if unmatched:
        raise ValueError(f"unmatched B events: {unmatched}")
    return events
