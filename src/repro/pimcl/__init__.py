"""pimcl — the extended-OpenCL programming model for heterogeneous PIM.

Paper section III-B / Table II: platform model (host + two accelerator
types), execution model (recursive kernel invocation, operation pipeline,
profiling-driven scheduling), and memory model (single shared global memory
with relaxed consistency and explicit synchronization).
"""

from .api import PimApi, PimSystemState
from .codegen import generate_binaries
from .kernel import (
    BinaryKind,
    Kernel,
    KernelBinary,
    KernelPhase,
    PhaseKind,
    PhasePlan,
)
from .memory import Allocation, SharedGlobalMemory
from .platform import (
    ComputeDevice,
    ComputeUnit,
    DeviceType,
    Platform,
    ProcessingElement,
    build_platform,
)
from .queue import CommandQueue, EventStatus, KernelCommand, KernelEvent
from .sync import Barrier, CompletionFlags, GlobalLock

__all__ = [
    "Allocation",
    "Barrier",
    "BinaryKind",
    "CommandQueue",
    "CompletionFlags",
    "ComputeDevice",
    "ComputeUnit",
    "DeviceType",
    "EventStatus",
    "GlobalLock",
    "Kernel",
    "KernelBinary",
    "KernelCommand",
    "KernelEvent",
    "KernelPhase",
    "PhaseKind",
    "PhasePlan",
    "PimApi",
    "PimSystemState",
    "Platform",
    "ProcessingElement",
    "SharedGlobalMemory",
    "build_platform",
    "generate_binaries",
]
