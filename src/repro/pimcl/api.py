"""Low-level PIM control APIs (paper Table III, section IV-A).

Four capabilities, mirroring the paper's API surface:

1. ``pim_offload`` — offload a specific operation onto specific PIM(s);
2. ``pim_is_busy`` — examine whether a PIM (bank / programmable core) is
   busy, backed by the hardware idle registers of Figure 7;
3. ``pim_query_complete`` — query the completion of a specific operation;
4. ``pim_locate`` — query an operation's computation location and its
   input/output data location (DRAM banks).

These functions are the foundation the runtime system builds on; the
simulator supplies the live ``PimSystemState``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ProgrammingModelError, SchedulingError
from ..hardware.fixed_pim import FixedPIMPool
from ..hardware.prog_pim import ProgPIMCluster
from ..nn.ops import Op
from .memory import SharedGlobalMemory
from .sync import CompletionFlags


@dataclass
class PimSystemState:
    """Live hardware state the low-level APIs operate on."""

    fixed_pool: FixedPIMPool
    prog_cluster: ProgPIMCluster
    memory: SharedGlobalMemory
    completion: CompletionFlags = field(default_factory=CompletionFlags)
    #: Where each offloaded op is computing: "fixed_pim" / "prog_pim" / "cpu".
    locations: Dict[str, str] = field(default_factory=dict)


class PimApi:
    """Table III API functions bound to one system state."""

    def __init__(self, state: PimSystemState):
        self._state = state

    # (1) offload -------------------------------------------------------
    def pim_offload(self, op: Op, device: str, units: int = 0, now: float = 0.0) -> int:
        """Offload ``op`` to ``device``; returns granted fixed units.

        ``device`` is ``"fixed_pim"`` (with a unit request) or
        ``"prog_pim"``.  Raises :class:`SchedulingError` when the
        programmable PIM is fully busy.
        """
        if device == "fixed_pim":
            granted = self._state.fixed_pool.allocate(op.name, max(1, units), now)
            if granted == 0:
                raise SchedulingError(
                    f"fixed-function pool has no free units for {op.name!r}"
                )
            self._state.locations[op.name] = device
            return granted
        if device == "prog_pim":
            if not self._state.prog_cluster.acquire(op.name, now):
                raise SchedulingError("all programmable PIMs are busy")
            self._state.locations[op.name] = device
            return 0
        raise ProgrammingModelError(f"cannot offload to device {device!r}")

    # (2) busy tracking --------------------------------------------------
    def pim_is_busy(self, device: str) -> bool:
        """Busy status of a PIM device (Figure 7 idle registers)."""
        if device == "fixed_pim":
            return self._state.fixed_pool.free_units == 0
        if device == "prog_pim":
            return self._state.prog_cluster.free_pims == 0
        raise ProgrammingModelError(f"unknown PIM device {device!r}")

    def pim_free_capacity(self, device: str) -> int:
        if device == "fixed_pim":
            return self._state.fixed_pool.free_units
        if device == "prog_pim":
            return self._state.prog_cluster.free_pims
        raise ProgrammingModelError(f"unknown PIM device {device!r}")

    # (3) completion ------------------------------------------------------
    def pim_query_complete(self, op_name: str) -> bool:
        return self._state.completion.is_done(op_name)

    def pim_mark_complete(self, op_name: str, now: float = 0.0) -> None:
        """Called by the PIM-side runtime when an op finishes; releases its
        compute resources and sets the completion flag."""
        location = self._state.locations.pop(op_name, None)
        if location == "fixed_pim":
            self._state.fixed_pool.release(op_name, now)
        elif location == "prog_pim":
            self._state.prog_cluster.release(op_name, now)
        self._state.completion.mark_done(op_name)

    # (4) location --------------------------------------------------------
    def pim_locate(self, op: Op) -> Tuple[Optional[str], List[int]]:
        """(computation location, input/output home banks) of ``op``."""
        banks = []
        for tname in tuple(op.inputs) + tuple(op.outputs):
            try:
                banks.append(self._state.memory.home_bank(tname))
            except ProgrammingModelError:
                continue  # tensor not resident in the stack
        return self._state.locations.get(op.name), sorted(set(banks))
