"""Binary generation: extracting fixed-function sub-kernels (section IV-B).

``generate_binaries`` plays the role of the paper's compilation stage: for
each operation it emits the applicable subset of the four binaries of
Figure 4.  The interesting case is a HYBRID operation (e.g.
Conv2DBackpropFilter): its MAC core is split into ``mac_chunks``
sub-kernels (binary #3) and the surrounding complex phases become the
programmable-PIM binary (#4) whose plan interleaves COMPLEX staging phases
with calls to the sub-kernels — the recursive PIM kernel of Figure 6.
"""

from __future__ import annotations

from typing import List

from ..errors import KernelBuildError
from ..nn.ops import OffloadClass, Op
from .kernel import BinaryKind, Kernel, KernelBinary, KernelPhase, PhaseKind, PhasePlan


def _whole_plan(op: Op) -> PhasePlan:
    """Single-phase plan carrying the op's full work (binaries #1/#2)."""
    if op.cost.macs and not op.cost.other_flops:
        phase = KernelPhase(
            kind=PhaseKind.MAC, macs=op.cost.macs, bytes_moved=op.traffic_bytes
        )
    else:
        phase = KernelPhase(
            kind=PhaseKind.COMPLEX,
            other_flops=op.cost.other_flops,
            bytes_moved=op.traffic_bytes,
        )
    return PhasePlan(phases=(phase,))


def _split_mac(total: int, chunks: int) -> List[int]:
    """Split ``total`` MACs into ``chunks`` near-equal positive pieces."""
    if chunks < 1:
        raise KernelBuildError(f"mac_chunks must be >= 1, got {chunks}")
    base, rem = divmod(total, chunks)
    return [base + (1 if i < rem else 0) for i in range(chunks)]


def _recursive_plan(op: Op) -> PhasePlan:
    """Interleaved COMPLEX/MAC plan for a HYBRID op (binary #4).

    Mirrors Figure 6: a leading complex phase, the extracted MAC
    sub-kernels, and a trailing complex phase; staging bytes and
    programmable work are split across the complex phases.
    """
    chunks = op.info.mac_chunks
    mac_sizes = _split_mac(op.cost.macs, chunks)
    n_complex = chunks + 1
    staging = op.staging_bytes
    other = op.cost.other_flops
    stage_bytes = _split_mac(staging, n_complex)
    stage_flops = _split_mac(other, n_complex)
    mac_bytes = _split_mac(max(0, op.traffic_bytes - staging), chunks)
    phases: List[KernelPhase] = []
    for i in range(chunks):
        phases.append(
            KernelPhase(
                kind=PhaseKind.COMPLEX,
                other_flops=stage_flops[i],
                bytes_moved=stage_bytes[i],
            )
        )
        phases.append(
            KernelPhase(
                kind=PhaseKind.MAC, macs=mac_sizes[i], bytes_moved=mac_bytes[i]
            )
        )
    phases.append(
        KernelPhase(
            kind=PhaseKind.COMPLEX,
            other_flops=stage_flops[chunks],
            bytes_moved=stage_bytes[chunks],
        )
    )
    return PhasePlan(phases=tuple(phases))


def _chunked_mac_plan(op: Op) -> PhasePlan:
    """MAC-only plan split into launch chunks (binary #2 for large ops).

    A FIXED-class op may carry a negligible scalar residue (e.g. batch
    normalization's per-channel rsqrt); it is folded into the MAC stream.
    """
    chunks = op.info.mac_chunks
    if op.cost.macs == 0:
        # pure data-movement FIXED op (Slice, ConcatV2): a single streaming
        # phase on the fixed-function device
        return PhasePlan(
            phases=(
                KernelPhase(kind=PhaseKind.MAC, macs=0,
                            bytes_moved=op.traffic_bytes),
            )
        )
    mac_sizes = _split_mac(op.cost.macs, chunks)
    byte_sizes = _split_mac(op.traffic_bytes, chunks)
    return PhasePlan(
        phases=tuple(
            KernelPhase(kind=PhaseKind.MAC, macs=m, bytes_moved=nb)
            for m, nb in zip(mac_sizes, byte_sizes)
        )
    )


def _prog_plan(op: Op) -> PhasePlan:
    """Whole-kernel programmable-PIM plan (binary #4 for PROG ops)."""
    phases: List[KernelPhase] = []
    if op.cost.macs:
        # PROG ops (e.g. ApplyAdam) may still carry MAC work, executed on
        # the programmable cores themselves — no sub-kernel extraction.
        phases.append(
            KernelPhase(
                kind=PhaseKind.COMPLEX,
                other_flops=op.cost.other_flops + op.cost.mac_flops,
                bytes_moved=op.traffic_bytes,
            )
        )
    else:
        phases.append(
            KernelPhase(
                kind=PhaseKind.COMPLEX,
                other_flops=op.cost.other_flops,
                bytes_moved=op.traffic_bytes,
            )
        )
    return PhasePlan(phases=tuple(phases))


def generate_binaries(op: Op) -> Kernel:
    """Compile ``op`` into its applicable binaries (Figure 4)."""
    binaries = {BinaryKind.CPU: KernelBinary(BinaryKind.CPU, _whole_plan(op))}
    cls = op.offload_class
    if cls is OffloadClass.FIXED:
        binaries[BinaryKind.FIXED_FULL] = KernelBinary(
            BinaryKind.FIXED_FULL, _chunked_mac_plan(op)
        )
    elif cls is OffloadClass.HYBRID:
        plan = _recursive_plan(op)
        mac_only = PhasePlan(
            phases=tuple(p for p in plan if p.kind is PhaseKind.MAC)
        )
        binaries[BinaryKind.FIXED_SUB] = KernelBinary(BinaryKind.FIXED_SUB, mac_only)
        binaries[BinaryKind.PROG] = KernelBinary(BinaryKind.PROG, plan)
    elif cls is OffloadClass.PROG:
        binaries[BinaryKind.PROG] = KernelBinary(BinaryKind.PROG, _prog_plan(op))
        if op.cost.macs:
            # MAC-carrying PROG ops (optimizer updates) additionally
            # compile for the streaming MAC pool: in-DRAM-update backends
            # (GradPIM) execute them there.  Inert unless a policy places
            # the op on "fixed" — the paper's policies never do.
            binaries[BinaryKind.FIXED_FULL] = KernelBinary(
                BinaryKind.FIXED_FULL, _chunked_mac_plan(op)
            )
    # HOST ops carry only the CPU binary.
    return Kernel(op=op, binaries=binaries)
