"""Kernels, binaries and execution phase plans.

Paper section III-B / Figure 4: given one OpenCL kernel per operation, the
build stage emits four binaries —

* **#1 CPU** — the whole kernel for the host.
* **#2 fixed-PIM** — the whole kernel, for operations that decompose
  entirely into multiplies/adds.
* **#3 fixed-PIM sub-kernels** — the extracted MAC cores of a complex
  kernel.
* **#4 programmable-PIM** — the complex kernel with extracted regions
  replaced by calls to the #3 sub-kernels (the *recursive PIM kernel*).

The :class:`PhasePlan` of a binary is what the simulator executes: an
alternation of COMPLEX phases (programmable device work: staging,
conditionals) and MAC phases (fixed-function sub-kernel launches).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import KernelBuildError
from ..nn.ops import OffloadClass, Op


class BinaryKind(enum.IntEnum):
    """The four binary files of Figure 4."""

    CPU = 1
    FIXED_FULL = 2
    FIXED_SUB = 3
    PROG = 4


class PhaseKind(enum.Enum):
    """Execution phase categories inside a kernel."""

    #: Non-MAC work: staging, rearrangement, conditionals, optimizer math.
    COMPLEX = "complex"
    #: A fixed-function sub-kernel: pure multiply/add work.
    MAC = "mac"


@dataclass(frozen=True)
class KernelPhase:
    """One phase of a kernel's execution plan.

    Attributes:
        kind: COMPLEX or MAC.
        macs: Multiply-accumulate count executed in this phase (MAC only).
        other_flops: Programmable-device work units (COMPLEX only).
        bytes_moved: Data staged/streamed during the phase.
    """

    kind: PhaseKind
    macs: int = 0
    other_flops: int = 0
    bytes_moved: int = 0

    def __post_init__(self) -> None:
        if self.kind is PhaseKind.MAC and self.other_flops:
            raise KernelBuildError("MAC phases carry no programmable work")
        if self.kind is PhaseKind.COMPLEX and self.macs:
            raise KernelBuildError("COMPLEX phases carry no MAC work")


@dataclass(frozen=True)
class PhasePlan:
    """Ordered phases of one kernel binary."""

    phases: Tuple[KernelPhase, ...]

    @property
    def n_mac_phases(self) -> int:
        return sum(1 for p in self.phases if p.kind is PhaseKind.MAC)

    @property
    def total_macs(self) -> int:
        return sum(p.macs for p in self.phases)

    @property
    def total_other_flops(self) -> int:
        return sum(p.other_flops for p in self.phases)

    def __iter__(self):
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)


@dataclass(frozen=True)
class KernelBinary:
    """One compiled artifact of a kernel."""

    kind: BinaryKind
    plan: PhasePlan


@dataclass(frozen=True)
class Kernel:
    """An operation's kernel with its generated binaries."""

    op: Op
    binaries: Dict[BinaryKind, KernelBinary]

    def binary(self, kind: BinaryKind) -> KernelBinary:
        try:
            return self.binaries[kind]
        except KeyError:
            raise KernelBuildError(
                f"kernel for {self.op.name!r} has no binary #{int(kind)} "
                f"({kind.name}); op class is {self.op.offload_class.value}"
            ) from None

    def has_binary(self, kind: BinaryKind) -> bool:
        return kind in self.binaries

    @property
    def offload_class(self) -> OffloadClass:
        return self.op.offload_class
