"""Extended-OpenCL memory model (paper section III-B, "Memory model").

On the heterogeneous PIM system there is a *single shared global memory*
(the stacked DRAM) addressed by CPU and PIMs alike — no data copies around
kernel calls.  Consistency is relaxed: a fixed-function PIM's writes become
visible to other devices only at the end of the kernel call that produced
them.  This module tracks tensor placement across banks (for the
locality-aware mapping of section IV-D) and enforces the release-visibility
rule, raising on reads of unpublished data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ProgrammingModelError
from ..nn.tensor import TensorSpec


@dataclass(frozen=True)
class Allocation:
    """A tensor's placement in the shared global memory."""

    tensor: TensorSpec
    home_bank: int


@dataclass
class SharedGlobalMemory:
    """Single global memory shared between CPU and PIMs.

    Args:
        n_banks: Bank count of the stack (placement granularity).
    """

    n_banks: int
    _allocations: Dict[str, Allocation] = field(default_factory=dict)
    #: Kernel epoch at which each tensor's latest write becomes visible;
    #: ``None`` marks a write still inside an unfinished kernel.
    _visible_epoch: Dict[str, Optional[int]] = field(default_factory=dict)
    _epoch: int = 0

    def allocate(self, tensor: TensorSpec) -> Allocation:
        """Place a tensor; deterministic bank assignment by name hash."""
        if tensor.name in self._allocations:
            raise ProgrammingModelError(f"tensor {tensor.name!r} already allocated")
        bank = _stable_hash(tensor.name) % self.n_banks
        alloc = Allocation(tensor=tensor, home_bank=bank)
        self._allocations[tensor.name] = alloc
        self._visible_epoch[tensor.name] = self._epoch  # inputs are visible
        return alloc

    def allocation(self, name: str) -> Allocation:
        try:
            return self._allocations[name]
        except KeyError:
            raise ProgrammingModelError(f"tensor {name!r} not allocated") from None

    def home_bank(self, name: str) -> int:
        """Bank holding the tensor — used to co-locate fixed-function work
        with its input data (section IV-D)."""
        return self.allocation(name).home_bank

    # ------------------------------------------------------------------
    # relaxed consistency
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    def begin_write(self, name: str) -> None:
        """A kernel starts producing ``name``; it is unreadable until the
        kernel-call boundary publishes it."""
        self.allocation(name)
        self._visible_epoch[name] = None

    def publish(self, name: str) -> None:
        """Kernel-call boundary: the tensor's latest write becomes visible."""
        self.allocation(name)
        self._epoch += 1
        self._visible_epoch[name] = self._epoch

    def is_visible(self, name: str) -> bool:
        self.allocation(name)
        return self._visible_epoch.get(name) is not None

    def check_readable(self, name: str) -> None:
        """Raise if a device reads a tensor whose write is unpublished."""
        if not self.is_visible(name):
            raise ProgrammingModelError(
                f"consistency violation: tensor {name!r} read before the "
                "producing kernel call completed"
            )


def _stable_hash(text: str) -> int:
    """Deterministic string hash (process-seed independent)."""
    h = 2166136261
    for ch in text.encode():
        h = (h ^ ch) * 16777619 & 0xFFFFFFFF
    return h
