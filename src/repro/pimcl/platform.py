"""OpenCL platform-model mapping for the heterogeneous PIM system.

Paper section III-B / Figure 5(b): every fixed-function PIM is a processing
element (PE); all fixed-function PIMs in one memory bank form a compute
unit; all banks together form one *compute device*.  Each programmable PIM
is its own compute device whose ARM cores are its PEs.  Exposing the two
PIM kinds as distinct devices is what gives the runtime its scheduling
flexibility.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from ..config import SystemConfig
from ..errors import ProgrammingModelError
from ..hardware.hmc import StackGeometry
from ..hardware.placement import Placement, place_fixed_pims


class DeviceType(enum.Enum):
    """Kinds of compute devices in the extended platform model."""

    HOST_CPU = "host_cpu"
    FIXED_PIM = "fixed_pim"
    PROG_PIM = "prog_pim"


@dataclass(frozen=True)
class ProcessingElement:
    """One PE: a fixed-function multiplier/adder pair or one ARM core."""

    device: str
    index: int


@dataclass(frozen=True)
class ComputeUnit:
    """A group of PEs scheduled together (one bank, or one ARM cluster)."""

    device: str
    index: int
    n_pes: int

    def pes(self) -> List[ProcessingElement]:
        return [ProcessingElement(self.device, i) for i in range(self.n_pes)]


@dataclass(frozen=True)
class ComputeDevice:
    """One OpenCL compute device."""

    name: str
    device_type: DeviceType
    compute_units: Tuple[ComputeUnit, ...]

    @property
    def n_pes(self) -> int:
        return sum(cu.n_pes for cu in self.compute_units)


@dataclass(frozen=True)
class Platform:
    """The extended-OpenCL platform: host + heterogeneous PIM devices."""

    host: ComputeDevice
    devices: Tuple[ComputeDevice, ...]
    placement: Placement = field(repr=False, default=None)  # type: ignore[assignment]

    def device(self, name: str) -> ComputeDevice:
        for d in self.devices:
            if d.name == name:
                return d
        raise ProgrammingModelError(
            f"no device {name!r}; have {[d.name for d in self.devices]}"
        )

    def devices_of_type(self, device_type: DeviceType) -> List[ComputeDevice]:
        return [d for d in self.devices if d.device_type is device_type]

    @property
    def fixed_pim_device(self) -> ComputeDevice:
        devices = self.devices_of_type(DeviceType.FIXED_PIM)
        if not devices:
            raise ProgrammingModelError("platform has no fixed-function PIM device")
        return devices[0]

    @property
    def prog_pim_devices(self) -> List[ComputeDevice]:
        return self.devices_of_type(DeviceType.PROG_PIM)


def build_platform(config: SystemConfig) -> Platform:
    """Map a :class:`SystemConfig` onto the extended OpenCL platform model.

    The fixed-function device's compute units mirror the thermal-aware bank
    placement: one CU per bank, with that bank's unit count as its PEs.
    """
    geometry = StackGeometry(config.stack)
    placement = place_fixed_pims(geometry, config.fixed_pim.n_units)
    host = ComputeDevice(
        name="host",
        device_type=DeviceType.HOST_CPU,
        compute_units=(
            ComputeUnit(device="host", index=0, n_pes=config.cpu.cores),
        ),
    )
    fixed_cus = tuple(
        ComputeUnit(device="fixed_pim", index=bank, n_pes=n)
        for bank, n in enumerate(placement.units_per_bank)
        if n > 0
    )
    fixed = ComputeDevice(
        name="fixed_pim",
        device_type=DeviceType.FIXED_PIM,
        compute_units=fixed_cus,
    )
    prog_devices = tuple(
        ComputeDevice(
            name=f"prog_pim_{i}",
            device_type=DeviceType.PROG_PIM,
            compute_units=(
                ComputeUnit(
                    device=f"prog_pim_{i}",
                    index=0,
                    n_pes=config.prog_pim.cores_per_pim,
                ),
            ),
        )
        for i in range(config.prog_pim.n_pims)
    )
    return Platform(
        host=host, devices=(fixed,) + prog_devices, placement=placement
    )
