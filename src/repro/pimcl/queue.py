"""Command queues and events (host-side OpenCL execution model).

The host program enqueues kernel commands to a per-device command queue;
each command carries an event that moves QUEUED -> RUNNING -> COMPLETE.
The runtime uses events to track operation completion, and the simulator
drives the state transitions.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from ..errors import ProgrammingModelError
from .kernel import BinaryKind, Kernel


class EventStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETE = "complete"


@dataclass
class KernelEvent:
    """Completion-tracking handle for one enqueued kernel."""

    kernel_name: str
    device: str
    status: EventStatus = EventStatus.QUEUED
    enqueue_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None

    def mark_running(self, now: float) -> None:
        if self.status is not EventStatus.QUEUED:
            raise ProgrammingModelError(
                f"event {self.kernel_name!r}: cannot start from {self.status}"
            )
        self.status = EventStatus.RUNNING
        self.start_time = now

    def mark_complete(self, now: float) -> None:
        if self.status is not EventStatus.RUNNING:
            raise ProgrammingModelError(
                f"event {self.kernel_name!r}: cannot complete from {self.status}"
            )
        self.status = EventStatus.COMPLETE
        self.end_time = now

    @property
    def queue_delay_s(self) -> float:
        if self.start_time is None:
            raise ProgrammingModelError("event has not started")
        return self.start_time - self.enqueue_time


@dataclass(frozen=True)
class KernelCommand:
    """One enqueued kernel execution request."""

    kernel: Kernel
    binary_kind: BinaryKind
    event: KernelEvent


@dataclass
class CommandQueue:
    """In-order command queue attached to one compute device."""

    device: str
    _pending: Deque[KernelCommand] = field(default_factory=deque)

    def enqueue(
        self, kernel: Kernel, binary_kind: BinaryKind, now: float = 0.0
    ) -> KernelEvent:
        """Submit a kernel; validates the requested binary exists."""
        kernel.binary(binary_kind)  # raises KernelBuildError when absent
        event = KernelEvent(
            kernel_name=kernel.op.name, device=self.device, enqueue_time=now
        )
        self._pending.append(
            KernelCommand(kernel=kernel, binary_kind=binary_kind, event=event)
        )
        return event

    def pop(self) -> Optional[KernelCommand]:
        """Dequeue the oldest pending command (None when empty)."""
        return self._pending.popleft() if self._pending else None

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def empty(self) -> bool:
        return not self._pending
