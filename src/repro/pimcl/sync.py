"""Explicit synchronization primitives between CPU and PIMs.

Paper section III-B: shared variables are protected by standard
shared-memory-multiprocessor schemes — global lock variables and barriers
in main memory.  The programmable PIM drives synchronization so the CPU is
not interrupted per-operation: it polls the completion of PIM work and
forwards one notification to the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..errors import SchedulingError


@dataclass
class GlobalLock:
    """A lock variable in shared global memory."""

    name: str
    _holder: Optional[str] = None

    def acquire(self, owner: str) -> bool:
        """Try to take the lock; returns False if another device holds it."""
        if self._holder is not None:
            return self._holder == owner
        self._holder = owner
        return True

    def release(self, owner: str) -> None:
        if self._holder != owner:
            raise SchedulingError(
                f"lock {self.name!r}: release by {owner!r} but held by "
                f"{self._holder!r}"
            )
        self._holder = None

    @property
    def holder(self) -> Optional[str]:
        return self._holder


@dataclass
class Barrier:
    """A barrier across a fixed set of participants (CPU + PIMs)."""

    name: str
    participants: Set[str]
    _arrived: Set[str] = field(default_factory=set)
    _generation: int = 0

    def arrive(self, who: str) -> bool:
        """Register arrival; returns True when the barrier releases."""
        if who not in self.participants:
            raise SchedulingError(
                f"barrier {self.name!r}: {who!r} is not a participant"
            )
        self._arrived.add(who)
        if self._arrived == self.participants:
            self._arrived.clear()
            self._generation += 1
            return True
        return False

    @property
    def waiting(self) -> List[str]:
        return sorted(self.participants - self._arrived)

    @property
    def generation(self) -> int:
        return self._generation


@dataclass
class CompletionFlags:
    """Per-operation completion flags the programmable PIM maintains.

    The PIM-side runtime sets a flag when an offloaded operation finishes;
    the host queries flags in one poll instead of being interrupted per
    operation (section III-B's synchronization design).
    """

    _done: Set[str] = field(default_factory=set)

    def mark_done(self, op_name: str) -> None:
        self._done.add(op_name)

    def is_done(self, op_name: str) -> bool:
        return op_name in self._done

    def drain(self) -> List[str]:
        """Host-side poll: return and clear all completed operations."""
        done = sorted(self._done)
        self._done.clear()
        return done
