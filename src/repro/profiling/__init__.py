"""Workload characterization (paper section II-A, Table I, Figure 2)."""

from .classify import (
    ClassificationThresholds,
    OpCategory,
    category_members,
    classify_type,
    classify_workload,
    unclassified_ops,
)
from .counters import CACHE_LINE_BYTES, CounterSample, sample_counters
from .profiler import OpProfile, TypeProfile, WorkloadProfile, WorkloadProfiler

__all__ = [
    "CACHE_LINE_BYTES",
    "ClassificationThresholds",
    "CounterSample",
    "OpCategory",
    "OpProfile",
    "TypeProfile",
    "WorkloadProfile",
    "WorkloadProfiler",
    "category_members",
    "classify_type",
    "classify_workload",
    "sample_counters",
    "unclassified_ops",
]
