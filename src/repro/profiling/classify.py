"""Four-way operation classification (paper Figure 2).

The paper buckets training operations by compute and memory intensity:

1. **Compute-intensive** — need not be offloaded, but can opportunistically
   use idle PIM units (e.g. well-blocked MatMul).
2. **Compute- and memory-intensive** — the offload targets (e.g.
   Conv2DBackpropFilter).
3. **Memory-intensive only ("unusual")** — streaming/gather ops with
   negligible arithmetic (e.g. Slice).
4. **Neither** — no meaningful performance impact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from ..errors import UnclassifiedOpError
from .profiler import TypeProfile, WorkloadProfile


class OpCategory(enum.IntEnum):
    """Figure 2 categories (plus the unknown-op fallback bucket)."""

    COMPUTE_INTENSIVE = 1
    COMPUTE_AND_MEMORY_INTENSIVE = 2
    MEMORY_INTENSIVE = 3
    NEGLIGIBLE = 4
    #: Op types profiled but absent from the flop-count table: their
    #: intensity is unknowable, so they stay on the CPU rather than being
    #: silently misclassified as zero-flop memory traffic.
    CPU_FALLBACK = 5


@dataclass(frozen=True)
class ClassificationThresholds:
    """Share thresholds defining "intensive".

    An op type is *time-significant* if it holds at least
    ``time_share_threshold`` of the step's CPU time, and
    *memory-significant* analogously.  ``compute_bound_intensity`` is the
    arithmetic-intensity bar (flops per traffic byte) separating
    compute-bound from memory-bound significant ops.
    """

    time_share_threshold: float = 0.01
    memory_share_threshold: float = 0.01
    compute_bound_intensity: float = 8.0


def classify_type(
    profile: TypeProfile,
    flops: int,
    thresholds: ClassificationThresholds = ClassificationThresholds(),
) -> OpCategory:
    """Classify one op type given its aggregated profile and flop count."""
    time_sig = profile.time_share >= thresholds.time_share_threshold
    mem_sig = profile.memory_share >= thresholds.memory_share_threshold
    intensity = flops / profile.memory_bytes if profile.memory_bytes else float("inf")
    compute_bound = intensity >= thresholds.compute_bound_intensity
    if time_sig and mem_sig:
        if compute_bound and not mem_sig:
            return OpCategory.COMPUTE_INTENSIVE
        return OpCategory.COMPUTE_AND_MEMORY_INTENSIVE
    if time_sig and compute_bound:
        return OpCategory.COMPUTE_INTENSIVE
    if mem_sig:
        return OpCategory.MEMORY_INTENSIVE
    return OpCategory.NEGLIGIBLE


def classify_workload(
    profile: WorkloadProfile,
    flops_by_type: Dict[str, int],
    thresholds: ClassificationThresholds = ClassificationThresholds(),
    strict: bool = False,
) -> Dict[str, OpCategory]:
    """Figure 2 classification of every op type in a workload profile.

    Profiled op types with no entry in ``flops_by_type`` cannot be placed
    on the intensity plane.  Previously they were treated as zero-flop and
    silently landed in the memory-intensive/negligible buckets; now they
    classify as :attr:`OpCategory.CPU_FALLBACK` (count them with
    :func:`unclassified_ops`), or raise :class:`UnclassifiedOpError` when
    ``strict``.  An explicit ``flops_by_type[t] == 0`` still means "this
    op really does no arithmetic" and classifies normally.
    """
    unknown = [t.op_type for t in profile.by_type
               if t.op_type not in flops_by_type]
    if strict and unknown:
        raise UnclassifiedOpError(unknown)
    result: Dict[str, OpCategory] = {}
    for t in profile.by_type:
        if t.op_type not in flops_by_type:
            result[t.op_type] = OpCategory.CPU_FALLBACK
        else:
            result[t.op_type] = classify_type(
                t, flops_by_type[t.op_type], thresholds
            )
    return result


def unclassified_ops(classification: Dict[str, OpCategory]) -> int:
    """Number of op types that fell back to CPU for lack of flop counts."""
    return sum(
        1 for c in classification.values() if c is OpCategory.CPU_FALLBACK
    )


def category_members(
    classification: Dict[str, OpCategory], category: OpCategory
) -> List[str]:
    """Op types in ``category``, sorted alphabetically."""
    return sorted(t for t, c in classification.items() if c is category)
