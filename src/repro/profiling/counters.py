"""Hardware-counter emulation for the profiling framework.

The paper's profiler (Figure 1) couples TensorBoard timing with VTune
hardware counters — wall time, instructions and LLC-miss-driven main-memory
accesses per operation.  This module derives the same counter vector from
the analytical CPU model so the rest of the stack (selection algorithm,
Table I) consumes data of the same shape as the authors'.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CPUConfig
from ..hardware.cpu import OpTiming
from ..nn.ops import Op

#: Bytes per main-memory access (one cache line).
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class CounterSample:
    """Counter readings for one operation execution on the host CPU."""

    cycles: int
    instructions: int
    llc_misses: int

    @property
    def main_memory_accesses(self) -> int:
        """The paper's "#main memory accesses" counter."""
        return self.llc_misses

    @property
    def main_memory_bytes(self) -> int:
        return self.llc_misses * CACHE_LINE_BYTES


def sample_counters(op: Op, timing: OpTiming, config: CPUConfig) -> CounterSample:
    """Emulated counter readings for ``op`` given its analytical timing."""
    cycles = int(timing.total_s * config.frequency_hz)
    # ~1 macro instruction per flop plus addressing/control overhead
    instructions = int(
        (op.cost.mac_flops + op.cost.other_flops) * 1.15
        + op.cost.bytes_total / CACHE_LINE_BYTES
    )
    llc_misses = op.host_traffic_bytes // CACHE_LINE_BYTES
    if llc_misses == 0 and (op.host_traffic_bytes > 0 or op.cost.bytes_total > 0):
        # any op that touches memory misses the LLC at least once (its
        # first line fill); flooring tiny ops at zero would report zero
        # main-memory bytes and silently drop them from the memory rank
        # in offload selection
        llc_misses = 1
    return CounterSample(
        cycles=cycles, instructions=instructions, llc_misses=llc_misses
    )
