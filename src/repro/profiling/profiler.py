"""Workload characterization: per-op CPU profiles (paper Table I).

Reproduces the paper's profiling methodology (section II-A): execute one
training step on the host CPU with inter-operation parallelism disabled
(operations run one by one, so per-op memory-access counts are not polluted
by co-running operations), recording execution time and main-memory
accesses per operation, then aggregate by operation type.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import CPUConfig, SystemConfig
from ..hardware.cpu import CpuModel
from ..nn.graph import Graph
from ..nn.ops import Op
from .counters import CounterSample, sample_counters


@dataclass(frozen=True)
class OpProfile:
    """Profile of one operation instance."""

    op_name: str
    op_type: str
    time_s: float
    memory_bytes: int
    counters: CounterSample

    @property
    def memory_accesses(self) -> int:
        return self.counters.main_memory_accesses


@dataclass(frozen=True)
class TypeProfile:
    """Aggregated profile of one operation type (one Table I row)."""

    op_type: str
    invocations: int
    time_s: float
    memory_bytes: int
    time_share: float
    memory_share: float


@dataclass(frozen=True)
class WorkloadProfile:
    """Full one-step characterization of a training workload."""

    model_name: str
    step_time_s: float
    total_memory_bytes: int
    per_op: Tuple[OpProfile, ...]
    by_type: Tuple[TypeProfile, ...]

    def top_compute(self, n: int = 5) -> List[TypeProfile]:
        """Top-n op types by execution time ("Top 5 CI Ops" column)."""
        return sorted(self.by_type, key=lambda t: t.time_s, reverse=True)[:n]

    def top_memory(self, n: int = 5) -> List[TypeProfile]:
        """Top-n op types by main-memory accesses ("Top 5 MI Ops" column)."""
        return sorted(self.by_type, key=lambda t: t.memory_bytes, reverse=True)[:n]

    def type_profile(self, op_type: str) -> Optional[TypeProfile]:
        for t in self.by_type:
            if t.op_type == op_type:
                return t
        return None

    def coverage(self, op_types: List[str]) -> Tuple[float, float]:
        """(time share, memory share) jointly covered by ``op_types``."""
        selected = [t for t in self.by_type if t.op_type in op_types]
        return (
            sum(t.time_share for t in selected),
            sum(t.memory_share for t in selected),
        )


class WorkloadProfiler:
    """Profiles one training step on the host CPU, op by op."""

    def __init__(self, config: Optional[CPUConfig] = None):
        self.config = config if config is not None else SystemConfig().cpu
        self._cpu = CpuModel(self.config)

    def profile(self, graph: Graph) -> WorkloadProfile:
        """Characterize ``graph`` (one step, inter-op parallelism disabled)."""
        per_op: List[OpProfile] = []
        for op in graph.topological_order():
            timing = self._cpu.op_timing(op)
            counters = sample_counters(op, timing, self.config)
            per_op.append(
                OpProfile(
                    op_name=op.name,
                    op_type=op.op_type,
                    time_s=timing.total_s,
                    # host traffic, floored by the counter model's clamped
                    # LLC misses: an op that touches memory contributes at
                    # least one cache line to the memory rank (for any op
                    # moving >= one line the two quantities agree, traffic
                    # being the larger)
                    memory_bytes=max(
                        op.host_traffic_bytes, counters.main_memory_bytes
                    ),
                    counters=counters,
                )
            )
        step_time = sum(p.time_s for p in per_op)
        total_mem = sum(p.memory_bytes for p in per_op)
        by_type = self._aggregate(per_op, step_time, total_mem)
        return WorkloadProfile(
            model_name=graph.name,
            step_time_s=step_time,
            total_memory_bytes=total_mem,
            per_op=tuple(per_op),
            by_type=tuple(by_type),
        )

    @staticmethod
    def _aggregate(
        per_op: List[OpProfile], step_time: float, total_mem: int
    ) -> List[TypeProfile]:
        times: Dict[str, float] = {}
        mems: Dict[str, int] = {}
        counts: Dict[str, int] = {}
        for p in per_op:
            times[p.op_type] = times.get(p.op_type, 0.0) + p.time_s
            mems[p.op_type] = mems.get(p.op_type, 0) + p.memory_bytes
            counts[p.op_type] = counts.get(p.op_type, 0) + 1
        return [
            TypeProfile(
                op_type=t,
                invocations=counts[t],
                time_s=times[t],
                memory_bytes=mems[t],
                time_share=times[t] / step_time if step_time else 0.0,
                memory_share=mems[t] / total_mem if total_mem else 0.0,
            )
            for t in sorted(times, key=lambda t: times[t], reverse=True)
        ]


#: Profiles keyed by (graph identity, CPU config).  ``CPUConfig`` is a
#: frozen, dict-free dataclass, hence hashable; profiling is a pure
#: function of (graph, cpu config), so every policy ``prepare()`` across a
#: figure sweep shares one characterization per pair.  Entries evict with
#: the graph.
_profile_cache: Dict[Tuple[int, CPUConfig], WorkloadProfile] = {}


def profile_workload(graph: Graph, config: CPUConfig) -> WorkloadProfile:
    """Memoized :meth:`WorkloadProfiler.profile` for ``graph`` under
    ``config``."""
    key = (id(graph), config)
    profile = _profile_cache.get(key)
    if profile is None:
        profile = WorkloadProfiler(config).profile(graph)
        _profile_cache[key] = profile
        weakref.finalize(graph, _profile_cache.pop, key, None)
    return profile
