"""Runtime system: profiling-driven scheduling, RC and OP (section III-C)."""

from .host_runtime import HeterogeneousPimRuntime
from .locality import LocalityMapper, LocalityReport, OpAssignment, analyze_locality
from .pim_host import OpLedgerEntry, PimSideRuntime
from .registers import RegisterFile, UtilizationRegisters
from .scheduler import HeteroPimPolicy
from .selection import RankedOp, SelectionResult, rank_operations, select_candidates

__all__ = [
    "HeterogeneousPimRuntime",
    "LocalityMapper",
    "LocalityReport",
    "OpAssignment",
    "analyze_locality",
    "HeteroPimPolicy",
    "OpLedgerEntry",
    "PimSideRuntime",
    "RankedOp",
    "RegisterFile",
    "SelectionResult",
    "UtilizationRegisters",
    "rank_operations",
    "select_candidates",
]
