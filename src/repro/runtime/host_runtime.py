"""Host-side runtime facade (paper section IV-C, "the runtime on CPU").

The paper extends TensorFlow's runtime with ~2000 lines that (1) initialize
and characterize PIM devices through OpenCL intrinsics, (2) create device
contexts, (3) expose the PIM device abstraction to the rest of the
framework, and (4) communicate with the programmable-PIM runtime.
:class:`HeterogeneousPimRuntime` is this library's equivalent: the one
object a user needs to train a model graph on the heterogeneous PIM.

Example::

    from repro.nn.models import build_model
    from repro.runtime import HeterogeneousPimRuntime

    runtime = HeterogeneousPimRuntime()
    result = runtime.train(build_model("alexnet"))
    print(result.step_time_s, result.fixed_pim_utilization)
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SystemConfig, default_config
from ..nn.graph import Graph
from ..pimcl.codegen import generate_binaries
from ..pimcl.kernel import Kernel
from ..pimcl.platform import Platform, build_platform
from ..sim.results import RunResult
from ..sim.simulation import Simulation
from .scheduler import HeteroPimPolicy
from .selection import SelectionResult


class HeterogeneousPimRuntime:
    """End-to-end driver: device init, binary generation, scheduling."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        recursive_kernels: bool = True,
        operation_pipeline: bool = True,
    ):
        self.config = config if config is not None else default_config()
        self.recursive_kernels = recursive_kernels
        self.operation_pipeline = operation_pipeline
        self._platform: Optional[Platform] = None
        self._last_policy: Optional[HeteroPimPolicy] = None

    # ------------------------------------------------------------------
    # device initialization and characterization
    # ------------------------------------------------------------------
    @property
    def platform(self) -> Platform:
        """The extended-OpenCL platform (built lazily, cached)."""
        if self._platform is None:
            self._platform = build_platform(self.config)
        return self._platform

    def device_summary(self) -> Dict[str, int]:
        """Characterization snapshot: PE counts per device."""
        platform = self.platform
        summary = {platform.host.name: platform.host.n_pes}
        for device in platform.devices:
            summary[device.name] = device.n_pes
        return summary

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self, graph: Graph) -> Dict[str, Kernel]:
        """Binary generation (Figure 4) for every operation of ``graph``."""
        return {op.name: generate_binaries(op) for op in graph.ops}

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self, graph: Graph, steps: Optional[int] = None) -> RunResult:
        """Profile, select, schedule and execute ``steps`` training steps."""
        policy = HeteroPimPolicy(
            recursive_kernels=self.recursive_kernels,
            operation_pipeline=self.operation_pipeline,
        )
        sim = Simulation(graph, policy, config=self.config, steps=steps)
        self._last_policy = policy
        return sim.run()

    @property
    def last_selection(self) -> Optional[SelectionResult]:
        """Offload candidates chosen during the most recent train() call."""
        if self._last_policy is None:
            return None
        return self._last_policy.selection
