"""Data-locality mapping of fixed-function work onto banks (section IV-D).

"Our low-level APIs allow us to map operations to fixed-function PIMs that
are in the same bank as input data of the operations."  This module
implements that mapping as an analyzable placement pass: every
pool-eligible operation is assigned units starting from the bank holding
most of its input bytes, spilling to other banks by proximity when the home
bank's units are exhausted.

The report quantifies how co-located a workload can be under the
thermal-aware unit placement — the locality headroom the buffering
mechanisms of [5] (cited in section IV-D) must cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hardware.placement import Placement
from ..nn.graph import Graph
from ..nn.ops import OffloadClass, Op
from ..pimcl.memory import SharedGlobalMemory


@dataclass(frozen=True)
class OpAssignment:
    """Unit assignment of one operation's MAC core."""

    op_name: str
    home_bank: int
    units_wanted: int
    #: (bank, units) grants, home bank first.
    grants: Tuple[Tuple[int, int], ...]

    @property
    def units_granted(self) -> int:
        return sum(u for _b, u in self.grants)

    @property
    def colocated_units(self) -> int:
        return sum(u for b, u in self.grants if b == self.home_bank)

    @property
    def colocated_fraction(self) -> float:
        granted = self.units_granted
        return self.colocated_units / granted if granted else 0.0


@dataclass(frozen=True)
class LocalityReport:
    """Workload-level locality summary."""

    assignments: Tuple[OpAssignment, ...]
    bank_unit_load: Tuple[int, ...]

    @property
    def colocated_unit_fraction(self) -> float:
        """Fraction of granted unit-slots living in their data's bank."""
        granted = sum(a.units_granted for a in self.assignments)
        if granted == 0:
            return 0.0
        return sum(a.colocated_units for a in self.assignments) / granted

    @property
    def fully_colocated_ops(self) -> int:
        return sum(1 for a in self.assignments if a.colocated_fraction == 1.0)

    @property
    def load_imbalance(self) -> float:
        """Max over mean bank unit-load (1.0 = perfectly balanced)."""
        loads = list(self.bank_unit_load)
        mean = sum(loads) / len(loads) if loads else 0.0
        return max(loads) / mean if mean > 0 else 0.0


class LocalityMapper:
    """Greedy home-bank-first unit assignment for pool-eligible ops."""

    def __init__(self, placement: Placement, memory: SharedGlobalMemory):
        self.placement = placement
        self.memory = memory

    def home_bank(self, graph: Graph, op: Op) -> Optional[int]:
        """Bank holding the most input bytes of ``op`` (None if nothing is
        stack-resident)."""
        weights: Dict[int, int] = {}
        for tname in op.inputs:
            try:
                bank = self.memory.home_bank(tname)
            except Exception:
                continue
            weights[bank] = weights.get(bank, 0) + graph.tensor(tname).nbytes
        if not weights:
            return None
        return max(weights.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    def assign(self, graph: Graph) -> LocalityReport:
        """Assign every pool-eligible op's MAC core to banks.

        Assignments are per-op snapshots against a fresh pool (the runtime
        reassigns units every kernel launch); the bank load aggregates how
        often each bank's units are requested across the step.
        """
        n_banks = len(self.placement.units_per_bank)
        bank_load = [0] * n_banks
        assignments: List[OpAssignment] = []
        for op in graph.topological_order():
            if op.offload_class not in (OffloadClass.FIXED, OffloadClass.HYBRID):
                continue
            if op.cost.macs == 0:
                continue
            home = self.home_bank(graph, op)
            if home is None:
                home = 0
            want = min(op.cost.parallelism, self.placement.total_units)
            grants = self._grant(home, want)
            for bank, units in grants:
                bank_load[bank] += units
            assignments.append(
                OpAssignment(
                    op_name=op.name,
                    home_bank=home,
                    units_wanted=want,
                    grants=tuple(grants),
                )
            )
        return LocalityReport(
            assignments=tuple(assignments),
            bank_unit_load=tuple(bank_load),
        )

    def _grant(self, home: int, want: int) -> List[Tuple[int, int]]:
        """Home bank first, then outward by bank-index distance."""
        n_banks = len(self.placement.units_per_bank)
        order = sorted(range(n_banks), key=lambda b: (abs(b - home), b))
        grants: List[Tuple[int, int]] = []
        remaining = want
        for bank in order:
            if remaining <= 0:
                break
            capacity = self.placement.units_in(bank)
            take = min(capacity, remaining)
            if take > 0:
                grants.append((bank, take))
                remaining -= take
        return grants


def analyze_locality(graph: Graph, placement: Placement) -> LocalityReport:
    """Convenience wrapper: allocate tensors, map, and report."""
    memory = SharedGlobalMemory(n_banks=len(placement.units_per_bank))
    for spec in graph.tensors.values():
        memory.allocate(spec)
    return LocalityMapper(placement, memory).assign(graph)
