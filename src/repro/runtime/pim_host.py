"""The runtime component executing on the programmable PIM.

Paper section IV-C: the programmable-PIM-side runtime (a) services
recursive PIM kernels — offloading extracted MAC sub-kernels to the
fixed-function PIMs without host involvement — and (b) supports the
operation pipeline by "record[ing] the numbers of additions and
multiplications already completed in each operation offloaded to the
programmable PIM, as well as the remaining additions and multiplications".

:class:`PimSideRuntime` keeps that ledger and drives the host-facing
completion flags, so the CPU is notified once per operation instead of
being interrupted per sub-kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import SchedulingError
from ..pimcl.sync import CompletionFlags


@dataclass
class OpLedgerEntry:
    """Progress record of one operation handled by the PIM runtime."""

    op_name: str
    total_muls: int
    total_adds: int
    done_muls: int = 0
    done_adds: int = 0
    sub_kernels_launched: int = 0
    complete: bool = False

    @property
    def remaining_muls(self) -> int:
        return self.total_muls - self.done_muls

    @property
    def remaining_adds(self) -> int:
        return self.total_adds - self.done_adds

    @property
    def progress(self) -> float:
        total = self.total_muls + self.total_adds
        if total == 0:
            return 1.0 if self.complete else 0.0
        return (self.done_muls + self.done_adds) / total


@dataclass
class PimSideRuntime:
    """Ledger + completion forwarding for PIM-resident operations."""

    completion: CompletionFlags = field(default_factory=CompletionFlags)
    _ledger: Dict[str, OpLedgerEntry] = field(default_factory=dict)
    recursive_dispatches: int = 0

    def begin_op(self, op_name: str, muls: int, adds: int) -> OpLedgerEntry:
        if op_name in self._ledger and not self._ledger[op_name].complete:
            raise SchedulingError(f"op {op_name!r} already in flight on PIM")
        entry = OpLedgerEntry(op_name=op_name, total_muls=muls, total_adds=adds)
        self._ledger[op_name] = entry
        return entry

    def record_sub_kernel(self, op_name: str, muls: int, adds: int) -> None:
        """A recursive sub-kernel dispatched to the fixed-function PIMs
        completed ``muls``/``adds`` of the operation's work."""
        entry = self._entry(op_name)
        if entry.complete:
            raise SchedulingError(f"op {op_name!r} already complete")
        entry.done_muls += muls
        entry.done_adds += adds
        if entry.done_muls > entry.total_muls or entry.done_adds > entry.total_adds:
            raise SchedulingError(
                f"op {op_name!r} over-reported sub-kernel work"
            )
        entry.sub_kernels_launched += 1
        self.recursive_dispatches += 1

    def finish_op(self, op_name: str) -> None:
        """Mark the op complete and raise the host-visible flag."""
        entry = self._entry(op_name)
        entry.complete = True
        self.completion.mark_done(op_name)

    def _entry(self, op_name: str) -> OpLedgerEntry:
        try:
            return self._ledger[op_name]
        except KeyError:
            raise SchedulingError(f"op {op_name!r} unknown to PIM runtime") from None

    def in_flight(self) -> List[OpLedgerEntry]:
        return [e for e in self._ledger.values() if not e.complete]

    def entry(self, op_name: str) -> OpLedgerEntry:
        return self._entry(op_name)
