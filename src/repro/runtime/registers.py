"""Hardware utilization registers (paper Figure 7).

The architecture exposes one idle/busy register per bank of fixed-function
PIMs plus one for the programmable PIM, letting the software scheduler
"query the completion of any computation and decide the idleness of
processing units" without interrupting the devices.  This module is the
software view over those registers: it maps the pool's aggregate busy count
onto per-bank bits through the thermal-aware placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from ..errors import HardwareConfigError
from ..hardware.fixed_pim import FixedPIMPool
from ..hardware.placement import Placement
from ..hardware.prog_pim import ProgPIMCluster


@dataclass(frozen=True)
class RegisterFile:
    """One snapshot of the idle registers."""

    bank_busy: List[bool]
    prog_pim_busy: List[bool]

    @property
    def any_fixed_idle(self) -> bool:
        return not all(self.bank_busy)

    @property
    def any_prog_idle(self) -> bool:
        return not all(self.prog_pim_busy)


class UtilizationRegisters:
    """Live register view over the fixed pool and programmable cluster.

    Units are assumed filled bank-by-bank in placement order (the runtime
    maps kernels to units co-located with their data; the register file is
    a conservative busy summary at bank granularity).
    """

    def __init__(
        self,
        pool: FixedPIMPool,
        cluster: ProgPIMCluster,
        placement: Placement,
    ):
        if placement.total_units != pool.n_units:
            raise HardwareConfigError(
                f"placement covers {placement.total_units} units, pool has "
                f"{pool.n_units}"
            )
        self._pool = pool
        self._cluster = cluster
        self._placement = placement
        self._failed_banks: Set[int] = set()

    def mark_bank_failed(self, bank_index: int) -> None:
        """Latch a bank's register as permanently busy (fault injection)."""
        if not 0 <= bank_index < len(self._placement.units_per_bank):
            raise HardwareConfigError(
                f"bank {bank_index} not covered by the placement"
            )
        self._failed_banks.add(bank_index)

    @property
    def failed_banks(self) -> Set[int]:
        return set(self._failed_banks)

    def snapshot(self) -> RegisterFile:
        # fault losses count as occupied capacity: a lost unit can never
        # be idle, so the register view stays conservative
        busy_units = self._pool.busy_units + getattr(self._pool, "lost_units", 0)
        bank_busy: List[bool] = []
        consumed = 0
        for index, capacity in enumerate(self._placement.units_per_bank):
            if index in self._failed_banks:
                bank_busy.append(True)
                consumed += capacity
                continue
            if capacity == 0:
                bank_busy.append(False)
                continue
            in_this_bank = max(0, min(capacity, busy_units - consumed))
            bank_busy.append(in_this_bank == capacity)
            consumed += in_this_bank
        prog_busy = [
            i < self._cluster.busy_pims for i in range(self._cluster.n_pims)
        ]
        return RegisterFile(bank_busy=bank_busy, prog_pim_busy=prog_busy)

    def idle_bank_count(self) -> int:
        return sum(1 for busy in self.snapshot().bank_busy if not busy)

    def idle_prog_count(self) -> int:
        return self._cluster.free_pims
