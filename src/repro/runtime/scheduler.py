"""The heterogeneous-PIM runtime scheduler (paper section III-C, step 2).

:class:`HeteroPimPolicy` realizes the paper's three scheduling principles:

1. **Prefer fixed-function PIMs**: candidate operations that decompose into
   multiply/add run on the fixed-function pool first; complex candidates
   run as recursive PIM kernels whose MAC cores still land on the pool.
2. **Prefer PIMs over CPU, but never idle the CPU**: every candidate
   placement list ends with ``"cpu"`` so that work falls back to the host
   when all suitable PIMs are busy.
3. **Respect data dependences**: enforced structurally by the simulator's
   task graph (tensors + parameter versions).

Non-candidate operations (outside the selected x% = 90 time coverage) stay
on the CPU, which keeps the host busy in parallel with the PIMs.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..config import SystemConfig
from ..nn.graph import Graph
from ..nn.ops import OffloadClass, Op
from ..profiling.profiler import profile_workload
from ..sim.policy import SchedulingPolicy
from .selection import SelectionResult, select_candidates_cached


class HeteroPimPolicy(SchedulingPolicy):
    """Profiling-driven dynamic scheduler for the heterogeneous PIM."""

    def __init__(
        self,
        recursive_kernels: bool = True,
        operation_pipeline: bool = True,
        cpu_slots: Optional[int] = None,
        name: Optional[str] = None,
    ):
        self.recursive_kernels = recursive_kernels
        self.operation_pipeline = operation_pipeline
        self._cpu_slots_override = cpu_slots
        self.cpu_slots = cpu_slots if cpu_slots is not None else 2
        self.pipeline_depth = 1 if operation_pipeline else 0
        self.uses_gpu = False
        if name is not None:
            self.name = name
        else:
            suffix = ""
            if not (recursive_kernels and operation_pipeline):
                tags = []
                if recursive_kernels:
                    tags.append("RC")
                if operation_pipeline:
                    tags.append("OP")
                suffix = f" ({'+'.join(tags) if tags else 'no RC/OP'})"
            self.name = f"Hetero PIM{suffix}"
        self.selection: Optional[SelectionResult] = None

    def prepare(self, graph: Graph, config: SystemConfig) -> None:
        """Step-1 profiling on the CPU followed by candidate selection.

        Both stages are pure functions of (graph, cpu config, coverage)
        and run through process-wide memoizers, so a sweep re-preparing
        fresh policy instances over the same workload pays for one
        characterization.
        """
        profile = profile_workload(graph, config.cpu)
        self.selection = select_candidates_cached(
            profile, coverage=config.runtime.offload_coverage
        )
        if self._cpu_slots_override is None:
            self.cpu_slots = config.runtime.cpu_slots
            self.cpu_slots = max(1, self.cpu_slots)
        self.pipeline_depth = (
            config.runtime.pipeline_depth if self.operation_pipeline else 0
        )

    def placements(self, op: Op) -> Tuple[str, ...]:
        if self.selection is None:
            raise RuntimeError(
                f"{self.name}: prepare() must run before placements()"
            )
        cls = op.offload_class
        # Candidates (class 2 of Figure 2) are the primary offload targets;
        # non-candidate offloadable ops (class 1/3) are offloaded
        # opportunistically "when there are idling hardware units in PIMs" —
        # both resolve to PIM-first placement with a profile-guarded CPU
        # fallback (the simulator's slowdown limit realizes principle 2).
        if cls is OffloadClass.FIXED:
            return ("fixed", "cpu")
        if cls is OffloadClass.HYBRID:
            return ("hybrid", "cpu")
        if cls is OffloadClass.PROG:
            return ("prog", "cpu")
        return ("cpu",)

    def decision_log(self) -> Optional[dict]:
        """Offload-decision log of the last :meth:`prepare` (or None)."""
        if self.selection is None:
            return None
        return self.selection.to_dict()

    def publish_metrics(self, registry) -> None:
        """Publish selection decisions into an observability registry."""
        if self.selection is None:
            return
        registry.gauge("selection.target_coverage").set(
            self.selection.target_coverage
        )
        registry.gauge("selection.time_coverage").set(
            self.selection.time_coverage
        )
        registry.gauge("selection.candidate_types").set(
            len(self.selection.candidate_types)
        )
        registry.gauge("selection.candidate_ops").set(
            len(self.selection.candidates)
        )

    def signature(self) -> Tuple:
        # cpu_slots alone is ambiguous here: without an override prepare()
        # replaces it with config.runtime.cpu_slots, with one it does not —
        # the same (signature, config) pair must never behave two ways.
        return super().signature() + (self._cpu_slots_override,)


class MixedWorkloadPolicy(HeteroPimPolicy):
    """Co-run scheduler for the mixed-workload study (section VI-F).

    The CNN model is scheduled normally (CPU + both PIM kinds); the co-run
    non-CNN model "executes on CPU or the programmable PIM, when they are
    idle" — its operations never touch the fixed-function pool.
    """

    def __init__(
        self,
        restricted_models: frozenset,
        restrict_untagged: bool = False,
        **kwargs,
    ):
        """``restrict_untagged`` restricts ops without a ``source_model``
        tag too — used to measure a non-CNN model's solo rate under the
        co-run resource class (CPU + programmable PIM only)."""
        super().__init__(name=kwargs.pop("name", "Hetero PIM (co-run)"), **kwargs)
        self.restricted_models = frozenset(restricted_models)
        self.restrict_untagged = restrict_untagged

    def _is_restricted(self, op: Op) -> bool:
        source = op.attrs.get("source_model")
        if source is None:
            return self.restrict_untagged
        return str(source) in self.restricted_models

    def placements(self, op: Op) -> Tuple[str, ...]:
        if self._is_restricted(op):
            if op.offload_class is OffloadClass.HOST:
                return ("cpu",)
            return ("cpu", "prog")
        return super().placements(op)

    def priority(self, op: Op) -> int:
        # the co-run tenant runs "when they are idle": strictly after the
        # primary model's ready work
        return 1 if self._is_restricted(op) else 0

    def signature(self) -> Tuple:
        return super().signature() + (
            tuple(sorted(self.restricted_models)),
            self.restrict_untagged,
        )
