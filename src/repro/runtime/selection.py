"""Offload-candidate selection (paper section III-C, step 1).

After profiling one step on the CPU, the runtime:

1. sorts operations by execution time (descending) and by main-memory
   accesses (descending), giving each operation two rank indexes;
2. sums the two indexes into a *global index* per operation;
3. sorts operations by global index (ascending — lower is hotter) and
   selects the top operations until they cover x% of the step's execution
   time (x = 90 in the paper's evaluation).

The result is the candidate set of operations that are simultaneously
time-consuming and memory-intensive — the ones worth moving into memory.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..errors import SchedulingError
from ..profiling.profiler import WorkloadProfile

#: Selection works at operation granularity — the granularity of Table I
#: and of the runtime's scheduling decisions: all invocations of one
#: operation type share kernels, binaries and characteristics, so a type
#: is offloaded as a whole ("all steps almost have the same classes of
#: operations; performance of operations remains stable across steps").


@dataclass(frozen=True)
class RankedOp:
    """One operation type with its selection ranks."""

    op_type: str
    time_s: float
    memory_bytes: int
    invocations: int
    time_rank: int
    memory_rank: int

    @property
    def global_index(self) -> int:
        return self.time_rank + self.memory_rank


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of the candidate-selection algorithm."""

    #: Operation *types* selected for offloading.
    candidate_types: FrozenSet[str]
    #: Operation instance names covered by the selected types.
    candidates: FrozenSet[str]
    ranked: Tuple[RankedOp, ...]
    time_coverage: float
    target_coverage: float

    def is_candidate(self, op_name: str) -> bool:
        return op_name in self.candidates

    def is_candidate_type(self, op_type: str) -> bool:
        return op_type in self.candidate_types

    def to_dict(self) -> dict:
        """JSON-ready offload-decision log (deterministic order).

        One record per profiled operation type, in global-index order, with
        the two rank indexes behind each decision — the observability
        layer's view of section III-C's selection step.
        """
        return {
            "target_coverage": self.target_coverage,
            "time_coverage": self.time_coverage,
            "candidate_types": sorted(self.candidate_types),
            "decisions": [
                {
                    "op_type": r.op_type,
                    "time_s": r.time_s,
                    "memory_bytes": r.memory_bytes,
                    "invocations": r.invocations,
                    "time_rank": r.time_rank,
                    "memory_rank": r.memory_rank,
                    "global_index": r.global_index,
                    "selected": r.op_type in self.candidate_types,
                }
                for r in self.ranked
            ],
        }


def rank_operations(profile: WorkloadProfile) -> List[RankedOp]:
    """Compute per-type time/memory ranks and global indexes.

    Both source lists are sorted in descending order (hotter = smaller
    index), and the global index is the sum of the two ranks, exactly as
    section III-C describes.
    """
    types = list(profile.by_type)
    # equal-cost types tie-break lexicographically on op_type: the ranks
    # (and therefore the candidate set) must not depend on profile
    # insertion order, which varies with dict/topological ordering
    by_time = sorted(types, key=lambda t: (-t.time_s, t.op_type))
    by_mem = sorted(types, key=lambda t: (-t.memory_bytes, t.op_type))
    time_rank = {t.op_type: i for i, t in enumerate(by_time)}
    mem_rank = {t.op_type: i for i, t in enumerate(by_mem)}
    ranked = [
        RankedOp(
            op_type=t.op_type,
            time_s=t.time_s,
            memory_bytes=t.memory_bytes,
            invocations=t.invocations,
            time_rank=time_rank[t.op_type],
            memory_rank=mem_rank[t.op_type],
        )
        for t in types
    ]
    ranked.sort(key=lambda r: (r.global_index, -r.time_s, r.op_type))
    return ranked


def select_candidates(
    profile: WorkloadProfile, coverage: float = 0.90
) -> SelectionResult:
    """Select offload candidates covering ``coverage`` of step time."""
    if not 0 < coverage <= 1.0:
        raise SchedulingError(f"coverage must be in (0, 1], got {coverage}")
    ranked = rank_operations(profile)
    total_time = profile.step_time_s
    chosen_types: List[str] = []
    acc = 0.0
    for r in ranked:
        if total_time > 0 and acc / total_time >= coverage:
            break
        chosen_types.append(r.op_type)
        acc += r.time_s
    achieved = acc / total_time if total_time > 0 else 0.0
    type_set = frozenset(chosen_types)
    names = frozenset(
        p.op_name for p in profile.per_op if p.op_type in type_set
    )
    return SelectionResult(
        candidate_types=type_set,
        candidates=names,
        ranked=tuple(ranked),
        time_coverage=achieved,
        target_coverage=coverage,
    )


#: Selections keyed by (profile identity, coverage): selection is a pure
#: function of its inputs and ``WorkloadProfile``s are themselves memoized
#: per (graph, cpu config), so a figure sweep runs the ranking once per
#: distinct pair.  Entries evict with the profile object.
_selection_cache: Dict[Tuple[int, float], SelectionResult] = {}


def select_candidates_cached(
    profile: WorkloadProfile, coverage: float = 0.90
) -> SelectionResult:
    """Memoized :func:`select_candidates` (same result object)."""
    key = (id(profile), coverage)
    result = _selection_cache.get(key)
    if result is None:
        result = select_candidates(profile, coverage)
        _selection_cache[key] = result
        weakref.finalize(profile, _selection_cache.pop, key, None)
    return result
