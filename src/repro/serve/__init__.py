"""Simulation-as-a-service: the ``repro serve`` daemon.

One asyncio process (stdlib only) that exposes the simulator over
HTTP/JSON with request dedup, per-tenant quotas, journal-backed
durability and byte-identical report serving.  See
:mod:`repro.serve.daemon` for the serving contract, ``docs/
architecture.md`` §14 for the design, and ``tools/check_serve.py`` for
the CI-enforced behavioural spec.
"""

from .daemon import DaemonHandle, ServeDaemon, start_in_thread
from .protocol import (
    DEFAULT_TENANT,
    SERVE_SCHEMA,
    SimulateRequest,
    parse_simulate_request,
)
from .quota import QuotaTable, TokenBucket

__all__ = [
    "DEFAULT_TENANT",
    "DaemonHandle",
    "SERVE_SCHEMA",
    "ServeDaemon",
    "SimulateRequest",
    "QuotaTable",
    "TokenBucket",
    "parse_simulate_request",
    "start_in_thread",
]
