"""Raw-socket client + load generator for the serve daemon.

Shared by ``benchmarks/bench_serve.py``, ``tools/check_perf.py`` (which
gates the warm p99 against the committed budget) and the test-suite, so
the numbers all three report come from one code path.  Plain blocking
sockets — the *daemon* is the system under test, and a dependency-free
client keeps the measurement honest.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, List, Optional, Tuple


def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    *,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 120.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP/1.1 exchange; returns (status, headers, body)."""
    payload = body or b""
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}:{port}",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(head + payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    head_lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split(" ")[1])
    response_headers: Dict[str, str] = {}
    for line in head_lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            response_headers[name.strip().lower()] = value.strip()
    return status, response_headers, body_bytes


def post_simulate(
    host: str,
    port: int,
    request: Dict[str, object],
    *,
    timeout: float = 120.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """POST one /v1/simulate request from a plain dict."""
    return http_request(
        host,
        port,
        "POST",
        "/v1/simulate",
        json.dumps(request, sort_keys=True).encode(),
        timeout=timeout,
    )


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile, q in [0, 1]."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def run_load(
    host: str,
    port: int,
    request: Dict[str, object],
    *,
    iterations: int,
    timeout: float = 120.0,
) -> Dict[str, float]:
    """Issue ``iterations`` sequential simulate requests; summarize.

    Returns latency quantiles in milliseconds plus sustained requests
    per second over the whole run.  Raises ``RuntimeError`` on any
    non-200 so a broken daemon cannot publish a fantastic p50.
    """
    latencies_ms: List[float] = []
    t_run = time.perf_counter()
    for _ in range(iterations):
        t0 = time.perf_counter()
        status, _headers, body = post_simulate(
            host, port, request, timeout=timeout
        )
        latencies_ms.append((time.perf_counter() - t0) * 1e3)
        if status != 200:
            raise RuntimeError(
                f"simulate returned {status}: {body[:200]!r}"
            )
    elapsed = time.perf_counter() - t_run
    return {
        "iterations": float(iterations),
        "p50_ms": round(percentile(latencies_ms, 0.50), 3),
        "p99_ms": round(percentile(latencies_ms, 0.99), 3),
        "mean_ms": round(sum(latencies_ms) / len(latencies_ms), 3),
        "rps": round(iterations / elapsed, 2) if elapsed > 0 else 0.0,
    }
