"""The ``repro serve`` daemon: simulation-as-a-service over HTTP/JSON.

One long-lived asyncio process turns every existing subsystem into a
multi-tenant serving primitive:

* ``POST /v1/simulate`` — validate (:mod:`repro.serve.protocol`), admit
  against the tenant's token bucket (:mod:`repro.serve.quota`), compute
  the request's content fingerprint (:meth:`repro.api.Session.fingerprint`)
  and either serve the stored report, join an identical in-flight
  request, or enqueue.  A worker pool drains a priority queue and runs
  each request in a thread through :meth:`repro.api.Session.simulate`,
  which shares the process-wide memory+disk result cache across tenants;
* **dedup** — identical in-flight requests (same fingerprint) run the
  simulation once and fan the finished report out to every waiter;
* **durability** — accepted requests are journaled
  (:mod:`repro.experiments.journal`, kind ``serve``) before they are
  queued and marked ``done`` after the canonical report JSON is written
  atomically to ``<cache-dir>/serve/reports/``.  A daemon killed at any
  instant therefore restarts into a consistent world: finished reports
  re-serve **byte-identically** from the store, and accepted-but-unserved
  requests are recovered from the journal and re-enqueued;
* ``GET /v1/report/<id>`` / ``GET /v1/trace/<id>`` / ``GET /v1/backends``
  / ``GET /v1/healthz`` — stored artifacts, request-lifecycle Chrome
  traces, the hardware-backend registry, and live serving statistics
  (queue depth, per-endpoint counters, latency histograms with p50/p99,
  cache and quota state);
* **overload protection** — a bounded admission queue sheds excess load
  (503 + ``Retry-After`` derived from queue depth and warm p99) instead
  of queueing unboundedly; per-request deadlines
  (``X-Repro-Deadline-Ms``) answer expired queued requests 504 *before*
  they consume a worker; and a circuit breaker trips erroring exact
  simulation over to surrogate-estimate serving tagged
  ``X-Repro-Degraded: surrogate`` (estimates are never stored — the
  exact report is recomputed once the breaker closes);
* **integrity** — every stored report gets a sha256 sidecar
  (``<id>.json.sha256``); store hits re-verify per
  ``REPRO_VERIFY_READS`` and quarantine-then-recompute on mismatch, so
  corrupt bytes are never served (see :mod:`repro.sim.fsck` for the
  offline audit);
* **graceful drain** — SIGTERM/SIGINT stops accepting connections,
  finishes every queued request, journals ``complete`` and exits 0.

Everything is stdlib: ``asyncio.start_server`` plus the minimal HTTP/1.1
layer in :mod:`repro.serve.http`.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .. import api
from ..chaos import injector as _chaos
from ..errors import ExecutionError, ProtocolError, ReproError
from ..experiments import journal as journal_mod
from ..experiments.journal import RunJournal
from ..obs.metrics import GLOBAL_REGISTRY, MetricsRegistry
from ..sim import cache as sim_cache
from ..sim.results import canonical_dumps
from .http import Request, read_request, render_response
from .protocol import (
    SERVE_SCHEMA,
    SimulateRequest,
    build_simulate_request,
    error_body,
    parse_simulate_request,
)
from .quota import QuotaTable

#: Latency-histogram bucket bounds (milliseconds).
_LATENCY_BUCKETS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 15000.0, 60000.0,
)

#: Header carrying a per-request deadline budget in milliseconds.
DEADLINE_HEADER = "x-repro-deadline-ms"


@dataclass
class _Pending:
    """One accepted request on its way through the queue."""

    request: SimulateRequest
    request_id: str
    future: "asyncio.Future[Tuple[int, bytes]]"
    received_s: float
    dedup: int = 0
    started_s: Optional[float] = None
    #: Absolute expiry (daemon-relative seconds) or None for no deadline.
    deadline_s: Optional[float] = None
    #: Set when the response was served from the surrogate under a
    #: tripped breaker (tags ``X-Repro-Degraded: surrogate``).
    degraded: bool = False


@dataclass
class ServeStats:
    """Mutable single-writer counters outside the metrics registry."""

    accepted: int = 0
    completed: int = 0
    failed: int = 0
    recovered: int = 0


class ServeDaemon:
    """The asyncio serving loop.  See the module docstring for the
    contract; see :func:`start_in_thread` for the embedded test/bench
    harness."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        quota_rate: float = 0.0,
        quota_burst: Optional[float] = None,
        resume: bool = True,
        max_queue: int = 0,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 30.0,
        registry: Optional[MetricsRegistry] = None,
        on_start: Optional[Callable[["ServeDaemon"], None]] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.workers = workers
        self.quotas = QuotaTable(quota_rate, quota_burst)
        self.resume = resume
        #: Admission-queue bound; 0 disables shedding (unbounded queue).
        self.max_queue = max_queue
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.stats = ServeStats()
        self.on_start = on_start
        self._t0 = time.monotonic()
        self._server: Optional[asyncio.base_events.Server] = None
        self._queue: "asyncio.PriorityQueue" = asyncio.PriorityQueue()
        self._seq = 0
        self._inflight: Dict[str, _Pending] = {}
        self._lifecycle: Dict[str, Dict[str, object]] = {}
        self._sessions: Dict[str, api.Session] = {}
        self._worker_tasks: List[asyncio.Task] = []
        self._journal: Optional[RunJournal] = None
        self._journal_lock = threading.Lock()
        self._stopped = asyncio.Event()
        self._draining = False
        self._queue_peak = 0
        # Circuit breaker over exact simulation: consecutive worker
        # errors (never client 400s) trip it open for breaker_reset_s.
        self._breaker_failures = 0
        self._breaker_open_until: Optional[float] = None

    # -- small helpers --------------------------------------------------
    def _now(self) -> float:
        """Seconds since daemon start (lifecycle/trace time base)."""
        return time.monotonic() - self._t0

    def _session(self, tenant: str) -> api.Session:
        session = self._sessions.get(tenant)
        if session is None:
            session = self._sessions[tenant] = api.Session(tenant)
        return session

    @staticmethod
    def report_path(request_id: str) -> Path:
        """Durable location of one finished report (content-addressed)."""
        return (
            sim_cache.cache_dir()
            / "serve"
            / "reports"
            / request_id[:2]
            / f"{request_id}.json"
        )

    def _counter(self, name: str):
        return self.metrics.counter(name)

    def _set_queue_depth(self) -> None:
        self.metrics.gauge("serve.queue_depth").set(self._queue.qsize())

    def _journal_record(self, *args, **kwargs) -> None:
        if self._journal is None:
            return
        with self._journal_lock:
            self._journal.record_job(*args, **kwargs)

    # -- overload protection ---------------------------------------------
    def _retry_after_s(self) -> int:
        """Advisory client back-off: how long until the current queue has
        drained through the worker pool, at the observed warm p99 (with a
        floor so a cold daemon still answers something sane)."""
        p99_s = (
            self.metrics.histogram(
                "serve.latency_ms.simulate", _LATENCY_BUCKETS
            ).quantile(0.99)
            / 1e3
        )
        per_request = max(p99_s, 0.05)
        depth = self._queue.qsize()
        return max(1, math.ceil(depth * per_request / self.workers))

    def _breaker_open(self) -> bool:
        """True while exact simulation is tripped over to the surrogate.

        Past the reset interval the breaker goes half-open: the next
        request probes the exact path, and a single further failure
        re-opens it immediately.
        """
        if self._breaker_open_until is None:
            return False
        if self._now() < self._breaker_open_until:
            return True
        self._breaker_open_until = None
        self._breaker_failures = max(0, self.breaker_threshold - 1)
        return False

    def _note_breaker(self, ok: bool) -> None:
        if ok:
            self._breaker_failures = 0
            return
        self._breaker_failures += 1
        if (
            self._breaker_failures >= self.breaker_threshold
            and self._breaker_open_until is None
        ):
            self._breaker_open_until = self._now() + self.breaker_reset_s
            self._counter("serve.breaker_trips").inc()

    # -- lifecycle records ----------------------------------------------
    def _record_lifecycle(
        self, pending: _Pending, *, status: str, finished: bool
    ) -> None:
        req = pending.request
        self._lifecycle[pending.request_id] = {
            "id": pending.request_id,
            "tenant": req.tenant,
            "model": req.model,
            "config": req.config,
            "backend": req.backend,
            "received_s": pending.received_s,
            "started_s": pending.started_s,
            "finished_s": self._now() if finished else None,
            "status": status,
            "dedup": pending.dedup,
        }

    # -- startup / recovery ---------------------------------------------
    async def start(self) -> None:
        """Bind, recover journaled work, spawn the worker pool."""
        recovered = self._recover_journaled_requests() if self.resume else []
        try:
            self._journal = RunJournal.create(
                "serve",
                {"host": self.host, "workers": self.workers},
                run_id=f"serve-{journal_mod.new_run_id()}",
            )
        except ExecutionError:
            self._journal = None  # e.g. read-only cache dir: still serve
        for request in recovered:
            self._admit(
                request, charge_quota=False, recovered=True, bounded=False
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]
        if self.on_start is not None:
            self.on_start(self)

    def _recover_journaled_requests(self) -> List[SimulateRequest]:
        """Re-admit accepted-but-unserved requests from crashed daemons.

        Every incomplete ``serve`` journal is scanned: requests journaled
        ``accepted`` with neither a ``done`` line nor a stored report are
        rebuilt through the same validation as the HTTP path.  Each
        scanned journal is then marked settled so a crash loop cannot
        re-recover it forever.
        """
        recovered: List[SimulateRequest] = []
        seen_ids = set()
        for run_id in journal_mod.list_runs():
            try:
                old = RunJournal.load(run_id)
            except ExecutionError:
                continue
            if old.header.get("kind") != "serve" or old.is_complete():
                continue
            done = old.completed_fingerprints()
            for line in old.lines:
                if line.get("event") != "job":
                    continue
                if line.get("status") != "accepted":
                    continue
                request_id = line.get("fp")
                spec = line.get("request")
                if (
                    not request_id
                    or request_id in seen_ids
                    or request_id in done
                    or not isinstance(spec, dict)
                    or self.report_path(request_id).is_file()
                ):
                    continue
                try:
                    recovered.append(build_simulate_request(spec, {}))
                    seen_ids.add(request_id)
                except ProtocolError:
                    continue  # schema drift across versions: drop it
            try:
                old.record_event("complete", resumed=True)
                old.close()
            except OSError:
                pass
        self.stats.recovered = len(recovered)
        return recovered

    # -- serving loop ----------------------------------------------------
    async def run(self) -> None:
        """Start, install signal handlers, serve until shut down."""
        await self.start()
        loop = asyncio.get_running_loop()
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        signum,
                        lambda: asyncio.ensure_future(self.shutdown()),
                    )
                except (NotImplementedError, RuntimeError):
                    pass
        await self._stopped.wait()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, optionally drain the queue, journal, exit."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            await self._queue.join()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        for pending in list(self._inflight.values()):
            if not pending.future.done():
                pending.future.set_result(
                    (503, error_body(503, "daemon shutting down"))
                )
        self._inflight.clear()
        if self._journal is not None:
            with self._journal_lock:
                self._journal.record_event(
                    "complete",
                    served=self.stats.completed,
                    failed=self.stats.failed,
                )
                self._journal.close()
            self._journal = None
        self._stopped.set()

    # -- connection handling ---------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                writer.write(
                    render_response(exc.status, error_body(exc.status, str(exc)))
                )
                await writer.drain()
                return
            if request is None:
                return
            status, body, headers = await self._route(request)
            self._counter(f"serve.responses.{status}").inc()
            writer.write(
                render_response(status, body, extra_headers=headers)
            )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, request: Request
    ) -> Tuple[int, bytes, List[Tuple[str, str]]]:
        t_start = time.monotonic()
        path = request.path
        if path == "/v1/simulate":
            endpoint = "simulate"
            if request.method != "POST":
                return 405, error_body(405, "use POST /v1/simulate"), []
            outcome = await self._handle_simulate(request)
        elif path == "/v1/healthz":
            endpoint = "healthz"
            outcome = self._handle_healthz()
        elif path == "/v1/backends":
            endpoint = "backends"
            outcome = self._handle_backends()
        elif path.startswith("/v1/report/"):
            endpoint = "report"
            outcome = self._handle_report(path[len("/v1/report/"):])
        elif path == "/v1/trace" or path.startswith("/v1/trace/"):
            endpoint = "trace"
            outcome = self._handle_trace(path[len("/v1/trace"):].lstrip("/"))
        else:
            endpoint = "unknown"
            outcome = (
                404,
                error_body(
                    404,
                    f"unknown endpoint {path!r} (have: /v1/simulate, "
                    "/v1/report/<id>, /v1/trace[/<id>], /v1/backends, "
                    "/v1/healthz)",
                ),
                [],
            )
        self._counter(f"serve.requests.{endpoint}").inc()
        self.metrics.histogram(
            f"serve.latency_ms.{endpoint}", _LATENCY_BUCKETS
        ).observe((time.monotonic() - t_start) * 1e3)
        return outcome

    # -- POST /v1/simulate -----------------------------------------------
    def _admit(
        self,
        request: SimulateRequest,
        *,
        charge_quota: bool = True,
        recovered: bool = False,
        bounded: bool = True,
        request_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> Tuple[
        Optional[_Pending], Optional[Tuple[int, bytes, List[Tuple[str, str]]]]
    ]:
        """Admit one validated request (no awaits: atomic in the loop).

        Returns ``(pending, None)`` on success or ``(None, (status,
        body, headers))`` when the request is shed (503, bounded queue
        full) or the tenant is over quota (429).  Journal-recovered
        requests bypass the bound (``bounded=False``): they were already
        accepted once.
        """
        if request_id is None:
            request_id = self._request_id_sync(request)
        pending = self._inflight.get(request_id)
        if pending is not None:
            pending.dedup += 1
            self._counter("serve.dedup_hits").inc()
            # several waiters share one execution: the most permissive
            # deadline (None = none at all) governs it
            if pending.deadline_s is not None:
                pending.deadline_s = (
                    None
                    if deadline_s is None
                    else max(pending.deadline_s, deadline_s)
                )
            return pending, None
        if (
            bounded
            and self.max_queue
            and self._queue.qsize() >= self.max_queue
        ):
            retry_after = self._retry_after_s()
            self._counter("serve.shed").inc()
            return None, (
                503,
                error_body(
                    503,
                    f"admission queue is full ({self.max_queue} deep); "
                    f"retry in ~{retry_after}s",
                ),
                [("Retry-After", str(retry_after))],
            )
        if charge_quota and not self.quotas.admit(request.tenant):
            self._counter("serve.quota_rejections").inc()
            return None, (
                429,
                error_body(
                    429,
                    f"tenant {request.tenant!r} is over its request quota "
                    f"({self.quotas.rate:g}/s, burst "
                    f"{self.quotas.burst:g}); retry later",
                ),
                [],
            )
        loop = asyncio.get_running_loop()
        pending = _Pending(
            request=request,
            request_id=request_id,
            future=loop.create_future(),
            received_s=self._now(),
            deadline_s=deadline_s,
        )
        self._inflight[request_id] = pending
        self.stats.accepted += 1
        self._journal_record(
            request_id, "accepted", request=request.to_dict()
        )
        self._record_lifecycle(pending, status="queued", finished=False)
        self._seq += 1
        self._queue.put_nowait((request.priority, self._seq, pending))
        self._set_queue_depth()
        self._queue_peak = max(self._queue_peak, self._queue.qsize())
        self.metrics.gauge("serve.queue_peak").set(self._queue_peak)
        if recovered:
            self._counter("serve.recovered").inc()
        return pending, None

    def _request_id_sync(self, request: SimulateRequest) -> str:
        session = self._session(request.tenant)
        return session.fingerprint(
            request.model,
            request.config,
            request.steps,
            batch_size=request.batch_size,
            frequency_scale=request.frequency_scale,
            backend=request.backend,
            surrogate=request.surrogate,
        )

    def _parse_deadline(self, http_request: Request) -> Optional[float]:
        """Absolute expiry from ``X-Repro-Deadline-Ms`` (None = none)."""
        raw = http_request.header(DEADLINE_HEADER)
        if not raw:
            return None
        try:
            budget_ms = int(raw)
        except ValueError:
            raise ProtocolError(
                f"invalid {DEADLINE_HEADER} value {raw!r} "
                "(expected a positive integer of milliseconds)"
            )
        if budget_ms <= 0:
            raise ProtocolError(
                f"invalid {DEADLINE_HEADER} value {raw!r} "
                "(expected a positive integer of milliseconds)"
            )
        return self._now() + budget_ms / 1e3

    async def _handle_simulate(
        self, http_request: Request
    ) -> Tuple[int, bytes, List[Tuple[str, str]]]:
        try:
            request = parse_simulate_request(
                http_request.body, http_request.headers
            )
            deadline_s = self._parse_deadline(http_request)
        except ProtocolError as exc:
            return exc.status, error_body(exc.status, str(exc)), []
        if self._draining:
            return 503, error_body(503, "daemon is draining"), []
        # fingerprinting builds the model graph on first sight — do it off
        # the loop; everything after is await-free, hence dedup-atomic
        try:
            request_id = await asyncio.to_thread(
                self._request_id_sync, request
            )
        except ReproError as exc:
            return 400, error_body(400, str(exc)), []
        id_header = [("X-Repro-Request-Id", request_id)]

        body = self._read_stored_report(request_id)
        if body is not None:
            self._counter("serve.store_hits").inc()
            return (
                200,
                body,
                id_header + [("X-Repro-Served-From", "store")],
            )

        pending, rejection = self._admit(
            request, request_id=request_id, deadline_s=deadline_s
        )
        if rejection is not None:
            return rejection[0], rejection[1], id_header + rejection[2]
        dedup = pending.request is not request
        if not request.wait:
            body = (
                json.dumps(
                    {
                        "schema": SERVE_SCHEMA,
                        "id": request_id,
                        "status": "inflight" if dedup else "queued",
                        "tenant": request.tenant,
                    },
                    sort_keys=True,
                )
                + "\n"
            ).encode()
            return 202, body, id_header
        status, body = await asyncio.shield(pending.future)
        served_from = "dedup" if dedup else "run"
        headers = id_header + [("X-Repro-Served-From", served_from)]
        if pending.degraded:
            headers.append(("X-Repro-Degraded", "surrogate"))
        return status, body, headers

    # -- worker pool -------------------------------------------------------
    async def _worker_loop(self) -> None:
        while True:
            _priority, _seq, pending = await self._queue.get()
            self._set_queue_depth()
            if (
                pending.deadline_s is not None
                and self._now() > pending.deadline_s
            ):
                # expired while queued: answer 504 without burning a worker
                self._counter("serve.deadline_expired").inc()
                self.stats.failed += 1
                self._record_lifecycle(
                    pending, status="expired", finished=True
                )
                self._journal_record(pending.request_id, "expired")
                self._inflight.pop(pending.request_id, None)
                if not pending.future.done():
                    pending.future.set_result(
                        (
                            504,
                            error_body(
                                504,
                                "deadline expired after "
                                f"{self._now() - pending.received_s:.3f}s "
                                "in queue",
                            ),
                        )
                    )
                self._queue.task_done()
                continue
            pending.started_s = self._now()
            self._record_lifecycle(pending, status="running", finished=False)
            try:
                status, body = await asyncio.to_thread(
                    self._execute, pending
                )
            except asyncio.CancelledError:
                self._queue.task_done()
                raise
            except BaseException as exc:  # noqa: BLE001 - worker never dies
                status, body = 500, error_body(500, repr(exc))
            # breaker accounting: only infrastructure failures (500s)
            # count — client errors (400) say nothing about our health
            if status >= 500:
                self._note_breaker(ok=False)
            elif status == 200:
                self._note_breaker(ok=True)
            if status == 200:
                self.stats.completed += 1
                self._counter("serve.completed").inc()
                self._record_lifecycle(pending, status="done", finished=True)
            else:
                self.stats.failed += 1
                self._counter("serve.errors").inc()
                self._record_lifecycle(pending, status="error", finished=True)
            self._inflight.pop(pending.request_id, None)
            if not pending.future.done():
                pending.future.set_result((status, body))
            self._queue.task_done()

    def _execute(self, pending: _Pending) -> Tuple[int, bytes]:
        """Run one request to a stored canonical report (worker thread)."""
        request = pending.request
        session = self._session(request.tenant)
        _chaos.maybe_delay("serve.execute")
        if self._breaker_open() and not request.surrogate:
            degraded = self._execute_degraded(pending)
            if degraded is not None:
                return degraded
        try:
            report = session.simulate(**request.simulate_kwargs())
        except ReproError as exc:
            self._journal_record(
                pending.request_id, "failed", error=repr(exc)
            )
            return 400, error_body(400, str(exc))
        text = report.to_json() + "\n"
        self._store_report(pending.request_id, text)
        return 200, text.encode()

    def _execute_degraded(self, pending: _Pending) -> Optional[Tuple[int, bytes]]:
        """Surrogate-estimate a request under a tripped breaker.

        Returns None when no trained surrogate can answer it (the caller
        falls back to the exact path).  Estimates are never written to
        the report store — the journal keeps the request ``accepted``, so
        the exact report is computed once the breaker closes (or after a
        restart).
        """
        request = pending.request
        session = self._session(request.tenant)
        try:
            report = session.simulate(
                **{**request.simulate_kwargs(), "surrogate": True}
            )
        except ReproError:
            return None
        info = getattr(report, "surrogate", None)
        if not isinstance(info, dict) or info.get("mode") != "surrogate":
            return None  # no trained surrogate: probe the exact path
        pending.degraded = True
        self._counter("serve.degraded").inc()
        self._journal_record(pending.request_id, "degraded")
        return 200, (report.to_json() + "\n").encode()

    @staticmethod
    def sidecar_path(request_id: str) -> Path:
        """Checksum sidecar beside one stored report."""
        path = ServeDaemon.report_path(request_id)
        return path.with_name(path.name + ".sha256")

    def _store_report(self, request_id: str, text: str) -> None:
        """Persist one report + checksum sidecar (atomic, degradable).

        The sidecar hashes the *true* bytes and lands first, so a torn
        or corrupted report write is always detectable; a store that
        cannot be written degrades to serving from memory (the journal
        keeps the request re-runnable) instead of failing the request.
        """
        path = self.report_path(request_id)
        data = text.encode()
        digest = hashlib.sha256(data).hexdigest()
        try:
            data = _chaos.mangle(
                "serve.report_write", data, token=request_id
            )
            path.parent.mkdir(parents=True, exist_ok=True)
            sidecar = self.sidecar_path(request_id)
            tmp_side = sidecar.with_name(sidecar.name + ".tmp")
            tmp_side.write_text(digest + "\n")
            tmp_side.replace(sidecar)
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_bytes(data)
            tmp.replace(path)
        except OSError as exc:
            sim_cache.note_write_failure(
                exc, f"serve report store for {request_id[:12]}…"
            )
            return
        sim_cache.note_write_success()
        self._journal_record(request_id, "done")

    def _read_stored_report(self, request_id: str) -> Optional[bytes]:
        """Stored report bytes, integrity-checked — or None.

        Verification policy follows ``REPRO_VERIFY_READS``; a sidecar
        mismatch quarantines report *and* sidecar and returns None, so
        the caller recomputes instead of serving corrupt bytes.  Reports
        from before the sidecar era serve unverified (``fsck`` flags
        them).
        """
        stored = self.report_path(request_id)
        try:
            data = stored.read_bytes()
        except OSError:
            return None
        sidecar = self.sidecar_path(request_id)
        if sim_cache.should_verify() and sidecar.is_file():
            try:
                recorded = sidecar.read_text().strip()
            except OSError:
                recorded = ""
            if recorded and hashlib.sha256(data).hexdigest() != recorded:
                self._counter("serve.report_corrupt").inc()
                GLOBAL_REGISTRY.counter("serve.corrupt_reports").inc()
                sim_cache.quarantine(stored)
                sim_cache.quarantine(sidecar)
                return None
        return data

    # -- GET endpoints -----------------------------------------------------
    def _handle_report(
        self, request_id: str
    ) -> Tuple[int, bytes, List[Tuple[str, str]]]:
        if not request_id or "/" in request_id or request_id.startswith("."):
            return 400, error_body(400, f"invalid report id {request_id!r}"), []
        body = self._read_stored_report(request_id)
        if body is None:
            if request_id in self._inflight:
                return (
                    202,
                    (
                        json.dumps(
                            {
                                "schema": SERVE_SCHEMA,
                                "id": request_id,
                                "status": "inflight",
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    ).encode(),
                    [],
                )
            return 404, error_body(404, f"no report {request_id!r}"), []
        return (
            200,
            body,
            [("X-Repro-Served-From", "store")],
        )

    def _handle_trace(
        self, request_id: str
    ) -> Tuple[int, bytes, List[Tuple[str, str]]]:
        from ..obs.trace import build_request_trace_events, to_chrome_payload

        if request_id:
            record = self._lifecycle.get(request_id)
            if record is None:
                return (
                    404,
                    error_body(
                        404,
                        f"no lifecycle for {request_id!r} in this daemon's "
                        "life (traces are per-process; reports persist)",
                    ),
                    [],
                )
            records = [record]
        else:
            records = [
                self._lifecycle[k] for k in sorted(self._lifecycle)
            ]
        events = build_request_trace_events(records)
        payload = to_chrome_payload(
            events, other_data={"requests": len(records)}
        )
        return 200, (canonical_dumps(payload) + "\n").encode(), []

    def _handle_backends(self) -> Tuple[int, bytes, List[Tuple[str, str]]]:
        from ..hardware import registry

        backends = {
            name: registry.get(name).describe().to_dict()
            for name in registry.list_backends()
        }
        body = (
            canonical_dumps(
                {"schema": SERVE_SCHEMA, "backends": backends}, indent=2
            )
            + "\n"
        ).encode()
        return 200, body, []

    def _handle_healthz(self) -> Tuple[int, bytes, List[Tuple[str, str]]]:
        latency = self.metrics.histogram(
            "serve.latency_ms.simulate", _LATENCY_BUCKETS
        )
        payload = {
            "schema": SERVE_SCHEMA,
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(self._now(), 3),
            "workers": self.workers,
            "queue_depth": self._queue.qsize(),
            "queue_peak": self._queue_peak,
            "max_queue": self.max_queue,
            "breaker": {
                "open": self._breaker_open(),
                "consecutive_failures": self._breaker_failures,
            },
            "inflight": len(self._inflight),
            "accepted": self.stats.accepted,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "recovered": self.stats.recovered,
            "counters": {
                name: value
                for name, value in self.metrics.snapshot().items()
                if not isinstance(value, tuple)
            },
            "latency_ms": {
                "count": latency.count,
                "mean": round(latency.mean(), 3),
                "p50": round(latency.quantile(0.5), 3),
                "p99": round(latency.quantile(0.99), 3),
            },
            "cache": sim_cache.stats(),
            "integrity": {
                name: value
                for name, value in GLOBAL_REGISTRY.snapshot().items()
                if not isinstance(value, tuple)
            },
            "tenants": {
                "quota": self.quotas.snapshot(),
                "cache": sim_cache.tenant_stats(),
            },
        }
        body = (canonical_dumps(payload, indent=2) + "\n").encode()
        return 200, body, []


# ---------------------------------------------------------------------------
# embedded harness (tests, benchmarks)
# ---------------------------------------------------------------------------
class DaemonHandle:
    """A daemon running on a background thread's event loop."""

    def __init__(
        self, daemon: ServeDaemon, loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ):
        self.daemon = daemon
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.daemon.port

    @property
    def host(self) -> str:
        return self.daemon.host

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.daemon.shutdown(drain=drain), self._loop
        )
        future.result(timeout=timeout)
        self._thread.join(timeout=timeout)


def start_in_thread(**kwargs) -> DaemonHandle:
    """Run a :class:`ServeDaemon` on a daemon thread; returns once the
    port is bound.  Tests and benchmarks embed the service this way."""
    daemon = ServeDaemon(**kwargs)
    started = threading.Event()
    startup_error: List[BaseException] = []
    loop = asyncio.new_event_loop()

    async def _main() -> None:
        try:
            await daemon.start()
        except BaseException as exc:
            startup_error.append(exc)
            raise
        finally:
            started.set()
        await daemon._stopped.wait()

    def _runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_main())
        except BaseException:
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=_runner, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise ExecutionError("serve daemon failed to start within 30s")
    if startup_error:
        thread.join(timeout=5.0)
        raise startup_error[0]
    return DaemonHandle(daemon, loop, thread)
