"""Minimal HTTP/1.1 layer over asyncio streams (stdlib only).

The serve daemon speaks just enough HTTP for JSON request/response
traffic from ``curl``, load generators and the test-suite client:

* request line + headers + optional ``Content-Length`` body;
* one request per connection (``Connection: close`` on every response —
  the daemon's latency budget is dominated by simulation, not TCP
  handshakes, and close-per-request keeps the state machine trivial);
* hard limits on header and body size so a misbehaving client cannot
  balloon daemon memory.

Deliberately *not* here: TLS, chunked transfer, keep-alive, HTTP/2.
The daemon binds to loopback by default; anything fancier belongs in a
reverse proxy in front of it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from ..errors import ProtocolError

#: Upper bound on the request head (request line + headers).
MAX_HEAD_BYTES = 32 * 1024

#: Upper bound on a request body (simulate requests are tiny JSON).
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str  # raw request target, query string included
    headers: Dict[str, str]  # keys lower-cased
    body: bytes = b""
    path: str = field(init=False)
    query: Dict[str, str] = field(init=False)

    def __post_init__(self) -> None:
        split = urlsplit(self.target)
        self.path = unquote(split.path) or "/"
        self.query = dict(parse_qsl(split.query))

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Request]:
    """Read one request from ``reader``.

    Returns ``None`` on a clean EOF before any bytes (client closed an
    idle connection); raises :class:`~repro.errors.ProtocolError` with
    the HTTP status to answer for anything malformed or over-limit.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated request head", status=400)
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head too large", status=431)
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError("request head too large", status=431)

    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise ProtocolError("undecodable request head", status=400)
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise ProtocolError(f"malformed request line {lines[0]!r}", status=400)
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header {line!r}", status=400)
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(
            f"invalid content-length {length_text!r}", status=400
        )
    if length < 0:
        raise ProtocolError(f"invalid content-length {length}", status=400)
    if length > MAX_BODY_BYTES:
        raise ProtocolError(
            f"body of {length} bytes exceeds {MAX_BODY_BYTES}", status=413
        )
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("truncated request body", status=400)
    return Request(method=method, target=target, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: Optional[List[Tuple[str, str]]] = None,
) -> bytes:
    """Serialize one complete ``Connection: close`` response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in extra_headers or ():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
