"""The serving contract: request schema and JSON helpers.

``POST /v1/simulate`` accepts a JSON object with the fields of
:class:`SimulateRequest`; everything else in the body is rejected rather
than silently ignored, so client typos (``"modle"``) surface as 400s.
Validation happens *before* a request is admitted, queued or charged
against a tenant quota — a malformed request never consumes capacity.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from ..errors import ProtocolError

#: Protocol version tag answered in every endpoint's envelope.
SERVE_SCHEMA = 1

#: Tenant used when neither the body nor the header names one.
DEFAULT_TENANT = "anonymous"

#: Default request priority (lower runs sooner).
DEFAULT_PRIORITY = 100

#: Header carrying the tenant identity (body field wins when both given).
TENANT_HEADER = "x-repro-tenant"

_ALLOWED_FIELDS = {
    "model",
    "config",
    "backend",
    "steps",
    "batch_size",
    "frequency_scale",
    "surrogate",
    "tenant",
    "priority",
    "wait",
}


@dataclass(frozen=True)
class SimulateRequest:
    """One validated, normalized simulate request."""

    model: str
    config: Optional[str] = None
    backend: Optional[str] = None
    steps: int = 3
    batch_size: Optional[int] = None
    frequency_scale: float = 1.0
    surrogate: bool = False
    tenant: str = DEFAULT_TENANT
    priority: int = DEFAULT_PRIORITY
    wait: bool = True

    def simulate_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for :meth:`repro.api.Session.simulate`."""
        return {
            "model": self.model,
            "config": self.config,
            "steps": self.steps,
            "batch_size": self.batch_size,
            "frequency_scale": self.frequency_scale,
            "backend": self.backend,
            "surrogate": self.surrogate,
        }

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message, status=400)


def parse_simulate_request(
    body: bytes, headers: Optional[Dict[str, str]] = None
) -> SimulateRequest:
    """Validate a ``POST /v1/simulate`` body into a request object.

    Raises :class:`~repro.errors.ProtocolError` (status 400) with a
    one-line reason on any malformed field; the daemon answers it as a
    JSON error without touching queue, quota or simulator.
    """
    try:
        data = json.loads(body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"body is not valid JSON: {exc}", status=400)
    _require(isinstance(data, dict), "body must be a JSON object")
    unknown = sorted(set(data) - _ALLOWED_FIELDS)
    _require(
        not unknown,
        f"unknown field(s) {', '.join(unknown)} "
        f"(allowed: {', '.join(sorted(_ALLOWED_FIELDS))})",
    )
    return build_simulate_request(data, headers or {})


def build_simulate_request(
    data: Dict[str, object], headers: Dict[str, str]
) -> SimulateRequest:
    """Validate an already-parsed request mapping (journal recovery path
    shares this with the HTTP path so both enforce one contract)."""
    from ..api import list_backends, list_configurations
    from ..nn.models import available_models

    model = data.get("model")
    _require(isinstance(model, str) and bool(model), "missing field 'model'")
    models = available_models()
    _require(
        model in models,
        f"unknown model {model!r} (available: {', '.join(models)})",
    )

    backend = data.get("backend")
    if backend is not None:
        _require(isinstance(backend, str), "'backend' must be a string")
        backends = list_backends()
        _require(
            backend in backends,
            f"unknown backend {backend!r} "
            f"(registered: {', '.join(backends)})",
        )
    config = data.get("config")
    if config is not None:
        _require(isinstance(config, str), "'config' must be a string")
        effective_backend = backend if backend is not None else None
        from ..api import DEFAULT_BACKEND

        configurations = list_configurations(
            effective_backend if effective_backend else DEFAULT_BACKEND
        )
        _require(
            config in configurations,
            f"unknown configuration {config!r} for backend "
            f"{effective_backend or DEFAULT_BACKEND} "
            f"(available: {', '.join(configurations)})",
        )

    steps = data.get("steps", 3)
    _require(
        isinstance(steps, int) and not isinstance(steps, bool) and steps >= 1,
        f"'steps' must be an integer >= 1, got {steps!r}",
    )
    batch_size = data.get("batch_size")
    if batch_size is not None:
        _require(
            isinstance(batch_size, int)
            and not isinstance(batch_size, bool)
            and batch_size >= 1,
            f"'batch_size' must be an integer >= 1, got {batch_size!r}",
        )
    frequency_scale = data.get("frequency_scale", 1.0)
    _require(
        isinstance(frequency_scale, (int, float))
        and not isinstance(frequency_scale, bool)
        and frequency_scale > 0,
        f"'frequency_scale' must be a positive number, "
        f"got {frequency_scale!r}",
    )
    surrogate = data.get("surrogate", False)
    _require(
        isinstance(surrogate, bool),
        f"'surrogate' must be a boolean, got {surrogate!r}",
    )
    wait = data.get("wait", True)
    _require(isinstance(wait, bool), f"'wait' must be a boolean, got {wait!r}")
    priority = data.get("priority", DEFAULT_PRIORITY)
    _require(
        isinstance(priority, int) and not isinstance(priority, bool),
        f"'priority' must be an integer, got {priority!r}",
    )

    tenant = data.get("tenant", headers.get(TENANT_HEADER) or DEFAULT_TENANT)
    _require(
        isinstance(tenant, str)
        and bool(tenant)
        and "/" not in tenant
        and not tenant.startswith("."),
        f"invalid tenant {tenant!r}",
    )

    return SimulateRequest(
        model=model,
        config=config,
        backend=backend,
        steps=steps,
        batch_size=batch_size,
        frequency_scale=float(frequency_scale),
        surrogate=surrogate,
        tenant=tenant,
        priority=priority,
        wait=wait,
    )


def error_body(status: int, message: str) -> bytes:
    """Canonical JSON error payload."""
    return (
        json.dumps(
            {"schema": SERVE_SCHEMA, "error": message, "status": status},
            sort_keys=True,
        )
        + "\n"
    ).encode()
