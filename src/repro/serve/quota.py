"""Per-tenant token-bucket admission control.

Every tenant gets an independent bucket: ``burst`` tokens of capacity,
refilled continuously at ``rate`` tokens/second.  Admitting a request
costs one token; a dry bucket means 429.  Deduplicated requests and
re-served stored reports are free — the quota protects *simulation*
capacity, which is the only scarce resource, not cache lookups.

``rate <= 0`` disables quotas entirely (every tenant always admitted),
which is the daemon default; CI and multi-tenant deployments pass
``--quota RATE[:BURST]``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from ..errors import ServeError


class TokenBucket:
    """One tenant's bucket (monotonic-clock refill)."""

    __slots__ = ("rate", "burst", "tokens", "_last", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if burst < 1:
            raise ServeError(f"quota burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)

    def try_acquire(self, cost: float = 1.0) -> bool:
        self._refill()
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    @property
    def remaining(self) -> float:
        self._refill()
        return self.tokens


class QuotaTable:
    """Token buckets keyed by tenant, plus admission counters."""

    def __init__(self, rate: float = 0.0, burst: Optional[float] = None):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate)
        self.enabled = self.rate > 0
        self._buckets: Dict[str, TokenBucket] = {}
        self._admitted: Dict[str, int] = {}
        self._rejected: Dict[str, int] = {}

    def admit(self, tenant: str) -> bool:
        """Charge one request to ``tenant``; False when over quota."""
        if not self.enabled:
            self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(self.rate, self.burst)
        if bucket.try_acquire():
            self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
            return True
        self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
        return False

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant admission state for ``/v1/healthz``."""
        tenants = set(self._admitted) | set(self._rejected) | set(
            self._buckets
        )
        out: Dict[str, Dict[str, object]] = {}
        for tenant in sorted(tenants):
            bucket = self._buckets.get(tenant)
            out[tenant] = {
                "admitted": self._admitted.get(tenant, 0),
                "rejected": self._rejected.get(tenant, 0),
                "remaining_tokens": (
                    round(bucket.remaining, 3) if bucket is not None else None
                ),
            }
        return out
