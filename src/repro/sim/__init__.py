"""Discrete-event, trace-driven simulator (paper section V-A)."""

from .activity import COMPUTE, DATA_MOVEMENT, SYNC, ActivityTracker, TimeBreakdown
from .devices import FixedPoolExecutor, SlotDevice
from .engine import Engine, EventHandle
from .policy import PLACEMENTS, SchedulingPolicy
from .results import RunResult
from .simulation import Simulation, simulate
from .tracegen import TaskSpec, compile_kernels, generate_trace, task_uid, trace_stats

__all__ = [
    "ActivityTracker",
    "COMPUTE",
    "DATA_MOVEMENT",
    "Engine",
    "EventHandle",
    "FixedPoolExecutor",
    "PLACEMENTS",
    "RunResult",
    "SYNC",
    "SchedulingPolicy",
    "Simulation",
    "SlotDevice",
    "TaskSpec",
    "TimeBreakdown",
    "compile_kernels",
    "generate_trace",
    "simulate",
    "task_uid",
    "trace_stats",
]
