"""Discrete-event, trace-driven simulator (paper section V-A).

The deprecated ``repro.sim.simulate`` remains importable for backward
compatibility but warns on use and is no longer part of the public
``__all__`` — new code goes through :func:`repro.api.simulate`
(model-level, returns a :class:`~repro.obs.report.RunReport`),
:func:`repro.sim.cache.simulate_cached` (graph-level, cached), or
``Simulation(graph, policy, config).run()`` (graph-level, direct).
"""

from .activity import COMPUTE, DATA_MOVEMENT, SYNC, ActivityTracker, TimeBreakdown
from .devices import FixedPoolExecutor, SlotDevice
from .engine import Engine, EventHandle
from .policy import PLACEMENTS, SchedulingPolicy
from .results import RESULT_SCHEMA_VERSION, RunResult, canonical_dumps
from .simulation import Simulation, simulate  # noqa: F401 (deprecated alias)
from .tracegen import TaskSpec, compile_kernels, generate_trace, task_uid, trace_stats

__all__ = [
    "ActivityTracker",
    "COMPUTE",
    "DATA_MOVEMENT",
    "Engine",
    "EventHandle",
    "FixedPoolExecutor",
    "PLACEMENTS",
    "RESULT_SCHEMA_VERSION",
    "RunResult",
    "SYNC",
    "SchedulingPolicy",
    "Simulation",
    "SlotDevice",
    "TaskSpec",
    "TimeBreakdown",
    "canonical_dumps",
    "compile_kernels",
    "generate_trace",
    "task_uid",
    "trace_stats",
]
