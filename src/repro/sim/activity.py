"""Makespan classification into the paper's three breakdown buckets.

Figure 8 (and 11) break execution time into *operation* (computation on any
device), *data movement* (exposed memory/transfer time) and
*synchronization*.  Concurrent activities overlap, so the tracker sweeps
the timeline: at every instant the bucket is chosen by priority —
computation anywhere counts the instant as operation time; otherwise an
exposed transfer counts it as data movement; otherwise a pending
launch/sync delay counts it as synchronization.  Instants where nothing at
all is in flight (dependency stalls between events) are charged to
synchronization as well, since they are ordering-induced waits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import SimulationError

#: Activity kinds in priority order for interval classification.
COMPUTE = "compute"
DATA_MOVEMENT = "data_movement"
SYNC = "sync"

_KINDS = (COMPUTE, DATA_MOVEMENT, SYNC)


@dataclass(frozen=True)
class TimeBreakdown:
    """Sync / data-movement / operation split of a run (Figure 8 bar)."""

    operation_s: float
    data_movement_s: float
    sync_s: float

    @property
    def total_s(self) -> float:
        return self.operation_s + self.data_movement_s + self.sync_s

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown(
            operation_s=self.operation_s * factor,
            data_movement_s=self.data_movement_s * factor,
            sync_s=self.sync_s * factor,
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "operation_s": self.operation_s,
            "data_movement_s": self.data_movement_s,
            "sync_s": self.sync_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "TimeBreakdown":
        return cls(
            operation_s=data["operation_s"],
            data_movement_s=data["data_movement_s"],
            sync_s=data["sync_s"],
        )


class ActivityTracker:
    """Priority-sweep classifier over concurrent activity counters.

    Counters and buckets are plain scalar attributes rather than dicts —
    ``begin``/``end`` run once per simulated activity edge and dominate the
    tracker's cost, so the sweep avoids hashing on the hot path.
    """

    __slots__ = (
        "_c_compute",
        "_c_move",
        "_c_sync",
        "_b_compute",
        "_b_move",
        "_b_sync",
        "_idle_s",
        "_last_time",
        "_started",
    )

    def __init__(self) -> None:
        self._c_compute = 0
        self._c_move = 0
        self._c_sync = 0
        self._b_compute = 0.0
        self._b_move = 0.0
        self._b_sync = 0.0
        self._idle_s = 0.0
        self._last_time = 0.0
        self._started = False

    def _advance(self, now: float) -> None:
        last = self._last_time
        if now < last:
            raise SimulationError(
                f"activity time went backwards: {now} < {last}"
            )
        elapsed = now - last
        if elapsed > 0:
            # priority sweep: computation > data movement > synchronization
            if self._c_compute > 0:
                self._b_compute += elapsed
            elif self._c_move > 0:
                self._b_move += elapsed
            elif self._c_sync > 0:
                self._b_sync += elapsed
            elif self._started:
                # nothing in flight: dependency-induced idle counts as
                # synchronization once the run has started
                self._b_sync += elapsed
            else:
                self._idle_s += elapsed
        self._last_time = now

    def begin(self, kind: str, now: float) -> None:
        if kind not in _KINDS:
            raise SimulationError(f"unknown activity kind {kind!r}")
        self._advance(now)
        if kind == COMPUTE:
            self._c_compute += 1
        elif kind == DATA_MOVEMENT:
            self._c_move += 1
        else:
            self._c_sync += 1
        self._started = True

    def end(self, kind: str, now: float) -> None:
        if kind not in _KINDS:
            raise SimulationError(f"unknown activity kind {kind!r}")
        self._advance(now)
        if kind == COMPUTE:
            if self._c_compute <= 0:
                raise SimulationError(
                    f"activity {kind!r} ended more than begun"
                )
            self._c_compute -= 1
        elif kind == DATA_MOVEMENT:
            if self._c_move <= 0:
                raise SimulationError(
                    f"activity {kind!r} ended more than begun"
                )
            self._c_move -= 1
        else:
            if self._c_sync <= 0:
                raise SimulationError(
                    f"activity {kind!r} ended more than begun"
                )
            self._c_sync -= 1

    def breakdown(self, now: float) -> TimeBreakdown:
        """Finalize and return the bucket split up to ``now``."""
        self._advance(now)
        return TimeBreakdown(
            operation_s=self._b_compute,
            data_movement_s=self._b_move,
            sync_s=self._b_sync,
        )
