"""Makespan classification into the paper's three breakdown buckets.

Figure 8 (and 11) break execution time into *operation* (computation on any
device), *data movement* (exposed memory/transfer time) and
*synchronization*.  Concurrent activities overlap, so the tracker sweeps
the timeline: at every instant the bucket is chosen by priority —
computation anywhere counts the instant as operation time; otherwise an
exposed transfer counts it as data movement; otherwise a pending
launch/sync delay counts it as synchronization.  Instants where nothing at
all is in flight (dependency stalls between events) are charged to
synchronization as well, since they are ordering-induced waits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import SimulationError

#: Activity kinds in priority order for interval classification.
COMPUTE = "compute"
DATA_MOVEMENT = "data_movement"
SYNC = "sync"

_KINDS = (COMPUTE, DATA_MOVEMENT, SYNC)


@dataclass(frozen=True)
class TimeBreakdown:
    """Sync / data-movement / operation split of a run (Figure 8 bar)."""

    operation_s: float
    data_movement_s: float
    sync_s: float

    @property
    def total_s(self) -> float:
        return self.operation_s + self.data_movement_s + self.sync_s

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown(
            operation_s=self.operation_s * factor,
            data_movement_s=self.data_movement_s * factor,
            sync_s=self.sync_s * factor,
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "operation_s": self.operation_s,
            "data_movement_s": self.data_movement_s,
            "sync_s": self.sync_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "TimeBreakdown":
        return cls(
            operation_s=data["operation_s"],
            data_movement_s=data["data_movement_s"],
            sync_s=data["sync_s"],
        )


class ActivityTracker:
    """Priority-sweep classifier over concurrent activity counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {k: 0 for k in _KINDS}
        self._buckets: Dict[str, float] = {k: 0.0 for k in _KINDS}
        self._idle_s = 0.0
        self._last_time = 0.0
        self._started = False

    def _classify(self) -> str:
        for kind in _KINDS:
            if self._counts[kind] > 0:
                return kind
        return SYNC  # dependency-induced idle counts as synchronization

    def _advance(self, now: float) -> None:
        if now < self._last_time:
            raise SimulationError(
                f"activity time went backwards: {now} < {self._last_time}"
            )
        elapsed = now - self._last_time
        if elapsed > 0:
            if any(self._counts.values()):
                self._buckets[self._classify()] += elapsed
            else:
                # nothing in flight: only meaningful once the run started
                if self._started:
                    self._buckets[SYNC] += elapsed
                else:
                    self._idle_s += elapsed
        self._last_time = now

    def begin(self, kind: str, now: float) -> None:
        if kind not in self._counts:
            raise SimulationError(f"unknown activity kind {kind!r}")
        self._advance(now)
        self._counts[kind] += 1
        self._started = True

    def end(self, kind: str, now: float) -> None:
        if kind not in self._counts:
            raise SimulationError(f"unknown activity kind {kind!r}")
        self._advance(now)
        if self._counts[kind] <= 0:
            raise SimulationError(f"activity {kind!r} ended more than begun")
        self._counts[kind] -= 1

    def breakdown(self, now: float) -> TimeBreakdown:
        """Finalize and return the bucket split up to ``now``."""
        self._advance(now)
        return TimeBreakdown(
            operation_s=self._buckets[COMPUTE],
            data_movement_s=self._buckets[DATA_MOVEMENT],
            sync_s=self._buckets[SYNC],
        )
