"""Content-addressed simulation-result cache (memory + disk tiers).

Every simulation run is identified by a **fingerprint**: a SHA-256 digest
over a canonical serialization of

* the workload graph (ops, costs, tensors, attributes),
* every field of the :class:`~repro.config.SystemConfig` (recursively),
* the scheduling policy's behavioral identity
  (:meth:`~repro.sim.policy.SchedulingPolicy.signature`),
* the effective simulated step count.

The fingerprint is derived from *content*, never supplied by callers, so a
modified configuration can neither collide with nor silently bypass the
cache — the footgun of the old caller-supplied ``cache_key`` mechanism.

Two tiers back the fingerprint:

* an in-process dict (free hits within one run of the evaluation);
* an on-disk store of canonical-JSON :class:`~repro.sim.results.RunResult`
  records under ``<cache-dir>/objects/v<schema>/<aa>/<digest>.json``
  (namespaced by ``CACHE_SCHEMA`` so newer-code entries are invisible to
  older checkouts rather than misread), shared across
  processes — the parallel experiment runner's workers populate it and the
  parent (and every later invocation: pytest, benchmarks, the CLI) reads
  the same entries.  JSON (via the versioned
  :meth:`~repro.sim.results.RunResult.to_dict` round trip) replaces the
  earlier pickle format: entries are inspectable, diffable, and safe to
  load from a shared directory.

The disk tier is content-*verified*, not just content-addressed: every
object is a self-describing envelope ``{"repro_object": 1, "meta": ...,
"sha256": ..., "payload": ...}`` whose ``sha256`` covers the canonical
payload JSON and whose ``meta`` records the run inputs (model, config,
backend, steps, batch size) needed to *recompute* the object.  Reads
verify the checksum per ``REPRO_VERIFY_READS``; anything damaged is
quarantined to ``<cache-dir>/quarantine/`` (a counted
:class:`~repro.errors.CorruptObjectError` event, then a recomputable
miss) — corrupt bytes are never returned.  ``repro cache fsck
[--repair]`` audits the whole store offline (see
:mod:`repro.sim.fsck`).

Persistent write failures (ENOSPC, read-only mounts, dying disks) flip
the store into a memory-only **degraded mode** — one warning line, a
counter, and a periodic re-probe — instead of crashing a batch or the
serve daemon mid-flight.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default ``.repro-cache`` under
  the current working directory);
* ``REPRO_CACHE=0`` — disable the disk tier (the memory tier always runs);
* ``REPRO_VERIFY_READS`` — ``off`` | ``sample`` (default: every 8th disk
  read) | ``always`` — how often disk reads re-hash the payload against
  the embedded checksum (structural validation always happens);
* ``REPRO_DEGRADED_REPROBE_S`` — seconds between disk re-probes while in
  degraded mode (default 30).

``CACHE_SCHEMA`` is folded into every fingerprint; bump it whenever the
simulator's observable behavior changes so stale on-disk results can never
leak into a new code version's outputs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import tempfile
import threading
import time
import weakref
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Optional, Set

from ..chaos import injector as _chaos
from ..config import SystemConfig
from ..errors import CorruptObjectError
from ..nn.graph import Graph
from .policy import SchedulingPolicy
from .results import RunResult, canonical_dumps

#: Schema/behavior version folded into every fingerprint.  2: results carry
#: observability aggregates and the disk tier stores canonical JSON.
#: 3: fault specs join the fingerprint, results carry the fault/recovery
#: log, and disk entries live under a per-schema namespace
#: (``objects/v<N>/``) so entries written by *newer* code are invisible to
#: older code instead of being misread.
# 4: llc_misses clamped >=1 for memory-touching ops feeds the profiler's
# memory ranks, so selection (and thus results) may differ from v3.
# 5: SystemConfig grew the ``backend`` field (hardware-backend registry),
# which joins the config encoding — v4 fingerprints of identical runs no
# longer match, so the namespace advances with it.
# 6: disk objects became checksummed self-describing envelopes
# (repro_object/meta/sha256/payload) — bare-RunResult v5 files would fail
# envelope validation, so the namespace advances with the format.
CACHE_SCHEMA = 6

#: Envelope format tag inside each object file (orthogonal to
#: ``CACHE_SCHEMA``: the namespace isolates *result* semantics, this tag
#: names the container layout).
OBJECT_FORMAT = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLE = "REPRO_CACHE"
_ENV_VERIFY = "REPRO_VERIFY_READS"
_ENV_REPROBE = "REPRO_DEGRADED_REPROBE_S"

#: In ``sample`` mode, one disk read in this many re-hashes the payload.
VERIFY_SAMPLE_EVERY = 8

_memory: Dict[str, RunResult] = {}

#: Hit/miss counters since process start (or the last ``reset_stats``).
#: ``misses`` is the total; ``misses_absent`` (no file) and
#: ``misses_corrupt`` (file failed integrity) break down its disk-side
#: causes so corruption is never mistaken for a cold cache.
_stats = {
    "memory_hits": 0,
    "disk_hits": 0,
    "misses": 0,
    "misses_absent": 0,
    "misses_corrupt": 0,
    "quarantined": 0,
    "stores": 0,
    "write_errors": 0,
    "degraded_skips": 0,
    "pruned_entries": 0,
    "pruned_bytes": 0,
}


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------
def cache_dir() -> Path:
    """Directory of the disk tier (not necessarily existing yet)."""
    return Path(os.environ.get(_ENV_DIR, ".repro-cache"))


def disk_enabled() -> bool:
    return os.environ.get(_ENV_ENABLE, "1") != "0"


_ENV_VALIDATE = "REPRO_VALIDATE"


def validation_enabled() -> bool:
    """True when ``REPRO_VALIDATE`` requests invariant-checked runs."""
    return os.environ.get(_ENV_VALIDATE, "0") not in ("0", "")


def verify_mode() -> str:
    """Read-verification policy: ``off`` | ``sample`` | ``always``."""
    mode = os.environ.get(_ENV_VERIFY, "sample").strip().lower() or "sample"
    if mode not in ("off", "sample", "always"):
        raise ValueError(
            f"{_ENV_VERIFY} must be off, sample or always, got {mode!r}"
        )
    return mode


_verify_lock = threading.Lock()
_verify_reads = 0


def should_verify() -> bool:
    """Whether *this* disk read re-hashes the payload.

    ``sample`` verifies deterministically — the first of every
    :data:`VERIFY_SAMPLE_EVERY` disk reads in a process — rather than by
    coin flip, so a corrupt hot object is caught within a bounded number
    of reads and test runs are reproducible.
    """
    mode = verify_mode()
    if mode == "always":
        return True
    if mode == "off":
        return False
    global _verify_reads
    with _verify_lock:
        sampled = _verify_reads % VERIFY_SAMPLE_EVERY == 0
        _verify_reads += 1
    return sampled


# ---------------------------------------------------------------------------
# degraded (memory-only) mode
# ---------------------------------------------------------------------------
#: Shared by the cache and the run journal: both live on the same
#: filesystem, so persistent write failure on either flips the whole
#: store to memory-only rather than crashing mid-batch.  A periodic
#: re-probe (one real write attempt per interval) ends degradation as
#: soon as the disk recovers.
_DEGRADE_AFTER = 3

_degraded_lock = threading.Lock()
_degraded = {"active": False, "errors": 0, "probe_at": 0.0}


def _reprobe_interval() -> float:
    try:
        return max(0.1, float(os.environ.get(_ENV_REPROBE, "30")))
    except ValueError:
        return 30.0


def degraded() -> bool:
    """True while the store is in memory-only degraded mode."""
    with _degraded_lock:
        return _degraded["active"]


def writes_suppressed() -> bool:
    """True when a disk write should be skipped (degraded, not yet time
    to re-probe).  Callers seeing False must still expect OSError and
    report it via :func:`note_write_failure`."""
    with _degraded_lock:
        if not _degraded["active"]:
            return False
        return time.monotonic() < _degraded["probe_at"]


def note_write_failure(exc: OSError, what: str) -> None:
    """Record one failed disk write; flip to degraded after a streak."""
    from ..obs.metrics import GLOBAL_REGISTRY

    with _degraded_lock:
        _stats["write_errors"] += 1
        _degraded["errors"] += 1
        entered = (
            not _degraded["active"] and _degraded["errors"] >= _DEGRADE_AFTER
        )
        if entered:
            _degraded["active"] = True
        if _degraded["active"]:
            _degraded["probe_at"] = time.monotonic() + _reprobe_interval()
    GLOBAL_REGISTRY.counter("store.write_errors").inc()
    if entered:
        GLOBAL_REGISTRY.gauge("store.degraded").set(1)
        print(
            f"warning: {what}: {exc} — store degraded to memory-only "
            f"(re-probing disk every {_reprobe_interval():g}s)",
            file=sys.stderr,
        )


def note_write_success() -> None:
    """Record one successful disk write; ends degraded mode if active."""
    with _degraded_lock:
        recovered = _degraded["active"]
        _degraded["active"] = False
        _degraded["errors"] = 0
        _degraded["probe_at"] = 0.0
    if recovered:
        from ..obs.metrics import GLOBAL_REGISTRY

        GLOBAL_REGISTRY.gauge("store.degraded").set(0)
        print(
            "store: disk writes recovered, leaving degraded mode",
            file=sys.stderr,
        )


def _reset_degraded() -> None:
    with _degraded_lock:
        _degraded["active"] = False
        _degraded["errors"] = 0
        _degraded["probe_at"] = 0.0


# ---------------------------------------------------------------------------
# multi-tenant accounting
# ---------------------------------------------------------------------------
#: Both tiers are *shared* across tenants — a result is content-addressed,
#: so whoever computes it first serves everyone after — but the serve
#: daemon needs to know who is using what.  A thread-local tenant scope
#: attributes hits/misses/stores, and every fingerprint a tenant touches
#: is appended (once) to ``<cache-dir>/tenants/<tenant>.idx`` so disk
#: footprints can be broken down per namespace.  Entries referenced by
#: several tenants are *shared*: :func:`tenant_disk_usage` reports their
#: bytes once in the combined total, never once per tenant.
_tenant_local = threading.local()

_tenant_stats: Dict[str, Dict[str, int]] = {}

#: Fingerprints already journaled per tenant (write-once dedup).
_tenant_seen: Dict[str, Set[str]] = {}

_tenant_lock = threading.Lock()


@contextmanager
def tenant_scope(tenant: Optional[str]):
    """Attribute cache traffic in the block to ``tenant`` (thread-local)."""
    previous = getattr(_tenant_local, "name", None)
    _tenant_local.name = tenant
    try:
        yield
    finally:
        _tenant_local.name = previous


def current_tenant() -> Optional[str]:
    return getattr(_tenant_local, "name", None)


def _tenants_dir() -> Path:
    return cache_dir() / "tenants"


def _valid_tenant(tenant: str) -> bool:
    return bool(tenant) and "/" not in tenant and not tenant.startswith(".")


def _note_tenant(counter: str, fingerprint: Optional[str] = None) -> None:
    """Charge one event (and optionally one touched fingerprint) to the
    current tenant scope; a no-op outside any scope."""
    tenant = current_tenant()
    if tenant is None or not _valid_tenant(tenant):
        return
    with _tenant_lock:
        stats = _tenant_stats.setdefault(
            tenant, {"hits": 0, "misses": 0, "stores": 0}
        )
        stats[counter] += 1
        if fingerprint is None:
            return
        seen = _tenant_seen.get(tenant)
        if seen is None:
            seen = _tenant_seen[tenant] = _load_tenant_index(tenant)
        if fingerprint in seen:
            return
        seen.add(fingerprint)
    if disk_enabled():
        try:
            directory = _tenants_dir()
            directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                directory / f"{tenant}.idx",
                os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                0o644,
            )
            try:
                os.write(fd, (fingerprint + "\n").encode())
            finally:
                os.close(fd)
        except OSError:
            pass  # accounting degrades, the cache itself is unaffected


def _load_tenant_index(tenant: str) -> Set[str]:
    try:
        text = (_tenants_dir() / f"{tenant}.idx").read_text()
    except OSError:
        return set()
    return {line.strip() for line in text.splitlines() if line.strip()}


def tenant_stats() -> Dict[str, Dict[str, int]]:
    """Per-tenant hit/miss/store counters since process start."""
    with _tenant_lock:
        return {name: dict(stats) for name, stats in _tenant_stats.items()}


def tenant_disk_usage() -> Dict[str, object]:
    """Disk footprint per tenant, with cross-tenant shared bytes once.

    Returns ``{"tenants": {name: {"entries": n, "bytes": b}},
    "shared_entries": k, "shared_bytes": s, "union_entries": u,
    "union_bytes": t}``.  A tenant's ``bytes`` is what *it* references;
    because the tier is content-addressed and shared, entries referenced
    by more than one tenant exist on disk exactly once, so the combined
    ``union_bytes`` counts each of them once — never once per tenant.
    """
    directory = _tenants_dir()
    references: Dict[str, Set[str]] = {}
    if directory.is_dir():
        for index in sorted(directory.glob("*.idx")):
            references[index.stem] = _load_tenant_index(index.stem)
    per_tenant: Dict[str, Dict[str, int]] = {}
    sizes: Dict[str, int] = {}
    claims: Dict[str, int] = {}
    for tenant, prints in references.items():
        entries = 0
        total = 0
        for fingerprint in prints:
            if fingerprint not in sizes:
                try:
                    sizes[fingerprint] = _object_path(fingerprint).stat().st_size
                except OSError:
                    sizes[fingerprint] = -1  # pruned/absent: skip everywhere
            size = sizes[fingerprint]
            if size < 0:
                continue
            claims[fingerprint] = claims.get(fingerprint, 0) + 1
            entries += 1
            total += size
        per_tenant[tenant] = {"entries": entries, "bytes": total}
    shared = [fp for fp, n in claims.items() if n > 1]
    return {
        "tenants": per_tenant,
        "shared_entries": len(shared),
        "shared_bytes": sum(sizes[fp] for fp in shared),
        "union_entries": len(claims),
        "union_bytes": sum(sizes[fp] for fp in claims),
    }


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------
def _encode(value, out) -> None:
    """Append a canonical, type-tagged encoding of ``value`` to ``out``.

    Handles the closed set of types that appear in graphs, configs and
    policy signatures.  Type tags keep e.g. ``1`` and ``"1"`` and ``1.0``
    distinct; floats are encoded by hex to be exact.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        out.append(f"{type(value).__name__}:{value!r};")
    elif isinstance(value, float):
        out.append(f"float:{value.hex()};")
    elif isinstance(value, (list, tuple)):
        out.append(f"seq{len(value)}[")
        for item in value:
            _encode(item, out)
        out.append("]")
    elif isinstance(value, (set, frozenset)):
        out.append(f"set{len(value)}[")
        for item in sorted(value, key=repr):
            _encode(item, out)
        out.append("]")
    elif isinstance(value, dict):
        out.append(f"map{len(value)}[")
        for key in sorted(value, key=repr):
            _encode(key, out)
            _encode(value[key], out)
        out.append("]")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.append(f"dc:{type(value).__name__}[")
        for field in dataclasses.fields(value):
            _encode(getattr(value, field.name), out)
        out.append("]")
    else:
        # enums, odd attr payloads: repr is stable for everything we store
        out.append(f"{type(value).__name__}:{value!r};")


def graph_signature(graph: Graph):
    """Stable structural signature of a workload graph.

    Covers everything the simulator reads: identity fields, per-op costs,
    dependence-defining inputs/outputs/attrs, and tensor sizes (which feed
    GPU working-set/swap modeling).
    """
    ops = tuple(
        (
            op.name,
            op.op_type,
            op.inputs,
            op.outputs,
            (
                op.cost.muls,
                op.cost.adds,
                op.cost.other_flops,
                op.cost.bytes_in,
                op.cost.bytes_out,
                op.cost.parallelism,
            ),
            dict(op.attrs),
        )
        for op in graph.ops
    )
    tensors = {name: spec.nbytes for name, spec in graph.tensors.items()}
    return (
        graph.name,
        graph.batch_size,
        graph.dataset,
        graph.input_bytes,
        ops,
        tensors,
    )


#: Encoded graph signature per graph object (graphs are immutable once
#: simulated; entries evict with the graph, so ids can't go stale).
_graph_sig_cache: Dict[int, str] = {}


def _encoded_graph_signature(graph: Graph) -> str:
    key = id(graph)
    encoded = _graph_sig_cache.get(key)
    if encoded is None:
        parts = []
        _encode(graph_signature(graph), parts)
        encoded = "".join(parts)
        _graph_sig_cache[key] = encoded
        weakref.finalize(graph, _graph_sig_cache.pop, key, None)
    return encoded


#: Encoded SystemConfig per config object.  Configs are frozen dataclasses
#: shared across a sweep's many runs (the api facade memoizes resolved
#: instances), so encoding each once removes the dominant per-fingerprint
#: cost.  Entries evict with the config object, so ids can't go stale.
_config_sig_cache: Dict[int, str] = {}


def config_signature(config: SystemConfig) -> str:
    """Canonical encoding of every field of ``config`` (memoized by
    object identity).  Shared by fingerprinting and the vectorized
    cost-table keying (:mod:`repro.sim.optable`)."""
    key = id(config)
    encoded = _config_sig_cache.get(key)
    if encoded is None:
        parts = []
        _encode(config, parts)
        encoded = "".join(parts)
        _config_sig_cache[key] = encoded
        weakref.finalize(config, _config_sig_cache.pop, key, None)
    return encoded


def run_fingerprint(
    graph: Graph,
    policy: SchedulingPolicy,
    config: SystemConfig,
    steps: Optional[int] = None,
    faults=None,
) -> str:
    """Hex digest identifying one (graph, policy, config, steps, faults)
    run.  ``faults`` is a :class:`~repro.faults.spec.FaultSpec` (or None
    for the fault-free run — the two never share a fingerprint)."""
    effective_steps = (
        steps if steps is not None else config.runtime.measured_steps
    )
    parts = [_encoded_graph_signature(graph)]
    _encode((CACHE_SCHEMA, policy.signature()), parts)
    parts.append(config_signature(config))
    _encode((effective_steps, faults), parts)
    return hashlib.sha256("".join(parts).encode()).hexdigest()


# ---------------------------------------------------------------------------
# tiers
# ---------------------------------------------------------------------------
def _object_path(fingerprint: str) -> Path:
    # per-schema namespace: code only ever reads entries written by the
    # same CACHE_SCHEMA, so an entry written by newer code can never be
    # misinterpreted (or half-understood) by an older checkout
    return (
        cache_dir()
        / "objects"
        / f"v{CACHE_SCHEMA}"
        / fingerprint[:2]
        / f"{fingerprint}.json"
    )


def quarantine_dir() -> Path:
    return cache_dir() / "quarantine"


def object_meta(
    result: RunResult,
    graph: Graph,
    config: SystemConfig,
    faults=None,
) -> Dict[str, object]:
    """Self-describing repair metadata embedded in a disk object.

    Enough for ``fsck --repair`` to *recompute* the object from scratch
    through the public api and check the recomputed fingerprint against
    the damaged file's name.  Runs that cannot be rebuilt this way
    (faulted runs, hand-modified configs) are tagged so fsck quarantines
    them honestly instead of recomputing the wrong thing.
    """
    meta: Dict[str, object] = {
        "model": result.model_name,
        "config": result.config_name,
        "backend": config.backend,
        "steps": result.steps,
        "batch_size": graph.batch_size,
    }
    if faults is not None:
        meta["faulted"] = True
    return meta


def _envelope(result: RunResult, meta: Optional[Dict[str, object]]):
    """Serialize one disk object; returns ``(text, payload_offset)``.

    Key order is deliberate (not sorted): ``meta`` and ``sha256`` sit at
    the head of the file so they survive payload-region damage — the
    tolerant header parse in :func:`extract_meta` is what makes repair
    possible on an object whose payload no longer parses.
    """
    payload_json = result.to_json()
    sha = hashlib.sha256(payload_json.encode()).hexdigest()
    head = (
        '{"repro_object":%d,"meta":%s,"sha256":"%s","payload":'
        % (OBJECT_FORMAT, canonical_dumps(meta or {}), sha)
    )
    return head + payload_json + "}", len(head)


def _load_object_text(
    text: str, path: Path, fingerprint: Optional[str], verify: bool
) -> RunResult:
    """Parse one envelope; raise :class:`CorruptObjectError` on any damage."""
    try:
        envelope = json.loads(text)
    except (json.JSONDecodeError, ValueError) as exc:
        raise CorruptObjectError(path, f"not valid JSON ({exc})", fingerprint)
    if (
        not isinstance(envelope, dict)
        or envelope.get("repro_object") != OBJECT_FORMAT
    ):
        raise CorruptObjectError(
            path, "not a cache-object envelope", fingerprint
        )
    payload = envelope.get("payload")
    recorded = envelope.get("sha256")
    if not isinstance(payload, dict) or not isinstance(recorded, str):
        raise CorruptObjectError(
            path, "envelope is missing payload or sha256", fingerprint
        )
    if verify:
        actual = hashlib.sha256(canonical_dumps(payload).encode()).hexdigest()
        if actual != recorded:
            raise CorruptObjectError(
                path,
                f"checksum mismatch (recorded {recorded[:12]}…, "
                f"actual {actual[:12]}…)",
                fingerprint,
            )
    try:
        return RunResult.from_dict(payload)
    except Exception as exc:
        raise CorruptObjectError(
            path, f"payload does not deserialize ({exc!r})", fingerprint
        )


def read_object(
    path: Path, fingerprint: Optional[str] = None, verify: bool = True
) -> RunResult:
    """Strict loader (fsck, tools): raises :class:`CorruptObjectError`."""
    try:
        text = path.read_text()
    except OSError as exc:
        raise CorruptObjectError(path, f"unreadable ({exc})", fingerprint)
    return _load_object_text(text, path, fingerprint, verify)


def extract_meta(text: str) -> Optional[Dict[str, object]]:
    """Best-effort ``meta`` recovery from a (possibly damaged) envelope.

    Works whenever the damage lies at or after the ``sha256`` field: the
    header prefix up to that marker is re-closed into a tiny valid JSON
    object.  Returns ``None`` when the header itself is gone.
    """
    try:
        envelope = json.loads(text)
        if isinstance(envelope, dict) and isinstance(
            envelope.get("meta"), dict
        ):
            return envelope["meta"]
    except (json.JSONDecodeError, ValueError):
        pass
    head, sep, _rest = text.partition(',"sha256":"')
    if not sep:
        return None
    try:
        envelope = json.loads(head + "}")
    except (json.JSONDecodeError, ValueError):
        return None
    meta = envelope.get("meta") if isinstance(envelope, dict) else None
    return meta if isinstance(meta, dict) else None


def quarantine(path: Path) -> Optional[Path]:
    """Move a damaged file out of the store (never serve it again).

    Mirrors the file's cache-relative path under ``quarantine/`` for
    later forensics; falls back to deletion if even the move fails.
    Returns the quarantined path, or ``None`` when the file is gone.
    """
    try:
        rel = path.resolve().relative_to(cache_dir().resolve())
    except (ValueError, OSError):
        rel = Path(path.name)
    dest = quarantine_dir() / rel
    try:
        dest.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, dest)
        return dest
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
        return None


def _note_corrupt(path: Path, exc: CorruptObjectError) -> None:
    from ..obs.metrics import GLOBAL_REGISTRY

    _stats["misses_corrupt"] += 1
    _stats["quarantined"] += 1
    GLOBAL_REGISTRY.counter("cache.corrupt_objects").inc()
    quarantine(path)
    print(
        f"warning: quarantined corrupt cache object {path.name}: "
        f"{exc.reason}",
        file=sys.stderr,
    )


def get(fingerprint: str) -> Optional[RunResult]:
    """Look up a result by fingerprint (memory first, then disk).

    A disk object that fails structural or (per ``REPRO_VERIFY_READS``)
    checksum validation is quarantined and counted — the caller sees a
    recomputable miss, never corrupt data.
    """
    result = _memory.get(fingerprint)
    if result is not None:
        _stats["memory_hits"] += 1
        _note_tenant("hits", fingerprint)
        return result
    if disk_enabled():
        path = _object_path(fingerprint)
        try:
            text = path.read_text()
        except OSError:
            _stats["misses_absent"] += 1
        else:
            try:
                result = _load_object_text(
                    text, path, fingerprint, should_verify()
                )
            except CorruptObjectError as exc:
                _note_corrupt(path, exc)
                result = None
        if isinstance(result, RunResult):
            _memory[fingerprint] = result
            _stats["disk_hits"] += 1
            _note_tenant("hits", fingerprint)
            try:
                os.utime(path)  # refresh mtime: prune() evicts LRU-first
            except OSError:
                pass
            return result
    else:
        _stats["misses_absent"] += 1
    _stats["misses"] += 1
    _note_tenant("misses")
    return None


def put(
    fingerprint: str,
    result: RunResult,
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Store a result in both tiers (atomic, checksummed on disk).

    ``meta`` (see :func:`object_meta`) makes the disk object repairable
    by ``fsck``; without it the object is still checksummed and
    quarantinable, just not recomputable from the file alone.
    """
    _memory[fingerprint] = result
    _stats["stores"] += 1
    _note_tenant("stores", fingerprint)
    if not disk_enabled():
        return
    if writes_suppressed():
        _stats["degraded_skips"] += 1
        return
    path = _object_path(fingerprint)
    try:
        text, payload_offset = _envelope(result, meta)
        data = _chaos.mangle(
            "cache.object_write",
            text.encode(),
            token=fingerprint,
            protect=payload_offset,
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)  # atomic: concurrent writers both win
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError as exc:
        # read-only/full/odd filesystems degrade to the memory tier
        note_write_failure(exc, f"cache write for {fingerprint[:12]}…")
    else:
        note_write_success()


def clear(disk: bool = True) -> None:
    """Drop the memory tier and (by default) this cache dir's disk tier."""
    _memory.clear()
    with _tenant_lock:
        _tenant_stats.clear()
        _tenant_seen.clear()
    if not disk:
        return
    tenants = _tenants_dir()
    if tenants.is_dir():
        for index in tenants.glob("*.idx"):
            try:
                index.unlink()
            except OSError:
                pass
    objects = cache_dir() / "objects"
    if not objects.is_dir():
        return
    # rglob sweeps every schema namespace (objects/v<N>/<aa>/) as well as
    # legacy layouts: pre-v3 flat shards (objects/<aa>/*.json) and the
    # pre-JSON pickle format (*.pkl)
    for pattern in ("*.json", "*.pkl"):
        for entry in objects.rglob(pattern):
            try:
                entry.unlink()
            except OSError:
                pass


def _disk_entries():
    """Yield ``(mtime, size, path)`` for every disk-tier entry (all schema
    namespaces and legacy layouts)."""
    objects = cache_dir() / "objects"
    if not objects.is_dir():
        return
    for pattern in ("*.json", "*.pkl"):
        for entry in objects.rglob(pattern):
            try:
                stat = entry.stat()
            except OSError:
                continue  # raced with a concurrent prune/clear
            yield (stat.st_mtime, stat.st_size, entry)


def disk_usage() -> Dict[str, int]:
    """Disk-tier footprint: ``{"disk_entries": N, "disk_bytes": B}``."""
    entries = 0
    total = 0
    for _mtime, size, _path in _disk_entries():
        entries += 1
        total += size
    return {"disk_entries": entries, "disk_bytes": total}


def prune(max_bytes: int) -> Dict[str, int]:
    """Evict least-recently-used disk entries until the tier fits
    ``max_bytes``.

    Recency is file mtime — refreshed on every disk hit — so the entries
    that go first are the ones no run has read for the longest.  The
    memory tier is untouched (it dies with the process anyway).  Returns
    ``removed_entries``/``removed_bytes``/``kept_entries``/``kept_bytes``
    and accumulates the removals into :func:`stats` as ``pruned_entries``
    / ``pruned_bytes``.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    entries = sorted(_disk_entries())  # oldest mtime first
    total = sum(size for _m, size, _p in entries)
    removed = 0
    removed_bytes = 0
    for _mtime, size, path in entries:
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        removed += 1
        removed_bytes += size
    _stats["pruned_entries"] += removed
    _stats["pruned_bytes"] += removed_bytes
    return {
        "removed_entries": removed,
        "removed_bytes": removed_bytes,
        "kept_entries": len(entries) - removed,
        "kept_bytes": total,
    }


def stats() -> Dict[str, int]:
    """Snapshot of hit/miss/prune counters (for the benchmark harness).

    ``degraded`` reflects the live memory-only flag (0/1), not a count.
    """
    snapshot = dict(_stats)
    snapshot["degraded"] = 1 if degraded() else 0
    return snapshot


def reset_stats() -> None:
    for key in _stats:
        _stats[key] = 0
    _reset_degraded()


# ---------------------------------------------------------------------------
# cached simulation entry point
# ---------------------------------------------------------------------------
def simulate_cached(
    graph: Graph,
    policy: SchedulingPolicy,
    config: Optional[SystemConfig] = None,
    steps: Optional[int] = None,
    faults=None,
    validate: Optional[bool] = None,
) -> RunResult:
    """Run (or fetch) one simulation, keyed by content fingerprint.

    Drop-in replacement for :func:`repro.sim.simulation.simulate` for any
    run that does not need a live :class:`Simulation` object (timelines,
    device introspection).  ``faults`` (a FaultSpec) is part of the
    fingerprint: faulted and fault-free runs cache independently.

    ``validate`` (default: the ``REPRO_VALIDATE`` environment knob) turns
    on the invariant checker (:mod:`repro.validate.invariants`): cache
    hits get the result-level checks, misses run the full live-simulation
    checks plus a serialization round-trip equivalence check (the exact
    representation the disk tier and the artifacts store), raising
    :class:`~repro.errors.InvariantViolation` on the first broken law.
    """
    from .simulation import Simulation  # local import avoids a cycle

    if config is None:
        from ..config import default_config

        config = default_config()
    if validate is None:
        validate = validation_enabled()
    fingerprint = run_fingerprint(graph, policy, config, steps, faults=faults)
    result = get(fingerprint)
    if result is None:
        result = Simulation(
            graph,
            policy,
            config=config,
            steps=steps,
            faults=faults,
            validate=validate,
        ).run()
        put(
            fingerprint,
            result,
            meta=object_meta(result, graph, config, faults=faults),
        )
        if validate:
            from ..validate.invariants import check_cache_equivalence

            check_cache_equivalence(
                result,
                RunResult.from_json(result.to_json()),
                source="serialization round-trip",
            )
    elif validate:
        from ..validate.invariants import check_result

        check_result(result)
    return result
