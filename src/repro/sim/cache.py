"""Content-addressed simulation-result cache (memory + disk tiers).

Every simulation run is identified by a **fingerprint**: a SHA-256 digest
over a canonical serialization of

* the workload graph (ops, costs, tensors, attributes),
* every field of the :class:`~repro.config.SystemConfig` (recursively),
* the scheduling policy's behavioral identity
  (:meth:`~repro.sim.policy.SchedulingPolicy.signature`),
* the effective simulated step count.

The fingerprint is derived from *content*, never supplied by callers, so a
modified configuration can neither collide with nor silently bypass the
cache — the footgun of the old caller-supplied ``cache_key`` mechanism.

Two tiers back the fingerprint:

* an in-process dict (free hits within one run of the evaluation);
* an on-disk store of canonical-JSON :class:`~repro.sim.results.RunResult`
  records under ``<cache-dir>/objects/v<schema>/<aa>/<digest>.json``
  (namespaced by ``CACHE_SCHEMA`` so newer-code entries are invisible to
  older checkouts rather than misread), shared across
  processes — the parallel experiment runner's workers populate it and the
  parent (and every later invocation: pytest, benchmarks, the CLI) reads
  the same entries.  JSON (via the versioned
  :meth:`~repro.sim.results.RunResult.to_dict` round trip) replaces the
  earlier pickle format: entries are inspectable, diffable, and safe to
  load from a shared directory.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default ``.repro-cache`` under
  the current working directory);
* ``REPRO_CACHE=0`` — disable the disk tier (the memory tier always runs).

``CACHE_SCHEMA`` is folded into every fingerprint; bump it whenever the
simulator's observable behavior changes so stale on-disk results can never
leak into a new code version's outputs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
import threading
import weakref
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Optional, Set

from ..config import SystemConfig
from ..nn.graph import Graph
from .policy import SchedulingPolicy
from .results import RunResult

#: Schema/behavior version folded into every fingerprint.  2: results carry
#: observability aggregates and the disk tier stores canonical JSON.
#: 3: fault specs join the fingerprint, results carry the fault/recovery
#: log, and disk entries live under a per-schema namespace
#: (``objects/v<N>/``) so entries written by *newer* code are invisible to
#: older code instead of being misread.
# 4: llc_misses clamped >=1 for memory-touching ops feeds the profiler's
# memory ranks, so selection (and thus results) may differ from v3.
# 5: SystemConfig grew the ``backend`` field (hardware-backend registry),
# which joins the config encoding — v4 fingerprints of identical runs no
# longer match, so the namespace advances with it.
CACHE_SCHEMA = 5

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLE = "REPRO_CACHE"

_memory: Dict[str, RunResult] = {}

#: Hit/miss counters since process start (or the last ``reset_stats``).
_stats = {
    "memory_hits": 0,
    "disk_hits": 0,
    "misses": 0,
    "stores": 0,
    "pruned_entries": 0,
    "pruned_bytes": 0,
}


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------
def cache_dir() -> Path:
    """Directory of the disk tier (not necessarily existing yet)."""
    return Path(os.environ.get(_ENV_DIR, ".repro-cache"))


def disk_enabled() -> bool:
    return os.environ.get(_ENV_ENABLE, "1") != "0"


_ENV_VALIDATE = "REPRO_VALIDATE"


def validation_enabled() -> bool:
    """True when ``REPRO_VALIDATE`` requests invariant-checked runs."""
    return os.environ.get(_ENV_VALIDATE, "0") not in ("0", "")


# ---------------------------------------------------------------------------
# multi-tenant accounting
# ---------------------------------------------------------------------------
#: Both tiers are *shared* across tenants — a result is content-addressed,
#: so whoever computes it first serves everyone after — but the serve
#: daemon needs to know who is using what.  A thread-local tenant scope
#: attributes hits/misses/stores, and every fingerprint a tenant touches
#: is appended (once) to ``<cache-dir>/tenants/<tenant>.idx`` so disk
#: footprints can be broken down per namespace.  Entries referenced by
#: several tenants are *shared*: :func:`tenant_disk_usage` reports their
#: bytes once in the combined total, never once per tenant.
_tenant_local = threading.local()

_tenant_stats: Dict[str, Dict[str, int]] = {}

#: Fingerprints already journaled per tenant (write-once dedup).
_tenant_seen: Dict[str, Set[str]] = {}

_tenant_lock = threading.Lock()


@contextmanager
def tenant_scope(tenant: Optional[str]):
    """Attribute cache traffic in the block to ``tenant`` (thread-local)."""
    previous = getattr(_tenant_local, "name", None)
    _tenant_local.name = tenant
    try:
        yield
    finally:
        _tenant_local.name = previous


def current_tenant() -> Optional[str]:
    return getattr(_tenant_local, "name", None)


def _tenants_dir() -> Path:
    return cache_dir() / "tenants"


def _valid_tenant(tenant: str) -> bool:
    return bool(tenant) and "/" not in tenant and not tenant.startswith(".")


def _note_tenant(counter: str, fingerprint: Optional[str] = None) -> None:
    """Charge one event (and optionally one touched fingerprint) to the
    current tenant scope; a no-op outside any scope."""
    tenant = current_tenant()
    if tenant is None or not _valid_tenant(tenant):
        return
    with _tenant_lock:
        stats = _tenant_stats.setdefault(
            tenant, {"hits": 0, "misses": 0, "stores": 0}
        )
        stats[counter] += 1
        if fingerprint is None:
            return
        seen = _tenant_seen.get(tenant)
        if seen is None:
            seen = _tenant_seen[tenant] = _load_tenant_index(tenant)
        if fingerprint in seen:
            return
        seen.add(fingerprint)
    if disk_enabled():
        try:
            directory = _tenants_dir()
            directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                directory / f"{tenant}.idx",
                os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                0o644,
            )
            try:
                os.write(fd, (fingerprint + "\n").encode())
            finally:
                os.close(fd)
        except OSError:
            pass  # accounting degrades, the cache itself is unaffected


def _load_tenant_index(tenant: str) -> Set[str]:
    try:
        text = (_tenants_dir() / f"{tenant}.idx").read_text()
    except OSError:
        return set()
    return {line.strip() for line in text.splitlines() if line.strip()}


def tenant_stats() -> Dict[str, Dict[str, int]]:
    """Per-tenant hit/miss/store counters since process start."""
    with _tenant_lock:
        return {name: dict(stats) for name, stats in _tenant_stats.items()}


def tenant_disk_usage() -> Dict[str, object]:
    """Disk footprint per tenant, with cross-tenant shared bytes once.

    Returns ``{"tenants": {name: {"entries": n, "bytes": b}},
    "shared_entries": k, "shared_bytes": s, "union_entries": u,
    "union_bytes": t}``.  A tenant's ``bytes`` is what *it* references;
    because the tier is content-addressed and shared, entries referenced
    by more than one tenant exist on disk exactly once, so the combined
    ``union_bytes`` counts each of them once — never once per tenant.
    """
    directory = _tenants_dir()
    references: Dict[str, Set[str]] = {}
    if directory.is_dir():
        for index in sorted(directory.glob("*.idx")):
            references[index.stem] = _load_tenant_index(index.stem)
    per_tenant: Dict[str, Dict[str, int]] = {}
    sizes: Dict[str, int] = {}
    claims: Dict[str, int] = {}
    for tenant, prints in references.items():
        entries = 0
        total = 0
        for fingerprint in prints:
            if fingerprint not in sizes:
                try:
                    sizes[fingerprint] = _object_path(fingerprint).stat().st_size
                except OSError:
                    sizes[fingerprint] = -1  # pruned/absent: skip everywhere
            size = sizes[fingerprint]
            if size < 0:
                continue
            claims[fingerprint] = claims.get(fingerprint, 0) + 1
            entries += 1
            total += size
        per_tenant[tenant] = {"entries": entries, "bytes": total}
    shared = [fp for fp, n in claims.items() if n > 1]
    return {
        "tenants": per_tenant,
        "shared_entries": len(shared),
        "shared_bytes": sum(sizes[fp] for fp in shared),
        "union_entries": len(claims),
        "union_bytes": sum(sizes[fp] for fp in claims),
    }


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------
def _encode(value, out) -> None:
    """Append a canonical, type-tagged encoding of ``value`` to ``out``.

    Handles the closed set of types that appear in graphs, configs and
    policy signatures.  Type tags keep e.g. ``1`` and ``"1"`` and ``1.0``
    distinct; floats are encoded by hex to be exact.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        out.append(f"{type(value).__name__}:{value!r};")
    elif isinstance(value, float):
        out.append(f"float:{value.hex()};")
    elif isinstance(value, (list, tuple)):
        out.append(f"seq{len(value)}[")
        for item in value:
            _encode(item, out)
        out.append("]")
    elif isinstance(value, (set, frozenset)):
        out.append(f"set{len(value)}[")
        for item in sorted(value, key=repr):
            _encode(item, out)
        out.append("]")
    elif isinstance(value, dict):
        out.append(f"map{len(value)}[")
        for key in sorted(value, key=repr):
            _encode(key, out)
            _encode(value[key], out)
        out.append("]")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.append(f"dc:{type(value).__name__}[")
        for field in dataclasses.fields(value):
            _encode(getattr(value, field.name), out)
        out.append("]")
    else:
        # enums, odd attr payloads: repr is stable for everything we store
        out.append(f"{type(value).__name__}:{value!r};")


def graph_signature(graph: Graph):
    """Stable structural signature of a workload graph.

    Covers everything the simulator reads: identity fields, per-op costs,
    dependence-defining inputs/outputs/attrs, and tensor sizes (which feed
    GPU working-set/swap modeling).
    """
    ops = tuple(
        (
            op.name,
            op.op_type,
            op.inputs,
            op.outputs,
            (
                op.cost.muls,
                op.cost.adds,
                op.cost.other_flops,
                op.cost.bytes_in,
                op.cost.bytes_out,
                op.cost.parallelism,
            ),
            dict(op.attrs),
        )
        for op in graph.ops
    )
    tensors = {name: spec.nbytes for name, spec in graph.tensors.items()}
    return (
        graph.name,
        graph.batch_size,
        graph.dataset,
        graph.input_bytes,
        ops,
        tensors,
    )


#: Encoded graph signature per graph object (graphs are immutable once
#: simulated; entries evict with the graph, so ids can't go stale).
_graph_sig_cache: Dict[int, str] = {}


def _encoded_graph_signature(graph: Graph) -> str:
    key = id(graph)
    encoded = _graph_sig_cache.get(key)
    if encoded is None:
        parts = []
        _encode(graph_signature(graph), parts)
        encoded = "".join(parts)
        _graph_sig_cache[key] = encoded
        weakref.finalize(graph, _graph_sig_cache.pop, key, None)
    return encoded


#: Encoded SystemConfig per config object.  Configs are frozen dataclasses
#: shared across a sweep's many runs (the api facade memoizes resolved
#: instances), so encoding each once removes the dominant per-fingerprint
#: cost.  Entries evict with the config object, so ids can't go stale.
_config_sig_cache: Dict[int, str] = {}


def config_signature(config: SystemConfig) -> str:
    """Canonical encoding of every field of ``config`` (memoized by
    object identity).  Shared by fingerprinting and the vectorized
    cost-table keying (:mod:`repro.sim.optable`)."""
    key = id(config)
    encoded = _config_sig_cache.get(key)
    if encoded is None:
        parts = []
        _encode(config, parts)
        encoded = "".join(parts)
        _config_sig_cache[key] = encoded
        weakref.finalize(config, _config_sig_cache.pop, key, None)
    return encoded


def run_fingerprint(
    graph: Graph,
    policy: SchedulingPolicy,
    config: SystemConfig,
    steps: Optional[int] = None,
    faults=None,
) -> str:
    """Hex digest identifying one (graph, policy, config, steps, faults)
    run.  ``faults`` is a :class:`~repro.faults.spec.FaultSpec` (or None
    for the fault-free run — the two never share a fingerprint)."""
    effective_steps = (
        steps if steps is not None else config.runtime.measured_steps
    )
    parts = [_encoded_graph_signature(graph)]
    _encode((CACHE_SCHEMA, policy.signature()), parts)
    parts.append(config_signature(config))
    _encode((effective_steps, faults), parts)
    return hashlib.sha256("".join(parts).encode()).hexdigest()


# ---------------------------------------------------------------------------
# tiers
# ---------------------------------------------------------------------------
def _object_path(fingerprint: str) -> Path:
    # per-schema namespace: code only ever reads entries written by the
    # same CACHE_SCHEMA, so an entry written by newer code can never be
    # misinterpreted (or half-understood) by an older checkout
    return (
        cache_dir()
        / "objects"
        / f"v{CACHE_SCHEMA}"
        / fingerprint[:2]
        / f"{fingerprint}.json"
    )


def get(fingerprint: str) -> Optional[RunResult]:
    """Look up a result by fingerprint (memory first, then disk)."""
    result = _memory.get(fingerprint)
    if result is not None:
        _stats["memory_hits"] += 1
        _note_tenant("hits", fingerprint)
        return result
    if disk_enabled():
        path = _object_path(fingerprint)
        try:
            result = RunResult.from_json(path.read_text())
        except Exception:
            # missing file, or a corrupt/stale entry (truncated write,
            # schema drift): deserialization can raise nearly anything,
            # and any failure here is just a cache miss
            result = None
        if isinstance(result, RunResult):
            _memory[fingerprint] = result
            _stats["disk_hits"] += 1
            _note_tenant("hits", fingerprint)
            try:
                os.utime(path)  # refresh mtime: prune() evicts LRU-first
            except OSError:
                pass
            return result
    _stats["misses"] += 1
    _note_tenant("misses")
    return None


def put(fingerprint: str, result: RunResult) -> None:
    """Store a result in both tiers (atomic on disk)."""
    _memory[fingerprint] = result
    _stats["stores"] += 1
    _note_tenant("stores", fingerprint)
    if not disk_enabled():
        return
    path = _object_path(fingerprint)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(result.to_json())
            os.replace(tmp, path)  # atomic: concurrent writers both win
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass  # read-only/odd filesystems degrade to the memory tier


def clear(disk: bool = True) -> None:
    """Drop the memory tier and (by default) this cache dir's disk tier."""
    _memory.clear()
    with _tenant_lock:
        _tenant_stats.clear()
        _tenant_seen.clear()
    if not disk:
        return
    tenants = _tenants_dir()
    if tenants.is_dir():
        for index in tenants.glob("*.idx"):
            try:
                index.unlink()
            except OSError:
                pass
    objects = cache_dir() / "objects"
    if not objects.is_dir():
        return
    # rglob sweeps every schema namespace (objects/v<N>/<aa>/) as well as
    # legacy layouts: pre-v3 flat shards (objects/<aa>/*.json) and the
    # pre-JSON pickle format (*.pkl)
    for pattern in ("*.json", "*.pkl"):
        for entry in objects.rglob(pattern):
            try:
                entry.unlink()
            except OSError:
                pass


def _disk_entries():
    """Yield ``(mtime, size, path)`` for every disk-tier entry (all schema
    namespaces and legacy layouts)."""
    objects = cache_dir() / "objects"
    if not objects.is_dir():
        return
    for pattern in ("*.json", "*.pkl"):
        for entry in objects.rglob(pattern):
            try:
                stat = entry.stat()
            except OSError:
                continue  # raced with a concurrent prune/clear
            yield (stat.st_mtime, stat.st_size, entry)


def disk_usage() -> Dict[str, int]:
    """Disk-tier footprint: ``{"disk_entries": N, "disk_bytes": B}``."""
    entries = 0
    total = 0
    for _mtime, size, _path in _disk_entries():
        entries += 1
        total += size
    return {"disk_entries": entries, "disk_bytes": total}


def prune(max_bytes: int) -> Dict[str, int]:
    """Evict least-recently-used disk entries until the tier fits
    ``max_bytes``.

    Recency is file mtime — refreshed on every disk hit — so the entries
    that go first are the ones no run has read for the longest.  The
    memory tier is untouched (it dies with the process anyway).  Returns
    ``removed_entries``/``removed_bytes``/``kept_entries``/``kept_bytes``
    and accumulates the removals into :func:`stats` as ``pruned_entries``
    / ``pruned_bytes``.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    entries = sorted(_disk_entries())  # oldest mtime first
    total = sum(size for _m, size, _p in entries)
    removed = 0
    removed_bytes = 0
    for _mtime, size, path in entries:
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        removed += 1
        removed_bytes += size
    _stats["pruned_entries"] += removed
    _stats["pruned_bytes"] += removed_bytes
    return {
        "removed_entries": removed,
        "removed_bytes": removed_bytes,
        "kept_entries": len(entries) - removed,
        "kept_bytes": total,
    }


def stats() -> Dict[str, int]:
    """Snapshot of hit/miss/prune counters (for the benchmark harness)."""
    return dict(_stats)


def reset_stats() -> None:
    for key in _stats:
        _stats[key] = 0


# ---------------------------------------------------------------------------
# cached simulation entry point
# ---------------------------------------------------------------------------
def simulate_cached(
    graph: Graph,
    policy: SchedulingPolicy,
    config: Optional[SystemConfig] = None,
    steps: Optional[int] = None,
    faults=None,
    validate: Optional[bool] = None,
) -> RunResult:
    """Run (or fetch) one simulation, keyed by content fingerprint.

    Drop-in replacement for :func:`repro.sim.simulation.simulate` for any
    run that does not need a live :class:`Simulation` object (timelines,
    device introspection).  ``faults`` (a FaultSpec) is part of the
    fingerprint: faulted and fault-free runs cache independently.

    ``validate`` (default: the ``REPRO_VALIDATE`` environment knob) turns
    on the invariant checker (:mod:`repro.validate.invariants`): cache
    hits get the result-level checks, misses run the full live-simulation
    checks plus a serialization round-trip equivalence check (the exact
    representation the disk tier and the artifacts store), raising
    :class:`~repro.errors.InvariantViolation` on the first broken law.
    """
    from .simulation import Simulation  # local import avoids a cycle

    if config is None:
        from ..config import default_config

        config = default_config()
    if validate is None:
        validate = validation_enabled()
    fingerprint = run_fingerprint(graph, policy, config, steps, faults=faults)
    result = get(fingerprint)
    if result is None:
        result = Simulation(
            graph,
            policy,
            config=config,
            steps=steps,
            faults=faults,
            validate=validate,
        ).run()
        put(fingerprint, result)
        if validate:
            from ..validate.invariants import check_cache_equivalence

            check_cache_equivalence(
                result,
                RunResult.from_json(result.to_json()),
                source="serialization round-trip",
            )
    elif validate:
        from ..validate.invariants import check_result

        check_result(result)
    return result
