"""Simulated device executors.

Wraps the hardware state machines (:mod:`repro.hardware`) with
discrete-event timing:

* :class:`SlotDevice` — CPU executor slots / the single GPU queue / the
  programmable-PIM cluster (one kernel per PIM).
* :class:`FixedPoolExecutor` — the fixed-function pool as a
  processor-sharing resource: a MAC sub-kernel's completion rate is
  proportional to the units it holds, and (with the operation pipeline
  enabled) kernels expand onto units released by others, re-scheduling
  their completion events — the paper's "an operation can dynamically
  change its usage of PIMs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import SchedulingError, SimulationError
from ..hardware.fixed_pim import FixedPIMPool
from .engine import Engine, EventHandle


class SlotDevice:
    """A device with ``slots`` identical kernel slots and busy accounting."""

    def __init__(self, engine: Engine, name: str, slots: int):
        if slots < 1:
            raise SimulationError(f"device {name!r} needs >= 1 slot")
        self.engine = engine
        self.name = name
        self.slots = slots
        self._busy = 0
        self._lost = 0
        self._busy_integral = 0.0
        self._last_time = 0.0
        self._acquisitions = 0
        #: Seconds spent with exactly ``i`` slots busy (time-weighted).
        self._level_seconds = [0.0] * (slots + 1)

    @property
    def busy_slots(self) -> int:
        return self._busy

    @property
    def lost_slots(self) -> int:
        """Slots permanently removed by injected faults."""
        return self._lost

    @property
    def effective_slots(self) -> int:
        """Usable slots: nominal count minus fault losses."""
        return self.slots - self._lost

    @property
    def free_slots(self) -> int:
        # clamped: a kernel running on a just-lost slot drains gracefully,
        # so busy may transiently exceed the effective capacity
        free = self.slots - self._lost - self._busy
        return free if free > 0 else 0

    def lose_slots(self, n: int) -> int:
        """Permanently remove up to ``n`` slots; returns the actual loss.

        In-flight kernels finish normally (graceful drain); the loss only
        constrains future acquisitions.
        """
        if n < 1:
            raise SchedulingError(f"device {self.name!r}: lose {n} slots")
        lost = min(n, self.effective_slots)
        self._lost += lost
        return lost

    def _integrate(self) -> None:
        now = self.engine.now
        elapsed = now - self._last_time
        if elapsed > 0:
            self._busy_integral += self._busy * elapsed
            self._level_seconds[self._busy] += elapsed
        self._last_time = now

    def try_acquire(self, n: int = 1) -> bool:
        """Claim ``n`` slots atomically; False if not all available."""
        if n < 1:
            raise SchedulingError(f"device {self.name!r}: acquire {n} slots")
        if self._busy + n > self.slots - self._lost:
            return False
        self._integrate()
        self._busy += n
        self._acquisitions += 1
        return True

    def release(self, n: int = 1) -> None:
        if n < 1 or self._busy < n:
            raise SchedulingError(
                f"device {self.name!r}: release {n} with {self._busy} busy"
            )
        self._integrate()
        self._busy -= n

    def busy_seconds(self) -> float:
        """Cumulative busy slot-seconds so far."""
        self._integrate()
        return self._busy_integral

    def busy_fraction(self, makespan_s: float) -> float:
        """Fraction of capacity-time (slots x makespan) spent busy."""
        if makespan_s <= 0:
            return 0.0
        return self.busy_seconds() / (self.slots * makespan_s)

    def level_seconds(self):
        """Seconds spent at each busy-slot level (index = busy slots)."""
        self._integrate()
        return tuple(self._level_seconds)

    def publish_metrics(self, registry) -> None:
        """Publish busy accounting into an observability registry."""
        prefix = f"device.{self.name}"
        registry.gauge(f"{prefix}.slots").set(self.slots)
        registry.gauge(f"{prefix}.acquisitions").set(self._acquisitions)
        registry.gauge(f"{prefix}.busy_slot_s").set(self.busy_seconds())
        registry.gauge(f"{prefix}.level_s").set(self.level_seconds())


@dataclass(slots=True)
class _MacJob:
    """One in-flight fixed-function sub-kernel."""

    kernel_id: str
    #: Remaining normalized work, in unit-seconds (decays at `units`/s).
    remaining: float
    want_units: int
    units: int
    last_update: float
    on_done: Callable[[], None]
    handle: Optional[EventHandle] = None
    arrival: int = 0
    #: Invoked if the sub-kernel is revoked by a fault (units lost
    #: mid-flight); the scheduler retries or degrades the operation.
    on_abort: Optional[Callable[[], None]] = None


class FixedPoolExecutor:
    """Processor-sharing executor over the fixed-function PIM pool.

    Args:
        engine: Event engine.
        pool: Allocation/busy-accounting state machine.
        mac_rate_per_unit: MACs/s one unit retires.
        byte_rate_per_unit: Bytes/s of in-stack bandwidth one unit's share
            provides (streaming-bound sub-kernels).
        pipeline: Operation pipeline (OP) enabled — kernels share the pool
            and expand onto freed units.  Disabled, the pool is exclusive:
            one operation holds a pool *token* for its whole kernel.
        on_units_freed: Callback invoked after units return to the pool
            (lets the scheduler admit waiting work).
    """

    def __init__(
        self,
        engine: Engine,
        pool: FixedPIMPool,
        mac_rate_per_unit: float,
        byte_rate_per_unit: float,
        pipeline: bool,
        on_units_freed: Optional[Callable[[], None]] = None,
    ):
        self.engine = engine
        self.pool = pool
        self.mac_rate_per_unit = mac_rate_per_unit
        self.byte_rate_per_unit = byte_rate_per_unit
        self.pipeline = pipeline
        self.on_units_freed = on_units_freed or (lambda: None)
        #: Frequency multiplier from thermal throttling (1.0 = nominal).
        self._speed = 1.0
        #: In-stack bandwidth multiplier from DRAM derating (1.0 = nominal).
        self._bandwidth_scale = 1.0
        self._jobs: Dict[str, _MacJob] = {}
        self._arrivals = 0
        self._expansions = 0
        self._token_holder: Optional[str] = None
        # duty-window integration (Figure 15 utilization denominator)
        self._window_count = 0
        self._window_integral = 0.0
        self._window_last = 0.0

    # ------------------------------------------------------------------
    # duty window (time during which fixed-function work is in flight)
    # ------------------------------------------------------------------
    def _window_integrate(self) -> None:
        now = self.engine.now
        if self._window_count > 0:
            self._window_integral += now - self._window_last
        self._window_last = now

    def window_enter(self) -> None:
        self._window_integrate()
        self._window_count += 1

    def window_exit(self) -> None:
        self._window_integrate()
        if self._window_count <= 0:
            raise SimulationError("fixed-pool duty window underflow")
        self._window_count -= 1

    def active_window_seconds(self) -> float:
        self._window_integrate()
        return self._window_integral

    # ------------------------------------------------------------------
    # exclusive token (operation pipeline disabled)
    # ------------------------------------------------------------------
    def try_take_token(self, kernel_id: str) -> bool:
        """Claim exclusive pool use for one operation (no-OP mode)."""
        if self.pipeline:
            return True  # sharing allowed; no token needed
        if self._token_holder is None:
            self._token_holder = kernel_id
            return True
        return self._token_holder == kernel_id

    def drop_token(self, kernel_id: str) -> None:
        if self.pipeline:
            return
        if self._token_holder != kernel_id:
            raise SchedulingError(
                f"pool token held by {self._token_holder!r}, not {kernel_id!r}"
            )
        self._token_holder = None
        self.on_units_freed()

    @property
    def token_holder(self) -> Optional[str]:
        return self._token_holder

    # ------------------------------------------------------------------
    # sub-kernel execution
    # ------------------------------------------------------------------
    def normalized_work(self, macs: int, nbytes: int) -> float:
        """Work in unit-seconds: the per-unit compute/stream bound."""
        mac_w = macs / self.mac_rate_per_unit if macs else 0.0
        byte_w = (
            nbytes / (self.byte_rate_per_unit * self._bandwidth_scale)
            if nbytes
            else 0.0
        )
        return max(mac_w, byte_w)

    def try_submit(
        self,
        kernel_id: str,
        macs: int,
        nbytes: int,
        want_units: int,
        on_done: Callable[[], None],
        on_abort: Optional[Callable[[], None]] = None,
        work: Optional[float] = None,
    ) -> bool:
        """Start a MAC sub-kernel; False when no units are available (or
        another operation holds the exclusive token).

        ``work`` lets callers pass a precomputed :meth:`normalized_work`
        value (the vectorized cost table batches these up front); it must
        equal what ``normalized_work(macs, nbytes)`` would return at
        submission time, so it is only valid while bandwidth is unscaled.
        """
        if not self.pipeline and self._token_holder not in (None, kernel_id):
            return False
        now = self.engine.now
        want = max(1, min(want_units, self.pool.n_units))
        granted = self.pool.allocate(kernel_id, want, now)
        if granted == 0:
            return False
        if work is None:
            work = self.normalized_work(macs, nbytes)
        self._arrivals += 1
        job = _MacJob(
            kernel_id=kernel_id,
            remaining=work,
            want_units=want,
            units=granted,
            last_update=now,
            on_done=on_done,
            arrival=self._arrivals,
            on_abort=on_abort,
        )
        self._jobs[kernel_id] = job
        self._schedule_completion(job)
        return True

    def _settle(self, job: _MacJob) -> None:
        now = self.engine.now
        rate = job.units * self._speed
        job.remaining = max(0.0, job.remaining - rate * (now - job.last_update))
        job.last_update = now

    def _schedule_completion(self, job: _MacJob) -> None:
        if job.units <= 0:
            # no units held: nothing drains the work; completion is
            # rescheduled when the pool grants units (never reached in
            # practice — try_submit requires a non-zero grant)
            if job.handle is not None:
                job.handle.cancel()
                job.handle = None
            return
        target = self.engine.now + job.remaining / (job.units * self._speed)
        handle = job.handle
        if handle is not None:
            if not handle.cancelled and handle.time == target:
                return  # completion unchanged; keep the scheduled event
            handle.cancel()
        job.handle = self.engine.at(target, lambda: self._complete(job.kernel_id))

    def _complete(self, kernel_id: str) -> None:
        job = self._jobs.pop(kernel_id, None)
        if job is None:
            raise SimulationError(f"completion for unknown job {kernel_id!r}")
        self._settle(job)
        self.pool.release(kernel_id, self.engine.now)
        if self.pipeline:
            self._redistribute()
        job.on_done()
        self.on_units_freed()

    def _redistribute(self) -> None:
        """Grow running jobs onto freed units (OP expansion), FIFO order."""
        for job in sorted(self._jobs.values(), key=lambda j: j.arrival):
            if self.pool.free_units == 0:
                break
            if job.units >= job.want_units:
                continue
            self._settle(job)
            new_units = self.pool.expand(
                job.kernel_id, job.want_units, self.engine.now
            )
            if new_units != job.units:
                job.units = new_units
                self._expansions += 1
                self._schedule_completion(job)

    # ------------------------------------------------------------------
    # fault hooks (repro.faults)
    # ------------------------------------------------------------------
    @property
    def speed(self) -> float:
        return self._speed

    def set_speed(self, factor: float) -> None:
        """Derate (or restore) the pool frequency: settle every in-flight
        job at the old rate, then reschedule completions at the new one."""
        if factor <= 0:
            raise SimulationError(f"pool speed factor must be > 0, got {factor}")
        if factor == self._speed:
            return
        for job in self._jobs.values():
            self._settle(job)
        self._speed = factor
        for job in sorted(self._jobs.values(), key=lambda j: j.arrival):
            self._schedule_completion(job)

    def set_bandwidth_scale(self, factor: float) -> None:
        """Scale the in-stack bandwidth seen by *newly submitted* work
        (DRAM-timing derating; in-flight jobs keep their work estimate)."""
        if factor <= 0:
            raise SimulationError(
                f"bandwidth scale must be > 0, got {factor}"
            )
        self._bandwidth_scale = factor

    def lose_units(self, units: int):
        """Shrink the pool; aborts revoked in-flight sub-kernels.

        Returns the revoked kernel ids (the pool may revoke whole kernels
        to fit the surviving capacity).  Each revoked job's ``on_abort``
        runs after all revocations are applied, in revocation order.
        """
        revoked = self.pool.shrink(units, self.engine.now)
        aborted = []
        for kernel_id in revoked:
            job = self._jobs.pop(kernel_id, None)
            if job is None:
                continue
            if job.handle is not None:
                job.handle.cancel()
                job.handle = None
            if job.on_abort is not None:
                aborted.append(job.on_abort)
        if self.pipeline:
            self._redistribute()
        for on_abort in aborted:
            on_abort()
        self.on_units_freed()
        return revoked

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def busy_unit_seconds(self) -> float:
        return self.pool.busy_unit_seconds(self.engine.now)

    def utilization(self) -> float:
        """Busy-units integral over the duty window (Figure 15 metric)."""
        window = self.active_window_seconds()
        if window <= 0:
            return 0.0
        return self.busy_unit_seconds() / (self.pool.n_units * window)

    def occupancy_histogram_s(self):
        """Pool time-at-occupancy histogram (see ``FixedPIMPool``)."""
        return self.pool.occupancy_histogram_s(self.engine.now)

    def publish_metrics(self, registry) -> None:
        """Publish pool executor accounting into an observability registry."""
        registry.gauge("fixed.units").set(self.pool.n_units)
        registry.gauge("fixed.lost_units").set(self.pool.lost_units)
        registry.gauge("fixed.subkernels").set(self._arrivals)
        registry.gauge("fixed.expansions").set(self._expansions)
        registry.gauge("fixed.busy_unit_s").set(self.busy_unit_seconds())
        registry.gauge("fixed.window_s").set(self.active_window_seconds())
        registry.gauge("fixed.occupancy_s").set(self.occupancy_histogram_s())
