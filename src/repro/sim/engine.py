"""Discrete-event simulation core.

A minimal, deterministic event engine: events are ``(time, sequence)``
ordered callbacks; handles support cancellation (needed by the
processor-sharing fixed-function pool, which reschedules completions when
allocations change).

The heap stores plain ``[time, seq, callback]`` lists rather than
dataclass instances: heap sift operations then compare small floats/ints
directly instead of going through a generated ``__lt__``, and cancellation
is a sentinel write (``callback = None``) with no extra flag field.  The
``seq`` tiebreaker is unique, so the callback slot never takes part in a
comparison.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from ..errors import SimulationError

#: Heap entry layout: ``[time, seq, callback]``; ``callback is None`` marks
#: a cancelled event that the run loop discards when it surfaces.
_TIME, _SEQ, _CALLBACK = 0, 1, 2


class EventHandle:
    """Cancellation handle for a scheduled event."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    def cancel(self) -> None:
        self._entry[_CALLBACK] = None

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    @property
    def time(self) -> float:
        return self._entry[_TIME]


class Engine:
    """Deterministic discrete-event engine."""

    __slots__ = ("now", "_heap", "_seq", "_events_processed", "_peak_pending")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[list] = []
        self._seq = 0
        self._events_processed = 0
        self._peak_pending = 0

    def at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        if callback is None:
            raise SimulationError("event callback must not be None")
        entry = [time, self._seq, callback]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        if len(self._heap) > self._peak_pending:
            self._peak_pending = len(self._heap)
        return EventHandle(entry)

    def after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Process events until the queue drains (or ``until`` / the event
        budget is reached — the budget guards against runaway feedback)."""
        heap = self._heap
        pop = heapq.heappop
        processed = self._events_processed
        try:
            if until is None:
                while heap:
                    entry = pop(heap)
                    callback = entry[_CALLBACK]
                    if callback is None:
                        continue
                    self.now = entry[_TIME]
                    processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            f"event budget exceeded ({max_events}); likely a "
                            "scheduling livelock"
                        )
                    callback()
                return
            while heap:
                entry = heap[0]
                if entry[_TIME] > until:
                    self.now = until
                    return
                pop(heap)
                callback = entry[_CALLBACK]
                if callback is None:
                    continue
                self.now = entry[_TIME]
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"event budget exceeded ({max_events}); likely a "
                        "scheduling livelock"
                    )
                callback()
        finally:
            self._events_processed = processed

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if e[_CALLBACK] is not None)

    @property
    def drained(self) -> bool:
        """True when no live (non-cancelled) event remains queued."""
        return self.pending_events == 0

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def peak_pending_events(self) -> int:
        """High-water mark of the event heap (cancelled entries included)."""
        return self._peak_pending

    def publish_metrics(self, registry) -> None:
        """Publish engine health into an observability registry."""
        registry.gauge("engine.events_processed").set(self._events_processed)
        registry.gauge("engine.peak_pending_events").set(self._peak_pending)
        registry.gauge("engine.now_s").set(self.now)
