"""Discrete-event simulation core.

A minimal, deterministic event engine: events are ``(time, sequence)``
ordered callbacks; handles support cancellation (needed by the
processor-sharing fixed-function pool, which reschedules completions when
allocations change).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SimulationError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Cancellation handle for a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Engine:
    """Deterministic discrete-event engine."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[_Event] = []
        self._seq = 0
        self._events_processed = 0

    def at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        event = _Event(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Process events until the queue drains (or ``until`` / the event
        budget is reached — the budget guards against runaway feedback)."""
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events}); likely a "
                    "scheduling livelock"
                )
            event.callback()

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed
