"""Offline integrity audit and repair for the on-disk store.

``repro cache fsck [--repair]`` drives :func:`fsck` over the three
durable tiers:

* **cache objects** (``objects/v<schema>/``) — every envelope is parsed
  and its sha256 re-hashed.  Damage is repaired by quarantine +
  *recompute*: the envelope's self-describing ``meta`` (model, config,
  backend, steps, batch size) is recovered even from a payload-mangled
  file (:func:`repro.sim.cache.extract_meta`), the run is re-resolved
  through the public api, and the recomputed fingerprint must equal the
  damaged file's name before the store is rewritten — so a repair can
  never install the wrong result under a fingerprint.  Deterministic
  simulation makes the recomputed artifact byte-identical, which
  ``tools/check_chaos.py`` asserts in CI.
* **journals** (``journal/``) — loaded with per-line checksum and seal
  verification.  Interior damage is *reported* (the tolerant loader
  already drops such lines; the worst case is one recompute on resume);
  journals without a readable header are quarantined under ``--repair``.
* **serve reports** (``serve/reports/``) — bytes re-hashed against the
  sha256 sidecar.  Damage is repaired by recomputing the report from the
  original request, which the serve journals carry verbatim in their
  ``accepted`` lines; reports predating the sidecar era are counted
  ``unverified`` (and, under ``--repair``, get a sidecar backfilled from
  a recompute when a journaled request allows one).

Exit policy (see :func:`clean`): damaged *artifacts* (objects, reports)
that remain unrepaired fail the audit; tolerated journal line damage
does not.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import CorruptObjectError, ExecutionError, ReproError
from . import cache as sim_cache

Report = Dict[str, Dict[str, int]]


def _new_report() -> Report:
    return {
        "objects": {
            "scanned": 0,
            "ok": 0,
            "corrupt": 0,
            "repaired": 0,
            "unrepairable": 0,
            "legacy": 0,
        },
        "journals": {
            "scanned": 0,
            "ok": 0,
            "damaged": 0,
            "corrupt_lines": 0,
            "unreadable": 0,
            "quarantined": 0,
        },
        "reports": {
            "scanned": 0,
            "ok": 0,
            "corrupt": 0,
            "unverified": 0,
            "repaired": 0,
            "unrepairable": 0,
        },
    }


def clean(report: Report) -> bool:
    """True when no damaged artifact remains in the store."""
    objects = report["objects"]
    reports = report["reports"]
    journals = report["journals"]
    return (
        objects["corrupt"] <= objects["repaired"]
        and reports["corrupt"] <= reports["repaired"]
        and journals["unreadable"] <= journals["quarantined"]
    )


# ---------------------------------------------------------------------------
# cache objects
# ---------------------------------------------------------------------------
def _recompute_object(fingerprint: str, meta: Dict[str, object]) -> bool:
    """Recompute one damaged object from its embedded meta.

    Resolves the run through the public api, *proves* the inputs by
    matching the recomputed fingerprint against the damaged file's name,
    then lets :func:`repro.sim.cache.simulate_cached` rewrite the store.
    Returns False when the meta cannot reproduce this fingerprint
    (faulted runs, scaled configs, missing fields).
    """
    from .. import api

    if not meta or meta.get("faulted"):
        return False
    model = meta.get("model")
    backend = meta.get("backend")
    steps = meta.get("steps")
    batch_size = meta.get("batch_size")
    if not isinstance(model, str) or not isinstance(backend, str):
        return False
    if not isinstance(steps, int) or not isinstance(batch_size, int):
        return False
    try:
        configurations = api.list_configurations(backend)
    except ReproError:
        return False
    for config_id in configurations:
        try:
            graph, system, policy, _name = api._resolve_run(
                model, config_id, batch_size, 1.0, None, backend
            )
        except ReproError:
            continue
        candidate = sim_cache.run_fingerprint(graph, policy, system, steps)
        if candidate != fingerprint:
            continue
        sim_cache._memory.pop(fingerprint, None)
        sim_cache.simulate_cached(graph, policy, system, steps)
        try:
            sim_cache.read_object(
                sim_cache._object_path(fingerprint), fingerprint, verify=True
            )
        except CorruptObjectError:
            return False  # the disk rejected the rewrite (degraded store?)
        return True
    return False


def _scan_objects(report: Report, repair: bool) -> None:
    objects = report["objects"]
    root = sim_cache.cache_dir() / "objects"
    if not root.is_dir():
        return
    current = root / f"v{sim_cache.CACHE_SCHEMA}"
    for entry in sorted(root.rglob("*.json")):
        if current not in entry.parents:
            objects["legacy"] += 1
            continue
        objects["scanned"] += 1
        fingerprint = entry.stem
        try:
            sim_cache.read_object(entry, fingerprint, verify=True)
        except CorruptObjectError:
            objects["corrupt"] += 1
        else:
            objects["ok"] += 1
            continue
        if not repair:
            continue
        try:
            text = entry.read_text(errors="replace")
        except OSError:
            text = ""
        meta = sim_cache.extract_meta(text)
        sim_cache.quarantine(entry)
        if meta is not None and _recompute_object(fingerprint, meta):
            objects["repaired"] += 1
        else:
            objects["unrepairable"] += 1


# ---------------------------------------------------------------------------
# journals
# ---------------------------------------------------------------------------
def _scan_journals(report: Report, repair: bool) -> None:
    from ..experiments import journal as journal_mod

    journals = report["journals"]
    directory = journal_mod.journal_dir()
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.jsonl")):
        journals["scanned"] += 1
        try:
            loaded = journal_mod.RunJournal.load(path.stem)
        except ExecutionError:
            journals["unreadable"] += 1
            if repair:
                sim_cache.quarantine(path)
                journals["quarantined"] += 1
            continue
        if loaded.corrupt_lines or loaded.sealed is False:
            journals["damaged"] += 1
            journals["corrupt_lines"] += loaded.corrupt_lines
        else:
            journals["ok"] += 1


# ---------------------------------------------------------------------------
# serve reports
# ---------------------------------------------------------------------------
def _journaled_requests() -> Dict[str, Dict[str, object]]:
    """request_id -> request dict, from every serve journal's
    ``accepted`` lines (the daemon journals the full request verbatim)."""
    from ..experiments import journal as journal_mod

    requests: Dict[str, Dict[str, object]] = {}
    for run_id in journal_mod.list_runs():
        try:
            loaded = journal_mod.RunJournal.load(run_id)
        except ExecutionError:
            continue
        if loaded.header.get("kind") != "serve":
            continue
        for line in loaded.lines:
            if line.get("event") != "job":
                continue
            if line.get("status") != "accepted":
                continue
            request_id = line.get("fp")
            spec = line.get("request")
            if isinstance(request_id, str) and isinstance(spec, dict):
                requests.setdefault(request_id, spec)
    return requests


def _recompute_report_bytes(spec: Optional[Dict[str, object]]) -> Optional[bytes]:
    """Re-run one journaled serve request; None when it cannot be replayed."""
    from .. import api
    from ..serve.protocol import build_simulate_request

    if spec is None:
        return None
    try:
        request = build_simulate_request(dict(spec), {})
        session = api.Session(request.tenant)
        result = session.simulate(**request.simulate_kwargs())
    except ReproError:
        return None
    return (result.to_json() + "\n").encode()


def _write_report(request_id: str, path: Path, data: bytes) -> bool:
    from ..serve.daemon import ServeDaemon

    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        sidecar = ServeDaemon.sidecar_path(request_id)
        sidecar.write_text(hashlib.sha256(data).hexdigest() + "\n")
        path.write_bytes(data)
    except OSError:
        return False
    return True


def _scan_reports(report: Report, repair: bool) -> None:
    from ..serve.daemon import ServeDaemon

    reports = report["reports"]
    root = sim_cache.cache_dir() / "serve" / "reports"
    if not root.is_dir():
        return
    journaled: Optional[Dict[str, Dict[str, object]]] = None
    for entry in sorted(root.rglob("*.json")):
        reports["scanned"] += 1
        request_id = entry.stem
        sidecar = ServeDaemon.sidecar_path(request_id)
        recorded = ""
        try:
            recorded = sidecar.read_text().strip()
        except OSError:
            pass
        try:
            stored = entry.read_bytes()
        except OSError:
            stored = b""
        damaged = False
        if not recorded:
            reports["unverified"] += 1
        elif hashlib.sha256(stored).hexdigest() == recorded:
            reports["ok"] += 1
            continue
        else:
            damaged = True
            reports["corrupt"] += 1
        if not repair:
            continue
        if journaled is None:
            journaled = _journaled_requests()
        expected = _recompute_report_bytes(journaled.get(request_id))
        if damaged:
            sim_cache.quarantine(entry)
            sim_cache.quarantine(sidecar)
            if expected is not None and _write_report(request_id, entry, expected):
                reports["repaired"] += 1
            else:
                reports["unrepairable"] += 1
        elif expected is not None:
            # pre-sidecar legacy report: only bless bytes that a replay
            # reproduces exactly; a mismatch means the file is damaged
            if expected == stored:
                _write_report(request_id, entry, expected)
            else:
                reports["unverified"] -= 1
                reports["corrupt"] += 1
                sim_cache.quarantine(entry)
                if _write_report(request_id, entry, expected):
                    reports["repaired"] += 1
                else:
                    reports["unrepairable"] += 1


def fsck(repair: bool = False) -> Report:
    """Audit (and with ``repair=True``, heal) the whole durable store."""
    report = _new_report()
    _scan_objects(report, repair)
    _scan_journals(report, repair)
    _scan_reports(report, repair)
    return report


def render(report: Report) -> str:
    """Human-readable per-tier table (the CLI's output)."""
    lines: List[str] = []
    for tier in ("objects", "journals", "reports"):
        counts = report[tier]
        cells = "  ".join(f"{key} {value}" for key, value in counts.items())
        lines.append(f"{tier:9s} {cells}")
    lines.append(f"status    {'clean' if clean(report) else 'DAMAGED'}")
    return "\n".join(lines)


def to_json(report: Report) -> str:
    payload = dict(report)
    payload["clean"] = clean(report)
    return json.dumps(payload, sort_keys=True, indent=2)
