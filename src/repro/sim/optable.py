"""Vectorized per-op cost table (struct-of-arrays over the graph's ops).

One :class:`CostTable` batches every per-op quantity the simulation's hot
path needs — placement-duration estimates, CPU/GPU/prog timings, fixed- and
hybrid-kernel phase plans with their dispatch sync costs and normalized
work — into numpy array math evaluated once per (graph, policy signature,
system config) and memoized globally.  A simulation over ``steps`` training
steps then serves ``steps x ops`` scheduling decisions from O(1) lookups
instead of re-deriving costs per task (the XLA ``ElementaryOpCache``
pattern, applied to the whole op population at once).

Bit-exactness contract: every array expression mirrors the scalar
formulas in :mod:`repro.hardware.cpu`, :mod:`repro.hardware.gpu`,
:mod:`repro.sim.devices` and :mod:`repro.sim.simulation` term for term —
same association order, same zero guards (``0/x == 0.0`` for the positive
rates involved), IEEE-754 double throughout — so a table-driven run
produces byte-identical :class:`~repro.sim.results.RunResult`s to the
scalar reference engine (``REPRO_ENGINE=scalar``; enforced by the
hypothesis equivalence sweep in ``tests/test_engine_equivalence.py``).

Scoping (cross-run-leakage fix): tables are keyed by graph identity plus
the *full* behavioural fingerprint of the run — ``policy.signature()``
(taken after ``prepare``) and the canonical encoding of the entire
``SystemConfig`` — so two runs differing only in frequency scale, PIM
counts or any other knob can never share a table.  Fault-injected runs
never use a table at all (faults mutate device rates mid-run); entries are
evicted when their graph is garbage-collected.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from ..config import SystemConfig
from ..hardware.cpu import CpuModel
from ..hardware.gpu import GpuModel
from ..nn.graph import Graph
from ..pimcl.kernel import BinaryKind, PhaseKind
from .cache import config_signature
from .policy import SchedulingPolicy
from .tracegen import compile_kernels

try:  # numpy is the container's standard toolchain, but stay importable
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is always present in CI
    _np = None

#: Tables per live graph: ``{id(graph): {(policy_sig, config_sig): table}}``.
#: The outer entry dies with the graph (weakref finalizer), so a recycled
#: ``id()`` can never surface a stale table.
_TABLES: Dict[int, Dict[tuple, "CostTable"]] = {}


class CostTable:
    """Precomputed per-op costs for one (graph, policy, config)."""

    __slots__ = (
        "est",
        "gang",
        "priority",
        "places",
        "cpu",
        "gpu_total",
        "prog",
        "fixed_plan",
        "hybrid_plan",
        "staging_s",
    )

    def __init__(self) -> None:
        #: ``{(place, id(op)): seconds}`` — the ``_estimate`` universe.
        self.est: Dict[Tuple[str, int], float] = {}
        #: ``{id(op): gang}`` — programmable-PIM gang sizes.
        self.gang: Dict[int, int] = {}
        self.priority: Dict[int, int] = {}
        self.places: Dict[int, Tuple[str, ...]] = {}
        #: ``{id(op): (operation_s, exposed_memory_s)}`` at 1/cpu_slots.
        self.cpu: Dict[int, Tuple[float, float]] = {}
        self.gpu_total: Dict[int, float] = {}
        #: ``{id(op): (flops, full_gang, full_gang_duration_s, traffic)}``.
        self.prog: Dict[int, Tuple[float, int, float, int]] = {}
        #: ``{id(op): [(sync_s, macs, bytes_moved, work_unit_s), ...]}``.
        self.fixed_plan: Dict[int, List[tuple]] = {}
        #: ``{id(op): [row, ...]}`` where a row is either
        #: ``("mac", sync_s, macs, bytes_moved, work_unit_s)`` or
        #: ``("cpx", launch_s, prog_s, cpu_operation_s, cpu_exposed_s,
        #: bytes_moved)``.
        self.hybrid_plan: Dict[int, List[tuple]] = {}
        #: GPU input-staging duration per step (None without a GPU lane).
        self.staging_s: Optional[float] = None


def _build(
    graph: Graph, policy: SchedulingPolicy, config: SystemConfig
) -> CostTable:
    ops = list(graph.ops)
    n = len(ops)
    table = CostTable()
    np = _np

    # ---- raw per-op columns (ints convert to float64 exactly: all are
    # far below 2**53) -------------------------------------------------
    mac_flops = np.array([op.cost.mac_flops for op in ops], dtype=np.float64)
    other_flops = np.array(
        [op.cost.other_flops for op in ops], dtype=np.float64
    )
    macs = np.array([op.cost.macs for op in ops], dtype=np.float64)
    traffic = np.array([op.traffic_bytes for op in ops], dtype=np.float64)
    host_traffic = np.array(
        [op.host_traffic_bytes for op in ops], dtype=np.float64
    )
    staging = np.array([op.staging_bytes for op in ops], dtype=np.float64)
    compute_eff = np.array(
        [op.info.cpu_compute_eff for op in ops], dtype=np.float64
    )
    mem_eff = np.array([op.info.cpu_mem_eff for op in ops], dtype=np.float64)
    parallelism = [op.cost.parallelism for op in ops]

    # ---- CPU timing at cores_fraction = 1/cpu_slots (CpuModel.op_timing)
    cpu_cfg = config.cpu
    fraction = 1.0 / policy.cpu_slots
    eff_flops = (cpu_cfg.effective_flops * compute_eff) * fraction
    cpu_flops = mac_flops + other_flops * cpu_cfg.other_flop_penalty
    cpu_compute = cpu_flops / eff_flops
    cpu_memory = host_traffic / (cpu_cfg.mem_bandwidth * mem_eff)
    cpu_total = np.maximum(cpu_compute, cpu_memory)
    cpu_exposed = np.maximum(0.0, cpu_memory - cpu_compute)
    cpu_operation = cpu_total - cpu_exposed

    # ---- GPU timing (GpuModel.op_timing) -----------------------------
    gpu_model = GpuModel(config.gpu, graph.name)
    gpu_eff = gpu_model.effective_flops
    gpu_compute = (mac_flops + other_flops) / gpu_eff
    gpu_compute = gpu_compute + config.gpu.kernel_launch_overhead_s
    gpu_memory = traffic / config.gpu.mem_bandwidth
    gpu_total = np.maximum(gpu_compute, gpu_memory)

    # ---- programmable-PIM whole-kernel timing ------------------------
    prog_cfg = config.prog_pim
    prog_rate = (
        prog_cfg.cores_per_pim
        * config.prog_pim_frequency_hz
        * prog_cfg.flops_per_core_cycle
    )
    prog_penalty = prog_cfg.other_flop_penalty
    stack_bw = config.stack.bandwidth
    prog_slots = prog_cfg.n_pims
    limit = max(1, policy.prog_gang_limit)
    gangs = [max(1, min(limit, p, prog_slots)) for p in parallelism]
    gang_arr = np.array(gangs, dtype=np.float64)
    prog_flops = mac_flops + other_flops * prog_penalty
    prog_duration = np.maximum(
        (prog_flops / gang_arr) / prog_rate, traffic / stack_bw
    )

    # ---- fixed-pool normalized work (FixedPoolExecutor rates) --------
    fp = config.fixed_pim
    mac_rate = fp.simd_width * fp.macs_per_lane_cycle * config.pim_frequency_hz
    byte_rate = stack_bw / fp.reference_units
    work = np.maximum(macs / mac_rate, traffic / byte_rate)
    units = np.array(
        [max(1, min(p, fp.n_units)) for p in parallelism], dtype=np.float64
    )
    fixed_est = work / units
    hybrid_complex = np.maximum(
        (other_flops * prog_penalty) / prog_rate, staging / stack_bw
    )
    host_complex = np.maximum(
        other_flops / cpu_cfg.effective_flops, staging / cpu_cfg.mem_bandwidth
    )
    hybrid_est = fixed_est + hybrid_complex
    hybrid_host_est = fixed_est + host_complex

    est = table.est
    cpu_total_l = cpu_total.tolist()
    gpu_total_l = gpu_total.tolist()
    prog_duration_l = prog_duration.tolist()
    fixed_est_l = fixed_est.tolist()
    hybrid_est_l = hybrid_est.tolist()
    hybrid_host_est_l = hybrid_host_est.tolist()
    cpu_operation_l = cpu_operation.tolist()
    cpu_exposed_l = cpu_exposed.tolist()
    prog_flops_l = prog_flops.tolist()

    # ---- phase plans (variable-length; tiny Python loops over the same
    # scalar formulas as Simulation._mac_dispatch_sync_s etc.) ---------
    kernels = compile_kernels(graph)
    quota = int(fp.subkernel_macs)
    host_launch = fp.host_launch_overhead_s
    per_launch = (
        fp.pim_launch_overhead_s if policy.recursive_kernels else host_launch
    )
    rc = policy.recursive_kernels
    prog_host_launch = prog_cfg.host_launch_overhead_s
    pim_launch = fp.pim_launch_overhead_s
    cpu_full_flops = cpu_cfg.effective_flops
    cpu_bw = cpu_cfg.mem_bandwidth

    def mac_sync(phase_macs: int, first: bool) -> float:
        launches = max(1, -(-int(phase_macs) // quota))
        total = launches * per_launch
        if first:
            total += host_launch - per_launch
        return max(total, 0.0)

    def norm_work(phase_macs: int, nbytes: int) -> float:
        mac_w = phase_macs / mac_rate if phase_macs else 0.0
        byte_w = nbytes / byte_rate if nbytes else 0.0
        return max(mac_w, byte_w)

    def prog_phase(flops: float, nbytes: int) -> float:
        compute_s = flops / prog_rate if flops else 0.0
        memory_s = nbytes / stack_bw if nbytes else 0.0
        return max(compute_s, memory_s)

    for i, op in enumerate(ops):
        oid = id(op)
        table.priority[oid] = policy.priority(op)
        table.places[oid] = policy.placements(op)
        table.gang[oid] = gangs[i]
        table.cpu[oid] = (cpu_operation_l[i], cpu_exposed_l[i])
        table.gpu_total[oid] = gpu_total_l[i]
        table.prog[oid] = (
            prog_flops_l[i], gangs[i], prog_duration_l[i], op.traffic_bytes
        )
        est[("cpu", oid)] = cpu_total_l[i]
        est[("gpu", oid)] = gpu_total_l[i]
        est[("prog", oid)] = prog_duration_l[i]
        est[("fixed", oid)] = fixed_est_l[i]
        est[("hybrid", oid)] = hybrid_est_l[i]
        est[("hybrid_host", oid)] = hybrid_host_est_l[i]

        kernel = kernels[op.name]
        if kernel.has_binary(BinaryKind.FIXED_FULL):
            table.fixed_plan[oid] = [
                (
                    mac_sync(phase.macs, j == 0),
                    phase.macs,
                    phase.bytes_moved,
                    norm_work(phase.macs, phase.bytes_moved),
                )
                for j, phase in enumerate(
                    kernel.binary(BinaryKind.FIXED_FULL).plan
                )
            ]
        if kernel.has_binary(BinaryKind.PROG):
            rows: List[tuple] = []
            for j, phase in enumerate(kernel.binary(BinaryKind.PROG).plan):
                first = j == 0
                if phase.kind is PhaseKind.MAC:
                    rows.append(
                        (
                            "mac",
                            mac_sync(phase.macs, first),
                            phase.macs,
                            phase.bytes_moved,
                            norm_work(phase.macs, phase.bytes_moved),
                        )
                    )
                else:
                    launch = (
                        prog_host_launch if (first or not rc) else pim_launch
                    )
                    # CPU staging split (CpuModel.staging_timing)
                    c = (
                        phase.other_flops / cpu_full_flops
                        if phase.other_flops
                        else 0.0
                    )
                    m = (
                        phase.bytes_moved / cpu_bw
                        if phase.bytes_moved
                        else 0.0
                    )
                    exposed = max(0.0, m - c)
                    operation = max(c, m) - exposed
                    rows.append(
                        (
                            "cpx",
                            launch,
                            prog_phase(
                                phase.other_flops * prog_penalty,
                                phase.bytes_moved,
                            ),
                            operation,
                            exposed,
                            phase.bytes_moved,
                        )
                    )
            table.hybrid_plan[oid] = rows

    if policy.uses_gpu and graph.input_bytes > 0:
        table.staging_s = gpu_model.exposed_transfer_s(graph)
    return table


def cost_table(
    graph: Graph, policy: SchedulingPolicy, config: SystemConfig
) -> Optional[CostTable]:
    """Memoized table for (graph, prepared policy, config); None if numpy
    is unavailable (callers then run the scalar reference engine)."""
    if _np is None:
        return None
    gid = id(graph)
    per_graph = _TABLES.get(gid)
    if per_graph is None:
        per_graph = {}
        _TABLES[gid] = per_graph
        weakref.finalize(graph, _TABLES.pop, gid, None)
    key = (policy.signature(), config_signature(config))
    table = per_graph.get(key)
    if table is None:
        table = _build(graph, policy, config)
        per_graph[key] = table
    return table
