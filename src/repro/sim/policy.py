"""Scheduling-policy interface consumed by the simulator.

A policy answers one question per operation: *where may this operation
execute, in preference order?*  The simulator tries each placement in turn
against live resource availability and queues the task if none is free —
which realizes the paper's principle 2 ("in case all fixed-function or
programmable PIMs are busy, the runtime will schedule the candidate
operations to execute on CPU") when the policy lists ``cpu`` as a fallback.

Placement tokens:

* ``"cpu"`` — whole kernel on a host executor slot (binary #1);
* ``"gpu"`` — whole kernel on the discrete GPU (GPU baseline only);
* ``"prog"`` — whole kernel on one programmable PIM (binary #4);
* ``"fixed"`` — MAC kernel on the fixed-function pool, host-coordinated
  (binary #2);
* ``"hybrid"`` — recursive PIM kernel: complex phases on a programmable
  PIM, MAC sub-kernels on the pool (binaries #3 + #4);
* ``"hybrid_host"`` — complex phases on the host, MAC sub-kernels on the
  pool (the Fixed-PIM baseline's way of running complex ops).
"""

from __future__ import annotations

import abc
from typing import Tuple

from ..config import SystemConfig
from ..nn.graph import Graph
from ..nn.ops import Op

PLACEMENTS = ("cpu", "gpu", "prog", "fixed", "hybrid", "hybrid_host")


class SchedulingPolicy(abc.ABC):
    """Abstract placement policy for one system configuration."""

    #: Human-readable configuration name ("CPU", "Hetero PIM", ...).
    name: str = "abstract"
    #: Host executor slots available for operation execution.
    cpu_slots: int = 1
    #: Whether the discrete GPU participates (GPU baseline).
    uses_gpu: bool = False
    #: Recursive PIM kernels enabled (RC).
    recursive_kernels: bool = False
    #: Operation pipeline enabled (OP).
    operation_pipeline: bool = False
    #: Steps of lookahead the pipeline may draw backfill work from.
    pipeline_depth: int = 0
    #: Max programmable PIMs one kernel may gang together (the Progr-PIM
    #: baseline spreads a wide operation across several ARM PIMs).
    prog_gang_limit: int = 1

    def prepare(self, graph: Graph, config: SystemConfig) -> None:
        """Hook run once before simulation (profiling, selection)."""

    @abc.abstractmethod
    def placements(self, op: Op) -> Tuple[str, ...]:
        """Preference-ordered placements for ``op`` (non-empty)."""

    def priority(self, op: Op) -> int:
        """Scheduling class of ``op``: lower runs first.  Mixed-workload
        policies deprioritize the co-run tenant so it only consumes idle
        resources (paper section VI-F)."""
        return 0

    def decision_log(self):
        """Serializable log of this policy's scheduling decisions, if any.

        Profile-driven policies (:class:`repro.runtime.HeteroPimPolicy`)
        return their offload-selection record; static policies return None.
        """
        return None

    def publish_metrics(self, registry) -> None:
        """Publish policy-level observability (no-op for static policies)."""

    def signature(self) -> Tuple:
        """Behavioral identity of this policy, for result-cache keying.

        Two policy instances with equal signatures must schedule every
        graph identically under the same :class:`SystemConfig`.  The base
        tuple covers the class and every placement-relevant flag;
        subclasses with extra behavioral state (e.g. the mixed-workload
        tenant restriction) must extend it.  State derived in
        :meth:`prepare` from (graph, config) needs no entry — both inputs
        are fingerprinted separately.
        """
        return (
            type(self).__name__,
            self.name,
            self.cpu_slots,
            self.uses_gpu,
            self.recursive_kernels,
            self.operation_pipeline,
            self.pipeline_depth,
            self.prog_gang_limit,
        )

    def validate(self) -> None:
        if self.cpu_slots < 1:
            raise ValueError(f"{self.name}: cpu_slots must be >= 1")
        if self.pipeline_depth < 0:
            raise ValueError(f"{self.name}: pipeline_depth must be >= 0")
