"""Simulation result records and their canonical serialization.

:class:`RunResult` is the cached unit of simulation output.  It carries,
besides the paper's headline metrics, the always-on observability
aggregates (per-device busy fractions, the fixed-pool occupancy histogram,
queue-wait totals, the offload-decision log and a flat metrics snapshot) —
they are collected unconditionally because cached results must be
indistinguishable from fresh ones whatever the caller's observability
settings.

Serialization is versioned and canonical: :meth:`RunResult.to_dict` /
:meth:`RunResult.from_dict` round-trip exactly (floats survive via
``repr``-based JSON), and :func:`canonical_dumps` renders any JSON payload
with sorted keys and fixed separators so the same record always produces
the same bytes.  The result cache (:mod:`repro.sim.cache`), the
:class:`~repro.obs.report.RunReport` facade and the benchmark harness's
``BENCH_summary.json`` all serialize through this module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import SimulationError
from ..hardware.power import DeviceUsage, EnergyBreakdown
from .activity import TimeBreakdown

#: Version tag embedded in every serialized result; bump when the schema
#: changes shape (loaders reject unknown versions instead of guessing).
#: v3: added the ``faults`` fault/recovery log (None on fault-free runs).
RESULT_SCHEMA_VERSION = 3


def canonical_dumps(payload, indent: Optional[int] = None) -> str:
    """Deterministic JSON: sorted keys, fixed separators, exact floats."""
    if indent is None:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return json.dumps(payload, sort_keys=True, indent=indent)


@dataclass(frozen=True)
class RunResult:
    """Outcome of simulating one workload on one configuration.

    All "per-step" quantities are steady-state estimates over the measured
    steps (the paper reports per-training-step time and energy).
    """

    config_name: str
    model_name: str
    steps: int
    makespan_s: float
    step_time_s: float
    breakdown: TimeBreakdown
    usage: DeviceUsage
    energy: EnergyBreakdown
    fixed_pim_utilization: float
    events_processed: int
    #: Per-model step completion times for co-run (mixed-workload) runs.
    per_model_step_time_s: Optional[Dict[str, float]] = None
    #: Fraction of capacity-time each device spent busy (0..1), keyed by
    #: device lane ("cpu", "gpu", "prog", "fixed"); absent lanes omitted.
    device_busy_fraction: Optional[Dict[str, float]] = None
    #: Time-at-occupancy histogram of the fixed-function pool (the paper's
    #: bank-level MAC units): seconds spent idle (bin 0) or with busy-unit
    #: fraction in each of 16 equal bins (bins 1..16).  Sums to makespan.
    bank_occupancy_hist_s: Optional[Tuple[float, ...]] = None
    #: Total ready-to-start queueing delay accumulated per device lane.
    queue_wait_s: Optional[Dict[str, float]] = None
    #: Offload-decision log from the scheduling policy (candidate ranks,
    #: coverage), when the policy performs profile-driven selection.
    selection: Optional[Dict[str, object]] = None
    #: Flat observability snapshot (engine/scheduler/pool counters).
    metrics: Optional[Dict[str, float]] = None
    #: Fault/recovery log (spec, injected events, retries, degradations,
    #: re-selections) when the run was fault-injected; None otherwise.
    faults: Optional[Dict[str, object]] = None

    @property
    def step_breakdown(self) -> TimeBreakdown:
        """Breakdown normalized to one training step (Figure 8 bar)."""
        if self.breakdown.total_s <= 0 or self.makespan_s <= 0:
            return self.breakdown
        return self.breakdown.scaled(self.step_time_s / self.makespan_s)

    @property
    def step_energy_j(self) -> float:
        """Total energy per training step."""
        return self.energy.total_j / self.steps

    @property
    def step_dynamic_energy_j(self) -> float:
        """Dynamic (+memory) energy per step — the Figure 9 quantity."""
        return self.energy.dynamic_total_j / self.steps

    @property
    def average_power_w(self) -> float:
        return self.energy.average_power_w

    def edp(self) -> float:
        """Per-step energy-delay product (Figure 17a metric)."""
        return self.step_energy_j * self.step_time_s

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other`` (>1 = faster)."""
        return other.step_time_s / self.step_time_s

    def energy_ratio_over(self, other: "RunResult") -> float:
        """How much less dynamic energy than ``other`` (>1 = less energy)."""
        return other.step_dynamic_energy_j / self.step_dynamic_energy_j

    # ------------------------------------------------------------------
    # versioned serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict; exact round trip via :meth:`from_dict`."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "config_name": self.config_name,
            "model_name": self.model_name,
            "steps": self.steps,
            "makespan_s": self.makespan_s,
            "step_time_s": self.step_time_s,
            "breakdown": self.breakdown.to_dict(),
            "usage": self.usage.to_dict(),
            "energy": self.energy.to_dict(),
            "fixed_pim_utilization": self.fixed_pim_utilization,
            "events_processed": self.events_processed,
            "per_model_step_time_s": (
                dict(sorted(self.per_model_step_time_s.items()))
                if self.per_model_step_time_s is not None
                else None
            ),
            "device_busy_fraction": (
                dict(sorted(self.device_busy_fraction.items()))
                if self.device_busy_fraction is not None
                else None
            ),
            "bank_occupancy_hist_s": (
                list(self.bank_occupancy_hist_s)
                if self.bank_occupancy_hist_s is not None
                else None
            ),
            "queue_wait_s": (
                dict(sorted(self.queue_wait_s.items()))
                if self.queue_wait_s is not None
                else None
            ),
            "selection": self.selection,
            "metrics": (
                {
                    k: list(v) if isinstance(v, (list, tuple)) else v
                    for k, v in sorted(self.metrics.items())
                }
                if self.metrics is not None
                else None
            ),
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        version = data.get("schema")
        if version != RESULT_SCHEMA_VERSION:
            raise SimulationError(
                f"unsupported RunResult schema {version!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        hist = data.get("bank_occupancy_hist_s")
        metrics = data.get("metrics")
        if metrics is not None:
            metrics = {
                k: tuple(v) if isinstance(v, list) else v
                for k, v in metrics.items()
            }
        return cls(
            config_name=data["config_name"],
            model_name=data["model_name"],
            steps=data["steps"],
            makespan_s=data["makespan_s"],
            step_time_s=data["step_time_s"],
            breakdown=TimeBreakdown.from_dict(data["breakdown"]),
            usage=DeviceUsage.from_dict(data["usage"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
            fixed_pim_utilization=data["fixed_pim_utilization"],
            events_processed=data["events_processed"],
            per_model_step_time_s=data.get("per_model_step_time_s"),
            device_busy_fraction=data.get("device_busy_fraction"),
            bank_occupancy_hist_s=tuple(hist) if hist is not None else None,
            queue_wait_s=data.get("queue_wait_s"),
            selection=data.get("selection"),
            metrics=metrics,
            faults=data.get("faults"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return canonical_dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))
