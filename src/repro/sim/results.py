"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hardware.power import DeviceUsage, EnergyBreakdown
from .activity import TimeBreakdown


@dataclass(frozen=True)
class RunResult:
    """Outcome of simulating one workload on one configuration.

    All "per-step" quantities are steady-state estimates over the measured
    steps (the paper reports per-training-step time and energy).
    """

    config_name: str
    model_name: str
    steps: int
    makespan_s: float
    step_time_s: float
    breakdown: TimeBreakdown
    usage: DeviceUsage
    energy: EnergyBreakdown
    fixed_pim_utilization: float
    events_processed: int
    #: Per-model step completion times for co-run (mixed-workload) runs.
    per_model_step_time_s: Optional[Dict[str, float]] = None

    @property
    def step_breakdown(self) -> TimeBreakdown:
        """Breakdown normalized to one training step (Figure 8 bar)."""
        if self.breakdown.total_s <= 0 or self.makespan_s <= 0:
            return self.breakdown
        return self.breakdown.scaled(self.step_time_s / self.makespan_s)

    @property
    def step_energy_j(self) -> float:
        """Total energy per training step."""
        return self.energy.total_j / self.steps

    @property
    def step_dynamic_energy_j(self) -> float:
        """Dynamic (+memory) energy per step — the Figure 9 quantity."""
        return self.energy.dynamic_total_j / self.steps

    @property
    def average_power_w(self) -> float:
        return self.energy.average_power_w

    def edp(self) -> float:
        """Per-step energy-delay product (Figure 17a metric)."""
        return self.step_energy_j * self.step_time_s

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other`` (>1 = faster)."""
        return other.step_time_s / self.step_time_s

    def energy_ratio_over(self, other: "RunResult") -> float:
        """How much less dynamic energy than ``other`` (>1 = less energy)."""
        return other.step_dynamic_energy_j / self.step_dynamic_energy_j
