"""Trace-driven simulation of training steps on one system configuration.

The :class:`Simulation` executes a generated operation trace
(:mod:`repro.sim.tracegen`) against the device executors under a
:class:`~repro.sim.policy.SchedulingPolicy`.  It produces the quantities
the paper's evaluation reports: per-step time with its
sync/data-movement/operation breakdown (Fig 8/11), device usage and energy
(Fig 9/14/17), and fixed-function-PIM utilization (Fig 15).
"""

from __future__ import annotations

import gc
import os
from dataclasses import dataclass, field
from heapq import heappop, heappush
from operator import attrgetter
from typing import Callable, Dict, List, Optional, Tuple

from ..config import SystemConfig, default_config
from ..errors import SchedulingError, SimulationError
from ..hardware.cpu import CpuModel
from ..hardware.fixed_pim import FixedPIMPool
from ..hardware.gpu import GpuModel
from ..hardware.power import DeviceUsage, EnergyModel
from ..nn.graph import Graph
from ..obs.metrics import MetricsRegistry
from ..pimcl.kernel import BinaryKind, PhaseKind
from .activity import COMPUTE, DATA_MOVEMENT, SYNC, ActivityTracker
from .devices import FixedPoolExecutor, SlotDevice
from .engine import Engine
from .optable import cost_table
from .policy import SchedulingPolicy
from .results import RunResult
from .timeline import Timeline, TimelineEntry
from .tracegen import TaskSpec, generate_trace

_STAGING_PREFIX = "__staging__"

#: ``REPRO_ENGINE=scalar`` forces the original per-object scalar hot path
#: (the oracle of the vectorized-engine equivalence sweep); any other
#: value (or unset) uses the vectorized cost table on fault-free runs.
_ENV_ENGINE = "REPRO_ENGINE"

_SORT_KEY = attrgetter("sort_key")

#: The three fixed-pool placements share one availability predicate
#: (``_fixed_available``), so a capacity failure on any of them blocks the
#: whole group for the rest of the drain round.
_CANON_PLACE = {"hybrid": "fixed", "hybrid_host": "fixed"}


@dataclass(slots=True)
class _Task:
    uid: str
    step: int
    spec: Optional[TaskSpec]  # None for pseudo-tasks (GPU input staging)
    indeg: int
    dependents: List[str] = field(default_factory=list)
    done: bool = False
    started: bool = False
    priority: int = 0
    #: Placement chosen at start time (for timeline recording).
    device: Optional[str] = None
    start_s: float = 0.0
    #: When the task's last dependence resolved (queue-wait baseline).
    ready_s: float = 0.0
    #: Scheduling order (priority, step, topo index) — a unique total order,
    #: precomputed because the drain loop sorts the ready list every round.
    sort_key: Tuple[int, int, int] = (0, 0, 0)
    #: Preference-ordered placements, fixed per task (policies are pure
    #: per-op once prepared) — precomputed to keep ``_try_start`` cheap.
    #: Fault recovery may rewrite this (degradation / re-selection).
    places: Tuple[str, ...] = ()
    #: ``places`` filtered through the profile-aware fallback guard —
    #: static while the task is not degraded, computed on first start
    #: attempt (degraded tasks bypass the guard and use ``places``).
    allowed: Optional[Tuple[str, ...]] = None
    #: True once fault recovery rerouted this task off its preferred
    #: placement; degraded tasks bypass the profile-aware fallback guard
    #: (completing the step beats the slowdown limit).
    degraded: bool = False
    #: Fixed-pool submission attempts consumed by the retry/backoff loop.
    fault_attempts: int = 0
    #: Parking generation: heap entries created when the task parked carry
    #: the then-current value, so bumping it lazily invalidates every
    #: outstanding entry (a task parks into one heap per placement).
    park_gen: int = 0


class Simulation:
    """One simulated run of ``graph`` under ``policy``."""

    def __init__(
        self,
        graph: Graph,
        policy: SchedulingPolicy,
        config: Optional[SystemConfig] = None,
        steps: Optional[int] = None,
        record_timeline: bool = False,
        observe: Optional[MetricsRegistry] = None,
        faults=None,
        validate: bool = False,
    ):
        self.graph = graph
        #: Invariant checking (see :mod:`repro.validate.invariants`):
        #: validated runs always record a timeline — the dependence-order
        #: and timeline-agreement invariants need it.
        self.validate = bool(validate)
        self.timeline: Optional[Timeline] = (
            Timeline() if (record_timeline or self.validate) else None
        )
        #: Observability registry the run publishes into at collection
        #: time.  The simulator's own accounting is always on (cached
        #: results must not depend on observer settings); a caller-supplied
        #: registry just receives the same snapshot.
        self.obs = observe if observe is not None else MetricsRegistry()
        self.policy = policy
        self.config = config if config is not None else default_config()
        self.steps = steps if steps is not None else self.config.runtime.measured_steps
        if self.steps < 1:
            raise SimulationError("need at least one simulated step")
        policy.validate()
        policy.prepare(graph, self.config)

        self.engine = Engine()
        self.tracker = ActivityTracker()
        self.cpu_model = CpuModel(self.config.cpu)
        self.gpu_model = GpuModel(self.config.gpu, graph.name)

        self.cpu = SlotDevice(self.engine, "cpu", policy.cpu_slots)
        self.gpu = SlotDevice(self.engine, "gpu", 1)
        self.prog = SlotDevice(self.engine, "prog", self.config.prog_pim.n_pims)
        pool = FixedPIMPool(self.config.fixed_pim.n_units)
        fp = self.config.fixed_pim
        self.fixed = FixedPoolExecutor(
            engine=self.engine,
            pool=pool,
            mac_rate_per_unit=fp.simd_width
            * fp.macs_per_lane_cycle
            * self.config.pim_frequency_hz,
            byte_rate_per_unit=self.config.stack.bandwidth / fp.reference_units,
            pipeline=policy.operation_pipeline,
            on_units_freed=self._units_freed,
        )
        # programmable-PIM effective rates (PLL-scaled with the stack)
        prog_cfg = self.config.prog_pim
        self._prog_flops_per_pim = (
            prog_cfg.cores_per_pim
            * self.config.prog_pim_frequency_hz
            * prog_cfg.flops_per_core_cycle
        )
        self._prog_other_penalty = prog_cfg.other_flop_penalty

        self.usage = DeviceUsage()
        self._tasks: Dict[str, _Task] = {}
        self._ready: List[_Task] = []
        #: Vectorized per-op cost table (see :mod:`repro.sim.optable`):
        #: used only on fault-free runs (faults derate device rates
        #: mid-run, invalidating precomputed costs) and disabled by
        #: ``REPRO_ENGINE=scalar``, which keeps the original scalar code
        #: paths alive as the equivalence oracle.
        self._table = (
            cost_table(graph, policy, self.config)
            if (
                faults is None
                and os.environ.get(_ENV_ENGINE, "").lower() != "scalar"
            )
            else None
        )
        #: Memoized placement-duration estimates: every quantity feeding
        #: ``_estimate`` (device rates, slot counts, op costs) is constant
        #: for the lifetime of one simulation, so estimates are keyed by
        #: (placement, op identity).  Ops live as long as the graph does,
        #: so the id cannot be reused while the entry is reachable.  With a
        #: cost table the cache starts fully populated (a per-run copy:
        #: the shared table stays immutable).
        self._estimate_cache: Dict[Tuple[str, int], float] = (
            dict(self._table.est) if self._table is not None else {}
        )
        self._fallback_cache: Dict[Tuple[int, str, str], bool] = {}
        self._gang_cache: Dict[int, int] = (
            dict(self._table.gang) if self._table is not None else {}
        )
        self._min_step = 0
        self._step_remaining: Dict[int, int] = {}
        self._step_end: Dict[int, float] = {}
        self._model_step_remaining: Dict[tuple, int] = {}
        self._model_step_end: Dict[tuple, float] = {}
        #: Waiters are (attempt, on_dead) pairs: ``attempt`` retries the
        #: submission, ``on_dead`` reroutes the work if the device's
        #: capacity drops to zero while waiting (fault injection).
        self._fixed_waiters: List[Tuple[Callable[[], bool], Callable[[], None]]] = []
        self._slot_waiters: Dict[
            str, List[Tuple[Callable[[], bool], Optional[Callable[[], None]]]]
        ] = {
            "cpu": [],
            "prog": [],
        }
        self._drain_scheduled = False
        self._drain_rounds = 0
        #: Canonical placements whose capacity was released since the last
        #: drain scan consumed the set (the fixed-pool trio collapses to
        #: "fixed"); gates which parked heaps the next scan considers.
        self._freed: set = set()
        #: Tasks that failed a start attempt, parked off the ready list in
        #: one sort-ordered heap per canonical placement they could use.
        #: A capacity release re-examines only the best parked task of the
        #: freed placement instead of re-testing every waiter.  Entries
        #: are ``(sort_key, park_gen, task)``; sort_key is a unique total
        #: order, stale entries are dropped lazily on pop (gen mismatch).
        self._parked: Dict[str, List[tuple]] = {
            "cpu": [],
            "gpu": [],
            "prog": [],
            "fixed": [],
        }
        self._tasks_started: Dict[str, int] = {}
        self._queue_wait: Dict[str, float] = {}
        #: Fault-injection state (None on the fault-free fast path).
        self.faults = faults
        self._injector = None
        self._registers = None
        self._dram_scale = 1.0
        self._build_tasks()
        if faults is not None:
            # lazy import: repro.runtime imports this module at package
            # init, so the faults package (which reads the register file
            # from repro.runtime.registers) cannot be imported at the top
            from ..faults.injector import FaultInjector

            self._injector = FaultInjector(faults, self)
            self._registers = self._injector.registers

    # ------------------------------------------------------------------
    # task-graph construction
    # ------------------------------------------------------------------
    def _build_tasks(self) -> None:
        specs = generate_trace(self.graph, self.steps)
        table = self._table
        for spec in specs:
            if table is not None:
                oid = id(spec.op)
                priority = table.priority[oid]
                places = table.places[oid]
            else:
                priority = self.policy.priority(spec.op)
                places = self.policy.placements(spec.op)
            self._tasks[spec.uid] = _Task(
                uid=spec.uid,
                step=spec.step,
                spec=spec,
                indeg=len(spec.deps),
                priority=priority,
                sort_key=(priority, spec.step, spec.topo_index),
                places=places,
            )
        for spec in specs:
            for dep in spec.deps:
                self._tasks[dep].dependents.append(spec.uid)
        if self.policy.uses_gpu and self.graph.input_bytes > 0:
            self._add_staging_tasks(specs)
        for task in self._tasks.values():
            self._step_remaining[task.step] = (
                self._step_remaining.get(task.step, 0) + 1
            )
            model = self._task_model(task)
            key = (model, task.step)
            self._model_step_remaining[key] = (
                self._model_step_remaining.get(key, 0) + 1
            )
            if task.indeg == 0:
                self._ready.append(task)

    def _add_staging_tasks(self, specs: List[TaskSpec]) -> None:
        """One host->device staging pseudo-task per step; the step's entry
        operations wait for it (the minibatch — and any swapped-out
        activations of an over-capacity working set — must be resident)."""
        # Entry operations (no intra-step dependence) are step-invariant:
        # an op's intra-step deps are exactly its graph predecessors, so
        # the set is computed once instead of rescanning every step's
        # specs (the scan was quadratic in steps x ops).  Iteration stays
        # in spec order, so dependent order — and thus scheduling — is
        # unchanged.
        entry_ops = [
            spec.uid.split("/", 1)[1]
            for spec in specs
            if spec.step == 0 and not any(d.startswith("s0/") for d in spec.deps)
        ]
        for step in range(self.steps):
            uid = f"s{step}/{_STAGING_PREFIX}"
            staging = _Task(
                uid=uid, step=step, spec=None, indeg=0,
                sort_key=(0, step, -1),
            )
            self._tasks[uid] = staging
            for op_name in entry_ops:
                task = self._tasks[f"s{step}/{op_name}"]
                task.indeg += 1
                staging.dependents.append(task.uid)

    def _task_model(self, task: _Task) -> str:
        if task.spec is None:
            return self.graph.name
        return str(task.spec.op.attrs.get("source_model", self.graph.name))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the trace to completion and collect metrics."""
        self._schedule_drain()
        # The event loop allocates heavily (closures, heap entries) but
        # creates no cycles needing collection mid-run; pausing the cyclic
        # GC removes its periodic full-heap scans from the hot loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.engine.run()
        finally:
            if gc_was_enabled:
                gc.enable()
        unfinished = [t.uid for t in self._tasks.values() if not t.done]
        if unfinished:
            raise SimulationError(
                f"simulation deadlocked with {len(unfinished)} unfinished "
                f"tasks, e.g. {sorted(unfinished)[:5]}"
            )
        result = self._collect()
        if self.validate:
            # lazy: repro.validate depends on sim.results; importing it at
            # module top would cycle through the package __init__
            from ..validate.invariants import check_simulation

            check_simulation(self, result)
        return result

    @property
    def _min_unfinished_step(self) -> int:
        # maintained incrementally by _finish; steps only ever complete
        return self._min_step

    def _admissible(self, task: _Task) -> bool:
        return task.step <= self._min_step + self.policy.pipeline_depth

    def _schedule_drain(self) -> None:
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        self.engine.after(0.0, self._drain)

    def _unpark_all(self) -> None:
        """Return every parked task to the ready list (placement rewrite:
        the capacity reasoning behind the parking no longer applies)."""
        ready = self._ready
        for heap in self._parked.values():
            for _key, gen, task in heap:
                if gen == task.park_gen and not task.started:
                    task.park_gen += 1
                    ready.append(task)
            heap.clear()

    def _park(self, task: _Task, places: Tuple[str, ...]) -> None:
        """Park a task that just failed (or provably would fail) a start
        attempt: one heap entry per canonical placement, so any placement's
        release can rediscover it in scheduling order."""
        task.park_gen += 1
        entry = (task.sort_key, task.park_gen, task)
        parked = self._parked
        for p in places:
            heappush(parked[_CANON_PLACE.get(p, p)], entry)

    def _units_freed(self) -> None:
        """Fixed-pool capacity returned (sub-kernel completion, token drop,
        fault shrink): admit waiting work."""
        self._freed.add("fixed")
        self._schedule_drain()

    def _drain(self) -> None:
        self._drain_scheduled = False
        self._drain_rounds += 1
        # retry mid-kernel sub-kernel submissions first (they hold devices)
        if self._fixed_waiters:
            waiters, self._fixed_waiters = self._fixed_waiters, []
            for attempt, on_dead in waiters:
                if attempt():
                    continue
                if (
                    self._injector is not None
                    and self.fixed.pool.capacity_units == 0
                ):
                    on_dead()  # pool died while queued: degrade, don't hang
                else:
                    self._fixed_waiters.append((attempt, on_dead))
        # Failed start attempts are side-effect-free and every placement's
        # availability predicate is task-independent (a pure capacity
        # check), so a task that failed cannot start until capacity is
        # released on one of its placements.  Such tasks are parked off
        # the ready list into per-placement heaps; a release marks the
        # placement freed, and the scan below merges the *best* parked
        # task of each freed placement with the sorted ready batch instead
        # of re-testing every waiter.  Scalar semantics are preserved: the
        # merge visits candidates in exactly the ready-list sort order, a
        # parked task skipped this round would have failed anyway (its
        # placements stayed exhausted), and the position check below keeps
        # the scan single-pass per round like the original drain.
        freed = self._freed
        if not self._ready and not freed:
            return
        # Swap the ready list out before iterating: synchronous completions
        # inside _try_start append newly-unblocked tasks to self._ready,
        # which the next drain round picks up (same semantics as iterating
        # a snapshot).  sort_key is a unique total order, so the rebuilt
        # leftover list is deterministic regardless of insertion order.
        batch = self._ready
        self._ready = []
        batch.sort(key=_SORT_KEY)
        leftover: List[_Task] = []
        depth = self.policy.pipeline_depth
        parked = self._parked
        #: Canonical placements proven capacity-exhausted this scan.
        blocked: set = set()
        #: Heaps of freed placements still worth pulling from.
        active: Dict[str, List[tuple]] = {}
        for p in freed:
            h = parked[p]
            if h:
                active[p] = h
        freed.clear()
        i = 0
        n = len(batch)
        #: Sort key of the last candidate visited — the merge's position.
        #: A parked task rediscovered *behind* this position was already
        #: visited (and failed) at its own position this round; attempting
        #: it now would double-visit, so it defers to the next round.
        pos = None
        while True:
            # Drop stale heap tops, withdraw exhausted heaps, and find the
            # best parked candidate among the freed placements.
            best_place = None
            best_key = None
            if active:
                for p in list(active):
                    h = active[p]
                    while h:
                        top = h[0]
                        t = top[2]
                        if t.started or top[1] != t.park_gen:
                            heappop(h)
                        else:
                            break
                    if not h:
                        del active[p]
                    elif best_key is None or h[0][0] < best_key:
                        best_key = h[0][0]
                        best_place = p
            if i < n and (best_key is None or batch[i].sort_key < best_key):
                task = batch[i]
                i += 1
                pos = task.sort_key
                if task.started:
                    continue
                if task.step > self._min_step + depth:
                    leftover.append(task)
                    continue
                places = task.places if task.degraded else task.allowed
                if blocked and places:
                    for p in places:
                        if _CANON_PLACE.get(p, p) not in blocked:
                            break
                    else:
                        # provably would fail: every placement exhausted
                        self._park(task, places)
                        continue
                if self._try_start(task):
                    task.started = True
                    if freed:
                        # a zero-duration activity chain inside the start
                        # released capacity synchronously: later candidates
                        # may use it this round, exactly as in the scalar
                        # single-pass drain
                        for p in freed:
                            blocked.discard(p)
                            h = parked[p]
                            if h:
                                active[p] = h
                        freed.clear()
                else:
                    places = task.places if task.degraded else task.allowed
                    if places:
                        self._park(task, places)
                        for p in places:
                            cp = _CANON_PLACE.get(p, p)
                            blocked.add(cp)
                            active.pop(cp, None)
                    else:  # pragma: no cover - placements are never empty
                        leftover.append(task)
                continue
            if best_place is None:
                break
            h = active[best_place]
            entry = heappop(h)
            task = entry[2]
            if pos is not None and best_key < pos:
                # The placement freed mid-round, after the merge already
                # passed this task's position — where it was (or would
                # have been) visited and failed.  Single-pass semantics:
                # retry from the ready list next round.
                task.park_gen += 1
                self._ready.append(task)
                continue
            pos = best_key
            # Parked tasks stay admissible: they passed the pipeline-depth
            # gate when parked and _min_step only ever advances.
            if self._try_start(task):
                task.started = True
                task.park_gen += 1
                if freed:
                    for p in freed:
                        blocked.discard(p)
                        hh = parked[p]
                        if hh:
                            active[p] = hh
                    freed.clear()
            else:
                # capacity re-exhausted: stop pulling from its placements
                heappush(h, entry)
                places = task.places if task.degraded else task.allowed
                for p in places:
                    cp = _CANON_PLACE.get(p, p)
                    blocked.add(cp)
                    active.pop(cp, None)
        self._ready.extend(leftover)

    def _finish(self, task: _Task) -> None:
        if task.done:
            raise SimulationError(f"task {task.uid} finished twice")
        task.done = True
        now = self.engine.now
        if self.timeline is not None:
            self.timeline.add(
                TimelineEntry(
                    uid=task.uid,
                    op_type=task.spec.op.op_type if task.spec else "InputStaging",
                    device=task.device or "cpu",
                    step=task.step,
                    start_s=task.start_s,
                    end_s=now,
                    ready_s=task.ready_s,
                )
            )
        remaining = self._step_remaining[task.step] - 1
        self._step_remaining[task.step] = remaining
        if remaining == 0:
            self._step_end[task.step] = now
            while (
                self._min_step < self.steps
                and self._step_remaining.get(self._min_step, 0) == 0
            ):
                self._min_step += 1
        key = (self._task_model(task), task.step)
        self._model_step_remaining[key] -= 1
        if self._model_step_remaining[key] == 0:
            self._model_step_end[key] = now
        tasks = self._tasks
        ready = self._ready
        for dep_uid in task.dependents:
            dependent = tasks[dep_uid]
            dependent.indeg -= 1
            if dependent.indeg == 0:
                dependent.ready_s = now
                ready.append(dependent)
        self._schedule_drain()

    # ------------------------------------------------------------------
    # placement dispatch
    # ------------------------------------------------------------------
    def _fixed_available(self, uid: str) -> bool:
        if self._injector is not None:
            # runtime reaction, paper Figure 7: consult the idle/busy
            # register file before dispatching to the fixed pool
            if self.fixed.pool.capacity_units == 0:
                return False
            if not self._registers.snapshot().any_fixed_idle:
                return False
        if self.policy.operation_pipeline:
            return self.fixed.pool.free_units > 0
        return self.fixed.token_holder is None

    # ------------------------------------------------------------------
    # placement cost estimates (used for the profile-aware CPU fallback)
    # ------------------------------------------------------------------
    def _estimate(self, place: str, op) -> float:
        """Rough duration estimate of ``op`` on ``place`` (ignoring queueing).

        Memoized per (place, op): the estimate deliberately ignores live
        queue state, so it is invariant over one simulation.
        """
        key = (place, id(op))
        cached = self._estimate_cache.get(key)
        if cached is None:
            cached = self._estimate_uncached(place, op)
            self._estimate_cache[key] = cached
        return cached

    def _estimate_uncached(self, place: str, op) -> float:
        if place == "cpu":
            fraction = 1.0 / self.policy.cpu_slots
            return self.cpu_model.op_timing(op, cores_fraction=fraction).total_s
        if place == "gpu":
            return self.gpu_model.op_timing(op).total_s
        if place == "prog":
            flops = (
                op.cost.mac_flops
                + op.cost.other_flops * self._prog_other_penalty
            )
            gang = self._prog_gang_size(op)
            return self._prog_phase_duration(flops / gang, op.traffic_bytes)
        if place in ("fixed", "hybrid", "hybrid_host"):
            units = min(op.cost.parallelism, self.fixed.pool.n_units)
            mac_s = self.fixed.normalized_work(
                op.cost.macs, op.traffic_bytes
            ) / max(1, units)
            complex_s = 0.0
            if place == "hybrid":
                complex_s = self._prog_phase_duration(
                    op.cost.other_flops * self._prog_other_penalty,
                    op.staging_bytes,
                )
            elif place == "hybrid_host":
                complex_s = self.cpu_model.staging_timing(
                    op.staging_bytes, op.cost.other_flops
                ).total_s
            return mac_s + complex_s
        raise SchedulingError(f"unknown placement {place!r}")

    def _fallback_allowed(self, op, place: str, preferred: str) -> bool:
        """Principle 2, profile-aware: spill to a secondary placement only
        when it is not dramatically slower than the (busy) preferred one —
        the runtime knows both costs from step-1 profiling."""
        key = (id(op), place, preferred)
        cached = self._fallback_cache.get(key)
        if cached is None:
            limit = self.config.runtime.cpu_fallback_slowdown_limit
            preferred_estimate = self._estimate(preferred, op)
            cached = preferred_estimate <= 0 or (
                self._estimate(place, op) <= limit * preferred_estimate
            )
            self._fallback_cache[key] = cached
        return cached

    def _allowed_places(self, task: _Task) -> Tuple[str, ...]:
        """``task.places`` filtered through the profile-aware fallback
        guard (principle 2).  The guard's verdicts are memoized for the
        whole run, so the surviving list is static per non-degraded task
        and computed once instead of on every retry round."""
        places = task.places
        if not places:  # unplaceable: let the deadlock detector report it
            task.allowed = ()
            return ()
        first = places[0]
        op = task.spec.op
        allowed = tuple(
            p
            for p in places
            if p == first or self._fallback_allowed(op, p, first)
        )
        task.allowed = allowed
        return allowed

    def _try_start(self, task: _Task) -> bool:
        if task.spec is None:
            self._mark_started(task, "gpu")
            self._start_staging(task)
            return True
        op = task.spec.op
        if task.degraded:
            # degraded tasks bypass the fallback guard: completing the
            # step beats the slowdown limit
            places = task.places
        else:
            places = task.allowed
            if places is None:
                places = self._allowed_places(task)
        # A deprioritized (co-run tenant) task only consumes *idle* capacity:
        # it never jumps ahead of primary work queued for a device (the
        # ready list is already priority-ordered, so primary tasks get the
        # first claim on freed slots each scheduling round).
        background = task.priority > 0
        for place in places:
            if place == "cpu":
                if self.cpu.try_acquire():
                    self._mark_started(task, "cpu")
                    self._start_cpu(task)
                    return True
            elif place == "gpu":
                if self.gpu.try_acquire():
                    self._mark_started(task, "gpu")
                    self._start_gpu(task)
                    return True
            elif place == "prog":
                if background and self._slot_waiters["prog"]:
                    continue
                free = self.prog.free_slots
                if free > 0:
                    gang = min(self._prog_gang_size(op), free)
                    if self.prog.try_acquire(gang):
                        self._mark_started(task, "prog")
                        self._start_prog(task, gang)
                        return True
            elif place == "fixed":
                if self._fixed_available(task.uid):
                    if not self.fixed.try_take_token(task.uid):
                        continue
                    self._mark_started(task, "fixed")
                    self._start_fixed(task)
                    return True
            elif place in ("hybrid", "hybrid_host"):
                if self._fixed_available(task.uid):
                    if not self.fixed.try_take_token(task.uid):
                        continue
                    self._mark_started(task, "fixed")
                    self._start_hybrid(
                        task, complex_on="prog" if place == "hybrid" else "cpu"
                    )
                    return True
        return False

    def _mark_started(self, task: _Task, device: str) -> None:
        task.device = device
        now = self.engine.now
        task.start_s = now
        self._tasks_started[device] = self._tasks_started.get(device, 0) + 1
        wait = now - task.ready_s
        if wait > 0:
            self._queue_wait[device] = self._queue_wait.get(device, 0.0) + wait

    # ------------------------------------------------------------------
    # executor-slot waiting (complex phases acquire slots mid-kernel)
    # ------------------------------------------------------------------
    def _acquire_slot(
        self,
        device: SlotDevice,
        then: Callable[[], None],
        on_dead: Optional[Callable[[], None]] = None,
    ) -> None:
        def attempt() -> bool:
            if device.try_acquire():
                then()
                return True
            return False

        if not attempt():
            if on_dead is not None and device.effective_slots == 0:
                on_dead()
                return
            self._slot_waiters[device.name].append((attempt, on_dead))

    def _release_slot(self, device: SlotDevice) -> None:
        device.release()
        self._freed.add(device.name)
        waiters = self._slot_waiters[device.name]
        while waiters and device.free_slots > 0:
            attempt, on_dead = waiters.pop(0)
            if not attempt():
                waiters.insert(0, (attempt, on_dead))
                break
        self._schedule_drain()

    # ------------------------------------------------------------------
    # activity helpers
    # ------------------------------------------------------------------
    def _timed(self, kind: str, duration: float, then: Callable[[], None]) -> None:
        """Run an activity of ``kind`` for ``duration``, then continue."""
        if duration <= 0:
            then()
            return
        self.tracker.begin(kind, self.engine.now)

        def _end() -> None:
            self.tracker.end(kind, self.engine.now)
            then()

        self.engine.after(duration, _end)

    # ------------------------------------------------------------------
    # execution recipes
    # ------------------------------------------------------------------
    def _start_staging(self, task: _Task) -> None:
        table = self._table
        if table is not None and table.staging_s is not None:
            duration = table.staging_s
        else:
            duration = self.gpu_model.exposed_transfer_s(self.graph)
        self.usage.external_bytes += self.graph.input_bytes
        self._timed(DATA_MOVEMENT, duration, lambda: self._finish(task))

    def _start_cpu(self, task: _Task) -> None:
        op = task.spec.op
        table = self._table
        if table is not None:
            operation_s, exposed_s = table.cpu[id(op)]
        else:
            fraction = 1.0 / self.policy.cpu_slots
            timing = self.cpu_model.op_timing(op, cores_fraction=fraction)
            operation_s = timing.operation_s
            exposed_s = timing.exposed_memory_s
        self.usage.external_bytes += op.host_traffic_bytes

        def _after_compute() -> None:
            def _done() -> None:
                self._release_slot(self.cpu)
                self._finish(task)

            self._timed(DATA_MOVEMENT, exposed_s, _done)

        self._timed(COMPUTE, operation_s, _after_compute)

    def _start_gpu(self, task: _Task) -> None:
        op = task.spec.op
        table = self._table
        if table is not None:
            total_s = table.gpu_total[id(op)]
        else:
            total_s = self.gpu_model.op_timing(op).total_s
        self.usage.gpu_bytes += op.traffic_bytes

        def _done() -> None:
            self.gpu.release()
            self._freed.add("gpu")
            self._finish(task)

        self._timed(COMPUTE, total_s, _done)

    def _prog_phase_duration(self, flops: float, nbytes: float) -> float:
        compute_s = flops / self._prog_flops_per_pim if flops else 0.0
        # _dram_scale stays exactly 1.0 without fault injection, keeping
        # the fault-free division bit-identical (x / (b * 1.0) == x / b)
        memory_s = (
            nbytes / (self.config.stack.bandwidth * self._dram_scale)
            if nbytes
            else 0.0
        )
        return max(compute_s, memory_s)

    def _prog_gang_size(self, op) -> int:
        """PIMs a whole-kernel prog execution may gang (>= 1); memoized —
        every input (gang limit, parallelism, slot count) is static."""
        gang = self._gang_cache.get(id(op))
        if gang is None:
            limit = max(1, self.policy.prog_gang_limit)
            gang = max(1, min(limit, op.cost.parallelism, self.prog.slots))
            self._gang_cache[id(op)] = gang
        return gang

    def _start_prog(self, task: _Task, gang: int = 1) -> None:
        """Whole kernel on ``gang`` programmable PIM(s) (binary #4).

        The Progr-PIM baseline gangs several ARM PIMs on one wide
        operation ("as many ARM-based programmable cores as needed",
        section VI); the heterogeneous system uses a single PIM.
        """
        op = task.spec.op
        table = self._table
        if table is not None:
            flops, full_gang, full_duration, traffic = table.prog[id(op)]
            duration = (
                full_duration
                if gang == full_gang
                else self._prog_phase_duration(flops / gang, traffic)
            )
        else:
            flops = (
                op.cost.mac_flops
                + op.cost.other_flops * self._prog_other_penalty
            )
            duration = self._prog_phase_duration(flops / gang, op.traffic_bytes)
        self.usage.internal_bytes += op.traffic_bytes

        def _after_launch() -> None:
            def _done() -> None:
                self.prog.release(gang)
                self._freed.add("prog")
                self._drain_prog_waiters()
                self._finish(task)

            self._timed(COMPUTE, duration, _done)

        self._timed(
            SYNC, self.config.prog_pim.host_launch_overhead_s, _after_launch
        )

    def _drain_prog_waiters(self) -> None:
        waiters = self._slot_waiters["prog"]
        while waiters and self.prog.free_slots > 0:
            attempt, on_dead = waiters.pop(0)
            if not attempt():
                waiters.insert(0, (attempt, on_dead))
                break

    def _fixed_launch_overhead(self) -> float:
        """Launch/sync cost per fixed-function sub-kernel dispatch.

        With recursive kernels the programmable-PIM runtime drives
        launches in-stack; without them every dispatch is a host round
        trip (paper section III-B).
        """
        if self.policy.recursive_kernels:
            return self.config.fixed_pim.pim_launch_overhead_s
        return self.config.fixed_pim.host_launch_overhead_s

    def _mac_dispatch_sync_s(self, macs: int, first: bool) -> float:
        """Total launch/sync time to dispatch one MAC phase.

        The phase consists of ``macs / subkernel_macs`` loadable
        micro-kernels (section II-C's "frequent operation-spawning"); each
        dispatch costs a host round trip, unless the recursive-kernel
        runtime on the programmable PIM issues them in-stack.
        """
        quota = self.config.fixed_pim.subkernel_macs
        launches = max(1, -(-int(macs) // int(quota)))
        per_launch = self._fixed_launch_overhead()
        total = launches * per_launch
        if first:
            # the first dispatch of any kernel is always a host action
            total += self.config.fixed_pim.host_launch_overhead_s - per_launch
        return max(total, 0.0)

    def _submit_mac(
        self,
        task: _Task,
        macs: int,
        nbytes: int,
        want: int,
        on_done: Callable[[], None],
        work: Optional[float] = None,
    ) -> None:
        """Submit one MAC sub-kernel, waiting for units if necessary.

        The sub-kernel counts as compute activity only while it actually
        holds units; waiting time surfaces as sync/idle in the breakdown.
        Under fault injection the submission carries an abort hook: a
        revoked sub-kernel is retried with capped exponential backoff and
        the operation degrades (prog PIM, then CPU) when the pool dies or
        the retry budget runs out.
        """
        uid = task.uid

        def wrapped_done() -> None:
            self.tracker.end(COMPUTE, self.engine.now)
            self.usage.fixed_macs += macs
            on_done()

        def on_abort() -> None:
            # revoked mid-flight: the partial compute is lost
            self.tracker.end(COMPUTE, self.engine.now)
            self._retry_or_degrade(task, resubmit)

        def attempt() -> bool:
            started = self.fixed.try_submit(
                uid, macs, nbytes, want, wrapped_done, on_abort=on_abort,
                work=work,
            )
            if started:
                self.tracker.begin(COMPUTE, self.engine.now)
            return started

        def on_dead() -> None:
            self._retry_or_degrade(task, resubmit, pool_dead=True)

        def resubmit() -> None:
            if attempt():
                return
            if self._injector is not None and self.fixed.pool.capacity_units == 0:
                on_dead()
                return
            self._fixed_waiters.append((attempt, on_dead))

        resubmit()

    def _retry_or_degrade(
        self, task: _Task, resubmit: Callable[[], None], pool_dead: bool = False
    ) -> None:
        """React to an aborted fixed-pool sub-kernel (fault injection).

        Retries with capped exponential backoff while the pool has
        capacity and the retry budget lasts; otherwise degrades the whole
        operation to the programmable PIM (or the CPU).
        """
        spec = self.faults
        task.fault_attempts += 1
        can_retry = (
            not pool_dead
            and self.fixed.pool.capacity_units > 0
            and task.fault_attempts <= spec.max_retries
        )
        if can_retry:
            delay = spec.backoff_s(task.fault_attempts)
            self._injector.log_retry(
                self.engine.now, task.uid, task.fault_attempts, delay
            )
            self._timed(SYNC, delay, resubmit)
            return
        self._degrade_fixed_task(task)

    def _degraded_places(self) -> Tuple[str, ...]:
        if self.prog.effective_slots > 0:
            return ("prog", "cpu")
        return ("cpu",)

    def _degrade_fixed_task(self, task: _Task) -> None:
        """Unwind a fixed/hybrid operation and re-place it entirely.

        The degradation chain is fixed-function PIM -> programmable PIM ->
        CPU: the op restarts from scratch on the best surviving device, so
        a training step always completes.
        """
        self.fixed.drop_token(task.uid)
        self.fixed.window_exit()
        now = self.engine.now
        places = self._degraded_places()
        self._injector.log_degradation(
            now, task.uid, task.device or "fixed", places[0]
        )
        task.started = False
        task.device = None
        task.degraded = True
        task.places = places
        task.allowed = None
        # the task re-enters the ready list directly; invalidate any heap
        # entries left from a pre-degradation parking
        task.park_gen += 1
        task.ready_s = now
        task.fault_attempts = 0
        self._ready.append(task)
        self._schedule_drain()

    # ------------------------------------------------------------------
    # fault reaction (capacity changes; see repro.faults)
    # ------------------------------------------------------------------
    def _set_dram_scale(self, scale: float) -> None:
        """Apply a DRAM-timing derate to newly issued streaming phases."""
        self._dram_scale = scale
        self.fixed.set_bandwidth_scale(scale)

    def _on_prog_lost(self, pims: int) -> int:
        """Shrink the programmable-PIM cluster; reroute dead waiters."""
        lost = self.prog.lose_slots(pims)
        if self.prog.effective_slots == 0:
            waiters = self._slot_waiters["prog"]
            self._slot_waiters["prog"] = []
            for attempt, on_dead in waiters:
                if on_dead is not None:
                    on_dead()
                else:  # pragma: no cover - prog waiters always carry one
                    self._slot_waiters["prog"].append((attempt, on_dead))
        self._recompute_placements()
        self._schedule_drain()
        return lost

    def _recompute_placements(self) -> None:
        """Re-run offload selection for queued work after a capacity loss.

        Placements naming a dead device are stripped; work that loses its
        every placement falls back to the CPU (which never faults), so no
        task can strand.  Mirrors the paper's runtime re-consulting its
        profile when the schedulable pool changes.
        """
        fixed_dead = self.fixed.pool.capacity_units == 0
        prog_dead = self.prog.effective_slots == 0
        if not (fixed_dead or prog_dead):
            return
        dead_places = set()
        if fixed_dead:
            dead_places.update(("fixed", "hybrid", "hybrid_host"))
        if prog_dead:
            dead_places.add("prog")
        retargeted = 0
        for task in self._tasks.values():
            if task.started or task.done or not task.places:
                continue
            places = tuple(p for p in task.places if p not in dead_places)
            if places == task.places:
                continue
            if not places:
                places = ("cpu",)
            elif "cpu" not in places:
                places = places + ("cpu",)
            task.places = places
            task.allowed = None
            task.degraded = True
            retargeted += 1
        if retargeted:
            # rewritten placements void any blocked/parked reasoning (a
            # parked task may have gained a never-tested placement)
            self._unpark_all()
            if self._injector is not None:
                self._injector.log_reselection(self.engine.now, retargeted)

    def _start_fixed(self, task: _Task) -> None:
        """FIXED-class op: host-coordinated MAC chunks on the pool."""
        op = task.spec.op
        table = self._table
        if table is not None:
            rows = table.fixed_plan[id(op)]
            want = op.cost.parallelism
            n = len(rows)
            self.usage.internal_bytes += op.traffic_bytes
            self.fixed.window_enter()

            def next_row(i: int) -> None:
                if i >= n:
                    self.fixed.drop_token(task.uid)
                    self.fixed.window_exit()
                    self._finish(task)
                    return
                sync_s, macs, nbytes, work = rows[i]

                def row_launched() -> None:
                    self._submit_mac(
                        task, macs, nbytes, want,
                        lambda: next_row(i + 1), work=work,
                    )

                self._timed(SYNC, sync_s, row_launched)

            next_row(0)
            return
        plan = task.spec.kernel.binary(BinaryKind.FIXED_FULL).plan
        phases = list(plan)
        self.usage.internal_bytes += op.traffic_bytes
        self.fixed.window_enter()

        def next_phase(i: int) -> None:
            if i >= len(phases):
                self.fixed.drop_token(task.uid)
                self.fixed.window_exit()
                self._finish(task)
                return
            phase = phases[i]
            this_launch = self._mac_dispatch_sync_s(phase.macs, first=(i == 0))

            def after_launch() -> None:
                self._submit_mac(
                    task,
                    phase.macs,
                    phase.bytes_moved,
                    op.cost.parallelism,
                    lambda: next_phase(i + 1),
                )

            self._timed(SYNC, this_launch, after_launch)

        next_phase(0)

    def _start_hybrid(self, task: _Task, complex_on: str) -> None:
        """HYBRID op as a recursive PIM kernel (Figure 6).

        ``complex_on`` selects where the complex phases run: the
        programmable PIM ("prog", Hetero configurations) or the host CPU
        ("cpu", the Fixed-PIM baseline).  Complex phases acquire an
        executor slot for their own duration only; the orchestration of
        MAC sub-kernels does not occupy a compute slot (the PIM-side
        runtime is an event loop, able to manage many in-flight recursive
        kernels — section IV-C).
        """
        op = task.spec.op
        if self._table is not None:
            self._start_hybrid_fast(task, complex_on)
            return
        plan = task.spec.kernel.binary(BinaryKind.PROG).plan
        phases = list(plan)
        rc = self.policy.recursive_kernels
        self.fixed.window_enter()

        def next_phase(i: int, first: bool) -> None:
            if i >= len(phases):
                self.fixed.drop_token(task.uid)
                self.fixed.window_exit()
                self._finish(task)
                return
            phase = phases[i]
            # launch cost: MAC phases dispatch one micro-kernel per
            # sub-kernel quota; complex phases are one dispatch. The first
            # dispatch (and, without RC, every one) is a host round trip.
            if phase.kind is PhaseKind.MAC:
                launch = self._mac_dispatch_sync_s(phase.macs, first=first)
            elif first or not rc:
                launch = self.config.prog_pim.host_launch_overhead_s
            else:
                launch = self.config.fixed_pim.pim_launch_overhead_s

            def after_launch() -> None:
                if phase.kind is PhaseKind.COMPLEX:
                    self._run_complex_phase(
                        phase,
                        complex_on,
                        lambda: next_phase(i + 1, False),
                        uid=task.uid,
                    )
                else:
                    self.usage.internal_bytes += phase.bytes_moved
                    self._submit_mac(
                        task,
                        phase.macs,
                        phase.bytes_moved,
                        op.cost.parallelism,
                        lambda: next_phase(i + 1, False),
                    )

            self._timed(SYNC, launch, after_launch)

        next_phase(0, True)

    def _start_hybrid_fast(self, task: _Task, complex_on: str) -> None:
        """Table-driven :meth:`_start_hybrid`: phase launch/duration costs
        come precomputed from the cost table (same continuation structure,
        so the event stream — and every metric — is identical)."""
        op = task.spec.op
        rows = self._table.hybrid_plan[id(op)]
        want = op.cost.parallelism
        n = len(rows)
        self.fixed.window_enter()

        def next_row(i: int) -> None:
            if i >= n:
                self.fixed.drop_token(task.uid)
                self.fixed.window_exit()
                self._finish(task)
                return
            row = rows[i]

            def row_launched() -> None:
                if row[0] == "cpx":
                    self._run_complex_fast(
                        row, complex_on, lambda: next_row(i + 1)
                    )
                else:
                    self.usage.internal_bytes += row[3]
                    self._submit_mac(
                        task, row[2], row[3], want,
                        lambda: next_row(i + 1), work=row[4],
                    )

            self._timed(SYNC, row[1], row_launched)

        next_row(0)

    def _run_complex_fast(
        self, row: tuple, complex_on: str, then: Callable[[], None]
    ) -> None:
        """One precomputed COMPLEX phase (fault-free: the programmable PIM
        can never be dead here, so no degradation hooks are attached)."""
        nbytes = row[5]
        if complex_on == "prog":
            duration = row[2]

            def run_on_prog() -> None:
                self.usage.internal_bytes += nbytes

                def done() -> None:
                    self._release_slot(self.prog)
                    then()

                self._timed(COMPUTE, duration, done)

            self._acquire_slot(self.prog, run_on_prog)
            return
        operation_s = row[3]
        exposed_s = row[4]
        self.usage.external_bytes += nbytes

        def run_on_cpu() -> None:
            def _after_compute() -> None:
                def done() -> None:
                    self._release_slot(self.cpu)
                    then()

                self._timed(DATA_MOVEMENT, exposed_s, done)

            self._timed(COMPUTE, operation_s, _after_compute)

        self._acquire_slot(self.cpu, run_on_cpu)

    def _run_complex_phase(
        self,
        phase,
        complex_on: str,
        then: Callable[[], None],
        uid: Optional[str] = None,
    ) -> None:
        """Execute one COMPLEX phase on its device, waiting for a slot.

        Under fault injection a complex phase targeting a dead (or dying)
        programmable PIM degrades to the host CPU instead of stranding the
        recursive kernel.
        """
        if complex_on == "prog":
            def fall_back_to_cpu() -> None:
                if self._injector is not None and uid is not None:
                    self._injector.log_degradation(
                        self.engine.now, uid, "prog", "cpu"
                    )
                self._complex_on_cpu(phase, then)

            if self.prog.effective_slots == 0:
                fall_back_to_cpu()
                return
            duration = self._prog_phase_duration(
                phase.other_flops * self._prog_other_penalty, phase.bytes_moved
            )

            def run_on_prog() -> None:
                self.usage.internal_bytes += phase.bytes_moved

                def done() -> None:
                    self._release_slot(self.prog)
                    then()

                self._timed(COMPUTE, duration, done)

            self._acquire_slot(self.prog, run_on_prog, on_dead=fall_back_to_cpu)
            return
        self._complex_on_cpu(phase, then)

    def _complex_on_cpu(self, phase, then: Callable[[], None]) -> None:
        timing = self.cpu_model.staging_timing(phase.bytes_moved, phase.other_flops)
        self.usage.external_bytes += phase.bytes_moved

        def run_on_cpu() -> None:
            def _after_compute() -> None:
                def done() -> None:
                    self._release_slot(self.cpu)
                    then()

                self._timed(DATA_MOVEMENT, timing.exposed_memory_s, done)

            self._timed(COMPUTE, timing.operation_s, _after_compute)

        self._acquire_slot(self.cpu, run_on_cpu)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _collect(self) -> RunResult:
        now = self.engine.now
        makespan = now
        if self._injector is not None and self._step_end:
            # fault/restore events may be scheduled past the last task
            # finish; the engine drains them, so ``now`` can overshoot the
            # actual completion time.  Clamp to the last step boundary.
            makespan = max(self._step_end.values())
        breakdown = self.tracker.breakdown(makespan)
        usage = DeviceUsage(
            fixed_macs=self.usage.fixed_macs,
            cpu_busy_s=self.cpu.busy_seconds(),
            gpu_busy_s=self.gpu.busy_seconds(),
            fixed_unit_busy_s=self.fixed.busy_unit_seconds(),
            prog_busy_s=self.prog.busy_seconds(),
            external_bytes=self.usage.external_bytes,
            internal_bytes=self.usage.internal_bytes,
            gpu_bytes=self.usage.gpu_bytes,
        )
        energy_model = EnergyModel(self.config, gpu_present=self.policy.uses_gpu)
        energy = energy_model.energy(usage, makespan)
        step_time = self._steady_step_time()
        per_model = self._per_model_step_times()
        busy_fraction = self._device_busy_fractions(makespan)
        occupancy = self.fixed.occupancy_histogram_s()
        selection = self.policy.decision_log()
        metrics = self._metrics_snapshot()
        self.publish_metrics(self.obs)
        return RunResult(
            config_name=self.policy.name,
            model_name=self.graph.name,
            steps=self.steps,
            makespan_s=makespan,
            step_time_s=step_time,
            breakdown=breakdown,
            usage=usage,
            energy=energy,
            fixed_pim_utilization=self.fixed.utilization(),
            events_processed=self.engine.events_processed,
            per_model_step_time_s=per_model,
            device_busy_fraction=busy_fraction,
            bank_occupancy_hist_s=occupancy,
            queue_wait_s=dict(sorted(self._queue_wait.items())),
            selection=selection,
            metrics=metrics,
            faults=(
                self._injector.to_result_dict()
                if self._injector is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _device_busy_fractions(self, makespan: float) -> Dict[str, float]:
        """Busy fraction of each device lane over the whole run.

        The GPU lane is reported only when the configuration uses it (the
        Chrome-trace exporter and the report schema mirror this, so
        GPU-less configs have no phantom lane).
        """
        fractions = {
            "cpu": self.cpu.busy_fraction(makespan),
            "prog": self.prog.busy_fraction(makespan),
            "fixed": (
                self.fixed.busy_unit_seconds()
                / (self.fixed.pool.n_units * makespan)
                if makespan > 0
                else 0.0
            ),
        }
        if self.policy.uses_gpu:
            fractions["gpu"] = self.gpu.busy_fraction(makespan)
        return dict(sorted(fractions.items()))

    def _metrics_snapshot(self) -> Dict[str, float]:
        """Flat, deterministic metric snapshot stored on the result."""
        registry = MetricsRegistry()
        self.publish_metrics(registry)
        return registry.snapshot(self.engine.now)

    def publish_metrics(self, registry: MetricsRegistry) -> None:
        """Publish every component's instruments into ``registry``."""
        self.engine.publish_metrics(registry)
        self.cpu.publish_metrics(registry)
        self.prog.publish_metrics(registry)
        if self.policy.uses_gpu:
            self.gpu.publish_metrics(registry)
        self.fixed.publish_metrics(registry)
        self.policy.publish_metrics(registry)
        registry.gauge("sched.drain_rounds").set(self._drain_rounds)
        for device in sorted(self._tasks_started):
            registry.gauge(f"sched.started.{device}").set(
                self._tasks_started[device]
            )
        for device in sorted(self._queue_wait):
            registry.gauge(f"sched.queue_wait_s.{device}").set(
                self._queue_wait[device]
            )
        if self._injector is not None:
            self._injector.publish_metrics(registry)

    def _steady_step_time(self) -> float:
        ends = [self._step_end[s] for s in sorted(self._step_end)]
        if len(ends) == 1:
            return ends[0]
        # steady state: exclude the warm-up ramp of the first step
        return (ends[-1] - ends[0]) / (len(ends) - 1)

    def _per_model_step_times(self) -> Optional[Dict[str, float]]:
        models = {m for (m, _s) in self._model_step_end}
        if models == {self.graph.name}:
            return None
        result: Dict[str, float] = {}
        for model in models:
            ends = [
                self._model_step_end[(model, s)]
                for s in range(self.steps)
                if (model, s) in self._model_step_end
            ]
            if len(ends) >= 2:
                result[model] = (ends[-1] - ends[0]) / (len(ends) - 1)
            elif ends:
                result[model] = ends[0]
        return result


def simulate(
    graph: Graph,
    policy: SchedulingPolicy,
    config: Optional[SystemConfig] = None,
    steps: Optional[int] = None,
) -> RunResult:
    """Deprecated convenience wrapper: build and run one simulation.

    Prefer :func:`repro.api.simulate` (model-level facade, returns a
    :class:`~repro.obs.report.RunReport`) or
    :func:`repro.sim.cache.simulate_cached` (graph-level, content-addressed
    cache).  Kept for backward compatibility.
    """
    import warnings

    warnings.warn(
        "repro.sim.simulation.simulate is deprecated; use "
        "repro.api.simulate (model-level) or "
        "repro.sim.cache.simulate_cached (graph-level) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return Simulation(graph, policy, config=config, steps=steps).run()
