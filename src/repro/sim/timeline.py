"""Schedule timeline recording and ASCII Gantt rendering.

When enabled, the simulator records one :class:`TimelineEntry` per executed
task (device, start, end, step).  The timeline is the raw material for
schedule visualization (``examples/schedule_timeline.py``) and for
schedule-level assertions in tests (device exclusivity, dependence order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import SimulationError

#: Device lanes in display order.
DEVICE_ORDER = ("cpu", "gpu", "prog", "fixed")


@dataclass(frozen=True)
class TimelineEntry:
    """One task's placement and execution interval."""

    uid: str
    op_type: str
    device: str
    step: int
    start_s: float
    end_s: float
    #: When the task became ready (all dependences satisfied); the gap to
    #: ``start_s`` is the time it queued for a device.
    ready_s: float = 0.0

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise SimulationError(
                f"timeline entry {self.uid!r} ends before it starts"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def queue_wait_s(self) -> float:
        """Ready-to-start delay (0 when readiness was not recorded)."""
        return max(0.0, self.start_s - self.ready_s)


@dataclass
class Timeline:
    """Ordered record of task executions."""

    entries: List[TimelineEntry] = field(default_factory=list)

    def add(self, entry: TimelineEntry) -> None:
        self.entries.append(entry)

    def on_device(self, device: str) -> List[TimelineEntry]:
        return [e for e in self.entries if e.device == device]

    def for_step(self, step: int) -> List[TimelineEntry]:
        return [e for e in self.entries if e.step == step]

    @property
    def makespan_s(self) -> float:
        return max((e.end_s for e in self.entries), default=0.0)

    def device_busy_s(self, device: str) -> float:
        """Total (possibly overlapping) task time on ``device``."""
        return sum(e.duration_s for e in self.on_device(device))

    def concurrency_profile(self, device: str) -> int:
        """Peak number of simultaneously running tasks on ``device``."""
        events = []
        for e in self.on_device(device):
            events.append((e.start_s, 1))
            events.append((e.end_s, -1))
        peak = level = 0
        for _t, delta in sorted(events):
            level += delta
            peak = max(peak, level)
        return peak

    def render(
        self,
        width: int = 80,
        devices: Sequence[str] = DEVICE_ORDER,
        max_rows_per_device: int = 12,
    ) -> str:
        """ASCII Gantt chart: one row group per device."""
        makespan = self.makespan_s
        if makespan <= 0:
            return "(empty timeline)"
        scale = width / makespan
        lines = [f"timeline: {makespan * 1e3:.2f} ms total, 1 col = "
                 f"{makespan / width * 1e3:.3f} ms"]
        for device in devices:
            entries = sorted(self.on_device(device), key=lambda e: e.start_s)
            if not entries:
                continue
            lines.append(f"[{device}] ({len(entries)} tasks)")
            rows: List[List[TimelineEntry]] = []
            for e in entries:
                for row in rows:
                    if row[-1].end_s <= e.start_s + 1e-12:
                        row.append(e)
                        break
                else:
                    rows.append([e])
            for row in rows[:max_rows_per_device]:
                canvas = [" "] * width
                for e in row:
                    lo = min(width - 1, int(e.start_s * scale))
                    hi = min(width, max(lo + 1, int(e.end_s * scale)))
                    label = e.op_type[: hi - lo]
                    for i in range(lo, hi):
                        canvas[i] = "#"
                    for i, ch in enumerate(label):
                        if lo + i < width:
                            canvas[lo + i] = ch
                lines.append("  |" + "".join(canvas) + "|")
            if len(rows) > max_rows_per_device:
                lines.append(f"  ... {len(rows) - max_rows_per_device} more lanes")
        return "\n".join(lines)


def validate_schedule(
    timeline: Timeline,
    slot_capacity: Optional[Dict[str, int]] = None,
) -> None:
    """Check schedule sanity: capacities respected, intervals well-formed.

    Raises :class:`SimulationError` when a device runs more concurrent
    tasks than it has slots.
    """
    if slot_capacity:
        for device, capacity in slot_capacity.items():
            peak = timeline.concurrency_profile(device)
            if peak > capacity:
                raise SimulationError(
                    f"device {device!r} ran {peak} concurrent tasks with "
                    f"only {capacity} slots"
                )
