"""Operation-trace serialization (JSON).

The paper's methodology is *trace-driven*: traces are generated once (with
a Pin tool on real binaries) and replayed through the Python simulator.
This module provides the equivalent round trip for our operation traces —
export a generated trace to JSON, inspect or post-process it with external
tooling, and load it back for simulation-independent analysis.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..errors import SimulationError
from ..nn.graph import Graph
from ..nn.ops import Op, OpCost
from .tracegen import TaskSpec, generate_trace

TRACE_FORMAT_VERSION = 1


def _op_to_dict(op: Op) -> Dict:
    return {
        "name": op.name,
        "op_type": op.op_type,
        "cost": {
            "muls": op.cost.muls,
            "adds": op.cost.adds,
            "other_flops": op.cost.other_flops,
            "bytes_in": op.cost.bytes_in,
            "bytes_out": op.cost.bytes_out,
            "parallelism": op.cost.parallelism,
        },
        "attrs": {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in op.attrs.items()
        },
    }


def _op_from_dict(data: Dict) -> Op:
    attrs = {
        k: tuple(v) if isinstance(v, list) else v
        for k, v in data["attrs"].items()
    }
    return Op(
        name=data["name"],
        op_type=data["op_type"],
        cost=OpCost(**data["cost"]),
        attrs=attrs,
    )


def export_trace(graph: Graph, steps: int, path: Union[str, Path]) -> int:
    """Generate and write the operation trace of ``graph`` to ``path``.

    Returns the number of task records written.
    """
    tasks = generate_trace(graph, steps)
    payload = {
        "format_version": TRACE_FORMAT_VERSION,
        "model": graph.name,
        "batch_size": graph.batch_size,
        "steps": steps,
        "tasks": [
            {
                "uid": t.uid,
                "step": t.step,
                "topo_index": t.topo_index,
                "deps": sorted(t.deps),
                "op": _op_to_dict(t.op),
            }
            for t in tasks
        ],
    }
    from ..experiments.common import write_atomic

    write_atomic(path, json.dumps(payload))
    return len(tasks)


def import_trace(path: Union[str, Path]) -> List[TaskSpec]:
    """Load a trace written by :func:`export_trace`.

    Kernels are recompiled from the embedded op descriptors, so an imported
    trace is directly usable for analysis and scheduling studies.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != TRACE_FORMAT_VERSION:
        raise SimulationError(
            f"unsupported trace format version {version!r} "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    from ..pimcl.codegen import generate_binaries

    kernels = {}
    tasks: List[TaskSpec] = []
    for record in payload["tasks"]:
        op = _op_from_dict(record["op"])
        if op.name not in kernels:
            kernels[op.name] = generate_binaries(op)
        tasks.append(
            TaskSpec(
                uid=record["uid"],
                step=record["step"],
                op=op,
                kernel=kernels[op.name],
                deps=frozenset(record["deps"]),
                topo_index=record["topo_index"],
            )
        )
    return tasks


def trace_summary(path: Union[str, Path]) -> Dict[str, Union[str, int]]:
    """Lightweight header inspection without materializing ops."""
    payload = json.loads(Path(path).read_text())
    return {
        "model": payload["model"],
        "batch_size": payload["batch_size"],
        "steps": payload["steps"],
        "tasks": len(payload["tasks"]),
    }
