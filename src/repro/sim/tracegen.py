"""Operation-trace generation (the paper's Pin-based trace substitute).

The paper collects instruction traces with a Pin tool while running the
OpenCL kernel binaries on the CPU, then drives a Python trace-based
simulator with them.  Here the trace is generated directly from the
training-step graph: one :class:`TaskSpec` per (step, operation) carrying
the operation's compiled kernel, its intra-step dependences and the
cross-step dependences induced by parameter updates.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..errors import SimulationError
from ..nn.graph import Graph
from ..nn.ops import Op
from ..pimcl.codegen import generate_binaries
from ..pimcl.kernel import Kernel

#: Compiled-kernel cache, keyed by graph identity.  Binary generation is
#: pure per-op, so repeated simulations of the same graph (figure sweeps,
#: RC/OP ablations) reuse one compilation.  Entries are evicted when the
#: graph is garbage-collected, so an ``id()`` can never be observed stale.
_kernel_cache: Dict[int, Dict[str, Kernel]] = {}

#: Unrolled-trace cache, keyed by (graph identity, steps).  TaskSpecs are
#: immutable, so figure sweeps re-simulating the same graph share one
#: unroll; callers get a fresh list object (the specs themselves are
#: shared).  Evicted with the graph, like the kernel cache.
_trace_cache: Dict[Tuple[int, int], List["TaskSpec"]] = {}


def task_uid(step: int, op_name: str) -> str:
    return f"s{step}/{op_name}"


@dataclass(frozen=True)
class TaskSpec:
    """One operation execution in one training step."""

    uid: str
    step: int
    op: Op
    kernel: Kernel
    deps: FrozenSet[str]
    topo_index: int

    @property
    def sort_key(self) -> Tuple[int, int]:
        """Scheduling priority: earlier steps first, then graph order."""
        return (self.step, self.topo_index)


def compile_kernels(graph: Graph) -> Dict[str, Kernel]:
    """Run binary generation (Figure 4) for every op in the graph (cached).

    The cache assumes the graph is not mutated after its first simulation;
    graphs are assembled by the model builders / ``merge_graphs`` before
    any trace is generated, so this holds throughout the code base.
    """
    key = id(graph)
    kernels = _kernel_cache.get(key)
    if kernels is None:
        kernels = {op.name: generate_binaries(op) for op in graph.ops}
        _kernel_cache[key] = kernels
        weakref.finalize(graph, _kernel_cache.pop, key, None)
    return kernels


def generate_trace(
    graph: Graph,
    steps: int,
    kernels: Dict[str, Kernel] = None,
) -> List[TaskSpec]:
    """Unroll ``graph`` over ``steps`` training steps.

    Dependences:

    * intra-step tensor dependences (graph edges);
    * an op reading parameters in step *s* depends on the step *s-1*
      optimizer updates of those parameters;
    * an optimizer update in step *s* depends on the same update in step
      *s-1* (parameter versions are serialized).

    These are exactly the constraints under which the paper's operation
    pipeline may schedule next-step work onto idle PIMs ("as long as the
    two operations do not depend on each other").
    """
    if steps < 1:
        raise SimulationError(f"need at least one step, got {steps}")
    cache_key = (id(graph), steps) if kernels is None else None
    if cache_key is not None:
        cached = _trace_cache.get(cache_key)
        if cached is not None:
            return list(cached)
    if kernels is None:
        kernels = compile_kernels(graph)
    topo = graph.topological_order()
    topo_index = {op.name: i for i, op in enumerate(topo)}
    tasks: List[TaskSpec] = []
    for step in range(steps):
        for op in topo:
            deps = {
                task_uid(step, pred) for pred in graph.predecessors(op.name)
            }
            if step > 0:
                for param in graph.params_read_by(op.name):
                    update = graph.param_update_op(param)
                    if update is not None:
                        deps.add(task_uid(step - 1, update))
                if op.attrs.get("param_written") is not None:
                    deps.add(task_uid(step - 1, op.name))
            tasks.append(
                TaskSpec(
                    uid=task_uid(step, op.name),
                    step=step,
                    op=op,
                    kernel=kernels[op.name],
                    deps=frozenset(deps),
                    topo_index=topo_index[op.name],
                )
            )
    if cache_key is not None:
        _trace_cache[cache_key] = tasks
        weakref.finalize(graph, _trace_cache.pop, cache_key, None)
        return list(tasks)
    return tasks


def trace_stats(tasks: List[TaskSpec]) -> Dict[str, int]:
    """Summary statistics of a generated trace (for reporting/tests)."""
    steps = {t.step for t in tasks}
    cross_step = sum(
        1
        for t in tasks
        for d in t.deps
        if not d.startswith(f"s{t.step}/")
    )
    return {
        "tasks": len(tasks),
        "steps": len(steps),
        "edges": sum(len(t.deps) for t in tasks),
        "cross_step_edges": cross_step,
    }
