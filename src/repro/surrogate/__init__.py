"""Learned cost surrogate over cached simulation results.

The exact simulator answers "how long / how much energy does one training
step take on this system?" by replaying every operation event; the
surrogate answers the same question in microseconds from a tiny ridge
regression fitted to *already-cached* :class:`~repro.sim.results.RunResult`
records.  The features are the same per-op cost estimates the vectorized
engine precomputes (:mod:`repro.sim.optable`) — lane work sums, bottleneck
bounds, traffic-over-bandwidth terms, policy flags — so a prediction needs
no simulation at all, only the memoized cost table.

Contract:

* the exact simulator remains the source of truth — the surrogate trains
  on its cached outputs and is validated against them
  (``repro surrogate eval``);
* every prediction carries an **error band** (the model's leave-one-out
  relative error, inflated 5%), reported next to the value;
* estimated results are **never** written into the result cache, and the
  surrogate is off by default: artifacts produced without ``--surrogate``
  are byte-identical to a build without this package;
* out-of-domain queries (no trained model, fault-injected runs when the
  training set had none) raise :class:`SurrogateUnavailable` so callers
  fall back to exact simulation.

Entry points: :func:`train_from_cache` / :func:`evaluate_from_cache`
(the ``repro surrogate`` CLI), :func:`estimate_run`
(``api.simulate(..., surrogate=True)`` and the experiment ``--surrogate``
hooks), :func:`load_model` / :func:`model_path` (persistence under the
result cache's directory).
"""

from __future__ import annotations

from .dataset import (
    STANDARD_GRID,
    collect_rows,
    evaluate_from_cache,
    train_from_cache,
)
from .errors import SurrogateUnavailable
from .estimate import estimate_run
from .features import FEATURE_NAMES, featurize
from .model import (
    TARGETS,
    SurrogateModel,
    fit,
    load_model,
    model_path,
    save_model,
)

__all__ = [
    "FEATURE_NAMES",
    "STANDARD_GRID",
    "SurrogateModel",
    "SurrogateUnavailable",
    "TARGETS",
    "collect_rows",
    "estimate_run",
    "evaluate_from_cache",
    "featurize",
    "fit",
    "load_model",
    "model_path",
    "save_model",
    "train_from_cache",
]
