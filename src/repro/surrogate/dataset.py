"""Training-set assembly from already-cached simulation results.

The surrogate never runs a simulation to train: it harvests the
:mod:`repro.sim.cache` entries the evaluation has already produced.  The
training grid is the evaluation's own query set:

* the **standard grid** — the five CNN models times the five evaluated
  systems plus the Neurocube comparison point (the 30 runs behind the
  paper-figure artifacts), at default measured steps;
* the **sweep points** the figure experiments cache anyway: the
  Figure 11 frequency scales, the Figure 12 programmable-PIM counts, the
  Figure 13/14 RC/OP ablation variants and the Figure 16 mixed-workload
  co-runs (restricted solo tenants plus merged co-run graphs).

The sweeps matter beyond coverage: they give each (model, Hetero-PIM
family) calibration key several rows, which is what makes the model's
leave-one-out error bands meaningful.  Cache misses are reported, never
simulated.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..sim import cache as sim_cache
from .errors import SurrogateUnavailable
from .features import FeatureBundle, featurize, prepare_policy
from .model import (
    TARGETS,
    SurrogateModel,
    fit,
    load_model,
    save_model,
)

#: One training/eval row: featurization + exact targets + provenance.
Row = Tuple[FeatureBundle, Dict[str, float], Dict[str, str]]


def _standard_grid() -> Tuple[Tuple[str, str], ...]:
    from ..experiments.common import EVAL_CONFIGS, EVAL_MODELS
    from ..nn.models import MODERN_MODELS

    return tuple(
        (model, config)
        for model in EVAL_MODELS + MODERN_MODELS
        for config in (*EVAL_CONFIGS, "neurocube")
    )


#: The standard (model, configuration) grid points backing the paper's
#: experiment artifacts: the five CNN models plus the modern workload
#: families (transformer / GNN / recommender) times the evaluated
#: configurations.  Uncached points are reported as misses, never
#: simulated, so the CNN-only evaluation still trains a usable model.
STANDARD_GRID: Tuple[Tuple[str, str], ...] = _standard_grid()


def _named_point(
    label: str,
    model: str,
    config_name: str,
    base=None,
    policy_override=None,
) -> Tuple[str, object, object, object]:
    """Resolve one (model, named-config) point to a ``(label, graph,
    policy, system)`` job."""
    from ..api import cached_graph, resolve_configuration

    system, policy = resolve_configuration(config_name, base)
    if policy_override is not None:
        policy = policy_override
    return (label, cached_graph(model), policy, system)


def _corun_points() -> Iterator[Tuple[str, object, object, object]]:
    """The Figure 16 mixed-workload jobs: restricted solo tenants plus
    the merged co-run graphs.

    A co-run job's replica count ``k`` derives from the cached solo step
    times; pairs whose solos are not cached yet are silently skipped (the
    standard grid alone still trains a usable model).
    """
    from ..experiments import fig16

    solo_s: Dict[str, float] = {}
    for non in dict.fromkeys(non for _cnn, non in fig16.PAIRS):
        graph, policy, system, _steps = fig16._solo_restricted_job(non)
        yield (f"{non}/corun-solo", graph, policy, system)
        cached = sim_cache.get(sim_cache.run_fingerprint(graph, policy, system))
        if cached is not None:
            solo_s[non] = cached.step_time_s
    for cnn, non in fig16.PAIRS:
        if non not in solo_s:
            continue
        cnn_label, cnn_graph, cnn_policy, cnn_system = _named_point(
            "", cnn, "hetero-pim"
        )
        cached = sim_cache.get(
            sim_cache.run_fingerprint(cnn_graph, cnn_policy, cnn_system)
        )
        if cached is None:
            continue
        k = max(
            1,
            round(
                fig16.TENANT_LOAD_FACTOR * cached.step_time_s / solo_s[non]
            ),
        )
        graph, policy, system, _steps = fig16._corun_job(cnn, non, k)
        yield (f"{cnn}+{non}/corun", graph, policy, system)


def _training_points(
    grid: Optional[Sequence[Tuple[str, str]]],
) -> Iterator[Tuple[str, object, object, object]]:
    """Yield resolved ``(label, graph, policy, system)`` training jobs.

    With an explicit ``grid`` only those (model, config) points are
    yielded; the default adds the cached sweep/ablation/co-run points.
    """
    if grid is not None:
        for model, config in grid:
            yield _named_point(f"{model}/{config}", model, config)
        return
    for model, config in STANDARD_GRID:
        yield _named_point(f"{model}/{config}", model, config)

    from ..config import FREQUENCY_SCALES, PROG_PIM_COUNTS, default_config
    from ..experiments.ablation import VARIANTS
    from ..experiments.common import EVAL_MODELS
    from ..runtime.scheduler import HeteroPimPolicy

    for model in EVAL_MODELS:
        for scale in FREQUENCY_SCALES:
            base = default_config().with_frequency_scale(scale)
            yield _named_point(
                f"{model}/hetero-pim@f{scale:g}", model, "hetero-pim", base
            )
        for count in PROG_PIM_COUNTS:
            base = default_config().with_prog_pims(count)
            yield _named_point(
                f"{model}/hetero-pim@p{count}", model, "hetero-pim", base
            )
        for label, rc, op in VARIANTS:
            policy = HeteroPimPolicy(
                recursive_kernels=rc, operation_pipeline=op
            )
            yield _named_point(
                f"{model}/hetero-pim@{label}", model, "hetero-pim",
                policy_override=policy,
            )
    yield from _corun_points()


def collect_rows(
    grid: Optional[Sequence[Tuple[str, str]]] = None,
) -> Tuple[List[Row], List[str]]:
    """Harvest a row for every *cached* training point; returns
    ``(rows, misses)`` with misses as point labels.

    Targets are per-step (the model scales by step count at query time).
    Duplicate points (e.g. the 1x frequency scale equals the standard
    Hetero-PIM run) deduplicate by content fingerprint.
    """
    rows: List[Row] = []
    misses: List[str] = []
    seen: set = set()
    for label, graph, policy, system in _training_points(grid):
        fingerprint = sim_cache.run_fingerprint(graph, policy, system)
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        result = sim_cache.get(fingerprint)
        if result is None:
            misses.append(label)
            continue
        prepare_policy(graph, policy, system)
        bundle = featurize(graph, policy, system)
        targets = {
            "step_time_s": result.step_time_s,
            "step_dynamic_energy_j": result.step_dynamic_energy_j,
            "step_total_energy_j": result.step_energy_j,
            "fixed_pim_utilization": result.fixed_pim_utilization,
        }
        rows.append((bundle, targets, {"point": label}))
    return rows, misses


def train_from_cache(
    grid: Optional[Sequence[Tuple[str, str]]] = None,
    save: bool = True,
) -> Tuple[SurrogateModel, List[str]]:
    """Train (and by default persist) the surrogate from cached results.

    Returns ``(model, misses)``.  Raises :class:`SurrogateUnavailable`
    with a friendly message when the cache holds no usable rows — the CLI
    prints it as a one-liner.
    """
    rows, misses = collect_rows(grid)
    if not rows:
        raise SurrogateUnavailable(
            "no cached simulation results to train on; warm the cache "
            "first (e.g. 'repro experiment summary' or 'repro run')"
        )
    meta = {
        "rows": len(rows),
        "faulted_rows": 0,
        "points": [p["point"] for _b, _t, p in rows],
        "misses": list(misses),
    }
    model = fit([(b, t) for b, t, _p in rows], meta=meta)
    if save:
        save_model(model)
    return model, misses


def evaluate_from_cache(
    model: Optional[SurrogateModel] = None,
    grid: Optional[Sequence[Tuple[str, str]]] = None,
) -> Dict[str, object]:
    """Compare surrogate predictions against cached exact results.

    Returns ``{"points": [...], "aggregate": {target: {...}}, "rows": n}``
    where each point carries per-target relative errors and band checks.
    Raises :class:`SurrogateUnavailable` when no model or no cached rows
    exist.
    """
    if model is None:
        model = load_model()
    rows, misses = collect_rows(grid)
    if not rows:
        raise SurrogateUnavailable(
            "no cached simulation results to evaluate against; warm the "
            "cache first (e.g. 'repro experiment summary')"
        )
    points: List[Dict[str, object]] = []
    errors: Dict[str, List[float]] = {t: [] for t in TARGETS}
    for bundle, targets, meta in rows:
        preds = model.predict_step(bundle)
        record: Dict[str, object] = dict(meta)
        for target in TARGETS:
            exact = targets[target]
            pred = preds[target]["value"]
            band = preds[target]["band_rel"]
            rel = abs(pred - exact) / exact if exact > 0 else 0.0
            errors[target].append(rel)
            record[target] = {
                "exact": exact,
                "predicted": pred,
                "rel_error": rel,
                "band_rel": band,
                "within_band": rel <= band,
            }
        points.append(record)
    aggregate = {
        target: {
            "mean_rel_error": sum(errs) / len(errs),
            "max_rel_error": max(errs),
            "band_rel": model.band_rel(target),
            "within_band": all(
                p[target]["within_band"] for p in points
            ),
        }
        for target, errs in errors.items()
    }
    return {
        "rows": len(rows),
        "misses": list(misses),
        "points": points,
        "aggregate": aggregate,
    }
