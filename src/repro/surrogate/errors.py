"""Surrogate error types (their own module: every layer imports them)."""

from __future__ import annotations

from ..errors import ReproError


class SurrogateUnavailable(ReproError):
    """The surrogate cannot answer this query.

    Raised when no trained model exists, the training cache is empty, or
    the query is outside the trained domain (e.g. a fault-injected run
    when the training set was fault-free).  Callers fall back to exact
    simulation; the CLI renders the message as a friendly one-liner.
    """
