"""Surrogate-estimated :class:`~repro.sim.results.RunResult` records.

:func:`estimate_run` is the simulation-shaped face of the surrogate: it
answers the same (graph, policy, config, steps) query as
:func:`repro.sim.cache.simulate_cached`, in microseconds, with an
*estimated* result.  The record is recognizable as an estimate:

* ``metrics`` carries ``surrogate.estimated`` = 1 plus one
  ``surrogate.band.<target>_rel`` entry per predicted quantity (the
  model's declared relative-error band);
* event-level fields that only an exact simulation can produce
  (``events_processed``, device usage, busy fractions, occupancy
  histograms) are zero/absent — downstream code that needs them must run
  the exact simulator.  The one exception is ``fixed_pim_utilization``,
  which the model's optional head predicts for calibration keys it was
  trained on (flagged via ``surrogate.utilization_estimated``);
* estimated records are **never** written to the result cache.

Out-of-domain queries raise :class:`SurrogateUnavailable` so callers fall
back to exact simulation.
"""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig
from ..hardware.power import DeviceUsage, EnergyBreakdown
from ..nn.graph import Graph
from ..sim.activity import TimeBreakdown
from ..sim.policy import SchedulingPolicy
from ..sim.results import RunResult
from ..nn.models import workload_family
from .errors import SurrogateUnavailable
from .features import calibration_name, featurize, prepare_policy
from .model import SurrogateModel, load_model


def estimate_run(
    graph: Graph,
    policy: SchedulingPolicy,
    system: Optional[SystemConfig] = None,
    steps: Optional[int] = None,
    faults=None,
    model: Optional[SurrogateModel] = None,
) -> RunResult:
    """Estimate one run's result without simulating it.

    Mirrors :func:`repro.sim.cache.simulate_cached`'s signature; raises
    :class:`SurrogateUnavailable` when no trained model exists or the
    query is outside the trained domain (fault-injected queries against a
    fault-free training set).
    """
    if system is None:
        from ..config import default_config

        system = default_config()
    if steps is None:
        steps = system.runtime.measured_steps
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if model is None:
        model = load_model()
    if faults is not None and model.faulted_rows == 0:
        raise SurrogateUnavailable(
            "fault-injected runs are outside the surrogate's trained "
            "domain (training set was fault-free); using exact simulation"
        )
    # family guard: the global-tier correction would otherwise silently
    # extrapolate a CNN-trained friction onto, say, a transformer query
    query_family = workload_family(calibration_name(graph.name))
    if query_family is not None:
        trained_families = {
            family
            for family in map(
                workload_family, model.trained_calibration_names()
            )
            if family is not None
        }
        if trained_families and query_family not in trained_families:
            raise SurrogateUnavailable(
                f"workload family {query_family!r} (graph {graph.name!r}) "
                f"is outside the surrogate's trained domain (trained "
                f"families: {sorted(trained_families)}); using exact "
                f"simulation"
            )
    prepare_policy(graph, policy, system)
    bundle = featurize(graph, policy, system, faults=faults)
    preds = model.predict_step(bundle)

    step_time = preds["step_time_s"]["value"]
    step_dyn = preds["step_dynamic_energy_j"]["value"]
    step_total = preds["step_total_energy_j"]["value"]
    makespan = step_time * steps
    dynamic_j = step_dyn * steps
    total_j = max(step_total * steps, dynamic_j)

    energy = EnergyBreakdown(
        dynamic_j=dynamic_j,
        static_j=total_j - dynamic_j,
        memory_j=0.0,
        makespan_s=makespan,
        by_device={},
    )
    metrics = {
        "surrogate.estimated": 1.0,
        "surrogate.tier": preds["step_time_s"]["tier"],
        "surrogate.band.step_time_rel": preds["step_time_s"]["band_rel"],
        "surrogate.band.dynamic_energy_rel": preds["step_dynamic_energy_j"][
            "band_rel"
        ],
        "surrogate.band.total_energy_rel": preds["step_total_energy_j"][
            "band_rel"
        ],
    }
    # pool utilization is served only from the optional head's key tier
    # (an interpolation, never an extrapolation); otherwise the field
    # stays 0 like every other event-level aggregate
    utilization = 0.0
    util_pred = preds.get("fixed_pim_utilization")
    if util_pred is not None and util_pred["tier"] == 0:
        utilization = min(1.0, util_pred["value"])
        metrics["surrogate.utilization_estimated"] = 1.0
        metrics["surrogate.band.utilization_rel"] = util_pred["band_rel"]
    return RunResult(
        config_name=policy.name,
        model_name=graph.name,
        steps=steps,
        makespan_s=makespan,
        step_time_s=step_time,
        breakdown=TimeBreakdown(
            operation_s=makespan, data_movement_s=0.0, sync_s=0.0
        ),
        usage=DeviceUsage(),
        energy=energy,
        fixed_pim_utilization=utilization,
        events_processed=0,
        metrics=metrics,
    )
