"""Feature extraction and analytic anchors for the cost surrogate.

One run — (graph, prepared policy, system config) — maps to a
:class:`FeatureBundle`:

* **anchors** — cheap analytic per-step estimates of each target, built
  from the vectorized engine's memoized cost table
  (:func:`repro.sim.optable.cost_table`): a greedy list-scheduling
  makespan over the per-op primary-placement durations (respecting tensor
  dependences, CPU slots, programmable-PIM gangs, fixed-pool
  serialization and GPU input staging), and the exact power model
  (:class:`repro.hardware.power.EnergyModel`) applied to
  table-approximated device usage.  The anchors are exact for the
  CPU/GPU baselines and within ~2x everywhere — the surrogate only
  learns the residual *scheduling friction*.
* **features** — log-domain physics quantities (lane work sums, bounds,
  critical path, traffic-over-bandwidth, policy flags) the ridge stage
  regresses the residual on.
* **key** — the calibration identity ``(graph name, policy family)``,
  where the family includes the hardware-backend name: friction is
  empirically stable within a key across frequency scales and PIM
  counts, so the model stores one learned correction per key — but two
  backends never share one (their scheduling friction differs even when
  a policy class is reused).

Everything is per *step*; the model scales by the requested step count.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import SystemConfig
from ..hardware.power import DeviceUsage, EnergyModel
from ..nn.graph import Graph
from ..sim.optable import cost_table
from ..sim.policy import SchedulingPolicy
from .errors import SurrogateUnavailable

#: Canonical lane of each placement token: hybrid kernels contend on the
#: fixed-function pool (same map as the engine's parking lanes).
_LANE = {
    "cpu": "cpu",
    "gpu": "gpu",
    "prog": "prog",
    "fixed": "fixed",
    "hybrid": "fixed",
    "hybrid_host": "fixed",
}

#: Tiny additive guard so empty lanes stay finite in log space.
_EPS = 1e-12

FEATURE_NAMES = (
    "log_n_ops",
    "log_total_flops",
    "log_total_mac_flops",
    "log_total_bytes",
    "log_lane_cpu_s",
    "log_lane_gpu_s",
    "log_lane_prog_s",
    "log_lane_fixed_s",
    "log_bottleneck_s",
    "log_cpath_s",
    "log_anchor_s",
    "frac_cpu",
    "frac_gpu",
    "frac_prog",
    "frac_fixed",
    "log_stack_traffic_s",
    "log_staging_s",
    "log_pim_freq_hz",
    "log_prog_pims",
    "cpu_slots",
    "uses_gpu",
    "recursive_kernels",
    "operation_pipeline",
    "pipeline_depth",
    "prog_gang_limit",
    "fault_events",
)

#: Per-step targets every bundle anchors (the model's mandatory heads
#: plus the optional pool-utilization head).
ANCHOR_TARGETS = (
    "step_time_s",
    "step_dynamic_energy_j",
    "step_total_energy_j",
    "fixed_pim_utilization",
)


@dataclass(frozen=True)
class FeatureBundle:
    """Featurization of one run: ridge inputs + anchors + calibration key."""

    features: Tuple[float, ...]
    #: Per-step analytic anchor per target (always positive).
    anchors: Dict[str, float]
    #: Calibration identity: (graph name, policy-family tuple).
    key: Tuple
    #: Policy family alone (fallback tier for unseen graphs).
    family: Tuple


def _log(x: float) -> float:
    return math.log(x + _EPS)


def prepare_policy(
    graph: Graph, policy: SchedulingPolicy, system: SystemConfig
) -> None:
    """Validate + prepare ``policy`` exactly as the simulator would.

    ``prepare`` runs through process-wide memoizers (profiling, candidate
    selection), so repeated calls on the same (graph, config) are free.
    """
    policy.validate()
    policy.prepare(graph, system)


#: Replica-count pattern in merged co-run graph names ("vgg-19+128xword2vec").
_REPLICA_COUNT = re.compile(r"\+\d+x")


def calibration_name(graph_name: str) -> str:
    """Graph identity at calibration grain.

    Merged co-run graphs are parameterized by their tenant replica count
    ``k`` (``cnn+<k>x<tenant>``); the anchors already scale with the
    actual replicated work, so scheduling friction is shared across ``k``
    and all counts calibrate as one key — a surrogate-mode query whose
    ``k`` drifts by a step from the trained one still hits its key.
    """
    return _REPLICA_COUNT.sub("+*x", graph_name)


def policy_family(policy: SchedulingPolicy) -> Tuple:
    """Behavioral family of a policy: stable across frequency scales,
    stack/PIM counts and graph choice — the grain at which scheduling
    friction is calibrated."""
    return (
        type(policy).__name__,
        bool(policy.uses_gpu),
        bool(policy.recursive_kernels),
        bool(policy.operation_pipeline),
        int(policy.pipeline_depth),
        int(policy.prog_gang_limit),
        int(policy.cpu_slots),
    )


def featurize(
    graph: Graph,
    policy: SchedulingPolicy,
    system: SystemConfig,
    faults=None,
) -> FeatureBundle:
    """Featurize one run (policy must be prepared).

    Raises :class:`SurrogateUnavailable` when the vectorized cost table
    cannot be built (numpy missing) — the surrogate is a feature of the
    vectorized engine.
    """
    table = cost_table(graph, policy, system)
    if table is None:
        raise SurrogateUnavailable(
            "cost surrogate needs numpy (vectorized engine) to featurize runs"
        )

    ops = list(graph.ops)
    slots = max(1, policy.cpu_slots)
    n_pims = max(1, system.prog_pim.n_pims)

    # -- one pass: lane work, usage approximation, critical path, and a
    #    greedy list schedule (earliest-free resource per primary lane) --
    lane_work = {"cpu": 0.0, "gpu": 0.0, "prog": 0.0, "fixed": 0.0}
    total_flops = 0.0
    total_mac_flops = 0.0
    total_bytes = 0.0
    fixed_macs = 0.0
    prog_pim_s = 0.0
    external_bytes = 0.0
    internal_bytes = 0.0
    gpu_bytes = 0.0
    staging_s = table.staging_s if table.staging_s is not None else 0.0

    cpu_free = [0.0] * slots
    prog_free = [0.0] * n_pims
    gpu_free = 0.0
    pool_free = 0.0
    producer: Dict[str, object] = {}
    for op in ops:
        for out in op.outputs:
            producer[out] = op
    finish: Dict[int, float] = {}
    cpath: Dict[int, float] = {}
    makespan = 0.0
    longest_path = 0.0

    est = table.est
    places = table.places
    gangs = table.gang
    for op in ops:
        oid = id(op)
        cost = op.cost
        total_flops += cost.mac_flops + cost.other_flops
        total_mac_flops += cost.mac_flops
        total_bytes += cost.bytes_in + cost.bytes_out

        op_places = places.get(oid)
        primary = op_places[0] if op_places else "cpu"
        dur = est.get((primary, oid), 0.0)
        gang = gangs.get(oid, 1) if primary == "prog" else 1
        lane = _LANE.get(primary, "cpu")
        lane_work[lane] += dur * gang

        traffic = op.traffic_bytes
        if primary == "cpu":
            external_bytes += traffic
        elif primary == "gpu":
            gpu_bytes += traffic
        else:
            internal_bytes += traffic
        if primary in ("fixed", "hybrid", "hybrid_host"):
            fixed_macs += cost.macs
        if primary == "prog":
            prog_pim_s += dur * gang

        ready = staging_s if primary == "gpu" else 0.0
        depth = 0.0
        for name in op.inputs:
            prev = producer.get(name)
            if prev is not None:
                pid = id(prev)
                done = finish.get(pid)
                if done is not None and done > ready:
                    ready = done
                prev_depth = cpath.get(pid, 0.0)
                if prev_depth > depth:
                    depth = prev_depth
        cpath[oid] = depth + dur
        if cpath[oid] > longest_path:
            longest_path = cpath[oid]

        if primary == "cpu":
            idx = min(range(slots), key=cpu_free.__getitem__)
            start = max(ready, cpu_free[idx])
            cpu_free[idx] = start + dur
        elif primary == "gpu":
            start = max(ready, gpu_free)
            gpu_free = start + dur
        elif primary == "prog":
            width = min(gang, n_pims)
            prog_free.sort()
            start = max(ready, prog_free[width - 1])
            done = start + dur
            for k in range(width):
                prog_free[k] = done
        else:  # fixed / hybrid / hybrid_host serialize on the pool
            start = max(ready, pool_free)
            pool_free = start + dur
        finish[oid] = start + dur
        if finish[oid] > makespan:
            makespan = finish[oid]

    bounds = {
        "cpu": lane_work["cpu"] / slots,
        "gpu": lane_work["gpu"] + staging_s,
        "prog": lane_work["prog"] / n_pims,
        "fixed": lane_work["fixed"],
    }
    bottleneck = max(bounds.values())
    anchor_time = max(makespan, bottleneck, longest_path, _EPS)

    usage = DeviceUsage(
        cpu_busy_s=lane_work["cpu"],
        gpu_busy_s=lane_work["gpu"],
        fixed_unit_busy_s=0.0,
        fixed_macs=fixed_macs,
        prog_busy_s=prog_pim_s,
        external_bytes=external_bytes,
        internal_bytes=internal_bytes,
        gpu_bytes=gpu_bytes,
    )
    energy = EnergyModel(system, gpu_present=policy.uses_gpu).energy(
        usage, anchor_time
    )
    anchors = {
        "step_time_s": anchor_time,
        "step_dynamic_energy_j": max(energy.dynamic_total_j, _EPS),
        "step_total_energy_j": max(energy.total_j, _EPS),
        # pool-busy fraction of the step; the per-key calibration turns
        # this coarse shape into the simulator's unit-level utilization
        "fixed_pim_utilization": min(
            1.0, max(lane_work["fixed"] / anchor_time, _EPS)
        ),
    }

    total_work = sum(lane_work.values()) or 1.0
    stack_traffic_s = (
        sum(op.traffic_bytes for op in ops) / system.stack.bandwidth
    )
    features = (
        _log(float(len(ops))),
        _log(total_flops),
        _log(total_mac_flops),
        _log(total_bytes),
        _log(lane_work["cpu"]),
        _log(lane_work["gpu"]),
        _log(lane_work["prog"]),
        _log(lane_work["fixed"]),
        _log(bottleneck),
        _log(longest_path),
        _log(anchor_time),
        lane_work["cpu"] / total_work,
        lane_work["gpu"] / total_work,
        lane_work["prog"] / total_work,
        lane_work["fixed"] / total_work,
        _log(stack_traffic_s),
        _log(staging_s),
        _log(system.pim_frequency_hz),
        _log(float(n_pims)),
        float(slots),
        float(bool(policy.uses_gpu)),
        float(bool(policy.recursive_kernels)),
        float(bool(policy.operation_pipeline)),
        float(policy.pipeline_depth),
        float(policy.prog_gang_limit),
        float(_fault_event_count(faults)),
    )
    # the backend name joins the family so calibration never crosses
    # hardware backends, even where a policy class is reused
    family = (system.backend,) + policy_family(policy)
    return FeatureBundle(
        features=features,
        anchors=anchors,
        key=(calibration_name(graph.name),) + family,
        family=family,
    )


def _fault_event_count(faults) -> int:
    """Number of injected fault events in a spec (0 for fault-free)."""
    if faults is None:
        return 0
    events = getattr(faults, "events", None)
    if events is not None:
        return len(events)
    return 1  # unknown spec shape: at least flag the run as faulted
