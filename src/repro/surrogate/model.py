"""The learned cost model: analytic anchor × calibration × ridge residual.

Plain numpy — no sklearn in the container.  For each target (per-step
time, per-step dynamic energy, per-step total energy) the model predicts

    log(target) = log(anchor) + correction(key) + ridge(features)

where the **anchor** is the analytic estimate from
:mod:`repro.surrogate.features` (exact for the CPU/GPU baselines, within
~2x everywhere), the **correction** is a learned per-key scheduling
friction — keyed by (graph name, policy family), with family-level and
global fallbacks for unseen graphs — and the **ridge** head soaks the
within-key residual trends (frequency scale, PIM count) in standardized
log-feature space, its L2 strength chosen by closed-form leave-one-out
error (hat-matrix identity ``e_i / (1 - H_ii)`` — no refits).

Error bands are leave-one-out and tiered like the corrections: a query
whose calibration key was in the training set gets the within-key LOO
band; an unseen graph gets the (wider) family band; an unseen family the
global band.  Bands are inflated 25% (the ridge stage is held fixed
during the pipeline LOO, a mild optimism) and floored at 0.5%; every
prediction carries its band, and ``repro surrogate eval`` fails if an
observed error ever exceeds it.

Persistence is canonical JSON under the result cache's directory
(``<cache-dir>/surrogate/model.json``): deterministic bytes for the same
training set, safe to regenerate, never part of the simulation cache
itself.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from ..sim import cache as sim_cache
from ..sim.results import canonical_dumps
from .errors import SurrogateUnavailable
from .features import FEATURE_NAMES, FeatureBundle

try:  # same guard as the vectorized engine: stay importable without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

#: Model-file schema; bump on shape changes (loaders reject unknown).
MODEL_SCHEMA = 1

#: Predicted per-step targets, each with its own head and bands.
TARGETS = ("step_time_s", "step_dynamic_energy_j", "step_total_energy_j")

#: Extra targets fitted only where defined (zero-valued rows — e.g. pool
#: utilization on systems without a fixed pool — are excluded from the
#: head, and predictions are served on key-tier hits only).
OPTIONAL_TARGETS = ("fixed_pim_utilization",)

#: Ridge strengths searched per head (LOO-minimizing one wins).
_LAMBDA_GRID = (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

#: Band inflation over the worst observed LOO relative error, and floor.
_BAND_INFLATION = 1.25
_BAND_FLOOR = 0.005


def _key_str(key: Tuple) -> str:
    return json.dumps(list(key), sort_keys=False)


class SurrogateModel:
    """A fitted cost model (one anchored, calibrated head per target)."""

    def __init__(
        self,
        feature_names: Tuple[str, ...],
        mean: Sequence[float],
        std: Sequence[float],
        heads: Dict[str, Dict[str, object]],
        meta: Dict[str, object],
    ):
        self.feature_names = tuple(feature_names)
        self.mean = list(map(float, mean))
        self.std = list(map(float, std))
        self.heads = heads
        self.meta = dict(meta)

    # -- prediction ----------------------------------------------------
    def predict_step(
        self, bundle: FeatureBundle
    ) -> Dict[str, Dict[str, float]]:
        """Per-step predictions:
        ``{target: {"value": v, "band_rel": b, "tier": t}}`` where tier is
        0 (key seen in training), 1 (family seen) or 2 (global fallback);
        the band widens with the tier."""
        features = bundle.features
        if len(features) != len(self.feature_names):
            raise SurrogateUnavailable(
                f"feature vector has {len(features)} entries, model expects "
                f"{len(self.feature_names)} (retrain: repro surrogate train)"
            )
        z = [1.0]
        for x, mu, sd in zip(features, self.mean, self.std):
            z.append((x - mu) / sd)
        kstr = _key_str(bundle.key)
        fstr = _key_str(bundle.family)
        out: Dict[str, Dict[str, float]] = {}
        for target, head in self.heads.items():
            anchor = bundle.anchors[target]
            if kstr in head["key_corr"]:
                corr = head["key_corr"][kstr]
                band = head["band_key_rel"]
                tier = 0
            elif fstr in head["family_corr"]:
                corr = head["family_corr"][fstr]
                band = head["band_family_rel"]
                tier = 1
            else:
                corr = head["global_corr"]
                band = head["band_global_rel"]
                tier = 2
            ridge = sum(w * v for w, v in zip(head["weights"], z))
            out[target] = {
                "value": float(anchor * math.exp(corr + ridge)),
                "band_rel": float(band),
                "tier": float(tier),
            }
        return out

    def trained_calibration_names(self) -> Tuple[str, ...]:
        """Calibration-grain graph names seen by any head's key tier.

        Keys are stored as JSON-encoded tuples whose first element is the
        calibration name; this recovers the set of graphs the model was
        actually fitted on (the domain the family guard checks against).
        """
        names = set()
        for head in self.heads.values():
            for kstr in head.get("key_corr", {}):
                try:
                    key = json.loads(kstr)
                except ValueError:  # pragma: no cover - writer emits JSON
                    continue
                if key and isinstance(key[0], str):
                    names.add(key[0])
        return tuple(sorted(names))

    @property
    def faulted_rows(self) -> int:
        return int(self.meta.get("faulted_rows", 0))

    @property
    def rows(self) -> int:
        return int(self.meta.get("rows", 0))

    def band_rel(self, target: str) -> float:
        """Widest relevant band of a head (the key tier — eval queries
        are on trained keys)."""
        return float(self.heads[target]["band_key_rel"])

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": MODEL_SCHEMA,
            "feature_names": list(self.feature_names),
            "mean": self.mean,
            "std": self.std,
            "heads": self.heads,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SurrogateModel":
        if data.get("schema") != MODEL_SCHEMA:
            raise SurrogateUnavailable(
                f"surrogate model schema {data.get('schema')!r} is not "
                f"readable (expected {MODEL_SCHEMA}); retrain with "
                f"'repro surrogate train'"
            )
        return cls(
            feature_names=tuple(data["feature_names"]),
            mean=data["mean"],
            std=data["std"],
            heads=dict(data["heads"]),
            meta=dict(data.get("meta", {})),
        )

    def to_json(self) -> str:
        return canonical_dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SurrogateModel":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# fitting
# ---------------------------------------------------------------------------
def fit(
    rows: Sequence[Tuple[FeatureBundle, Dict[str, float]]],
    meta: Optional[Dict[str, object]] = None,
) -> SurrogateModel:
    """Fit a :class:`SurrogateModel` on ``(bundle, targets)`` rows.

    ``targets`` maps every name in :data:`TARGETS` to a positive per-step
    value (from a cached exact :class:`~repro.sim.results.RunResult`).
    Raises :class:`SurrogateUnavailable` on an unusable training set.
    """
    if _np is None:
        raise SurrogateUnavailable("cost surrogate needs numpy to train")
    if len(rows) < 4:
        raise SurrogateUnavailable(
            f"not enough cached simulation results to train a surrogate "
            f"({len(rows)} rows; need at least 4)"
        )
    np = _np
    X = np.array([list(b.features) for b, _t in rows], dtype=np.float64)
    n, d = X.shape
    if d != len(FEATURE_NAMES):
        raise SurrogateUnavailable(
            f"feature matrix has {d} columns, expected {len(FEATURE_NAMES)}"
        )
    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std = np.where(std > 0, std, 1.0)  # constant columns: center to zero
    A = np.hstack([np.ones((n, 1)), (X - mean) / std])

    keys = [_key_str(b.key) for b, _t in rows]
    fams = [_key_str(b.family) for b, _t in rows]

    heads: Dict[str, Dict[str, object]] = {}
    for target in TARGETS:
        y_lin = np.array([t[target] for _b, t in rows], dtype=np.float64)
        anchors = np.array(
            [b.anchors[target] for b, _t in rows], dtype=np.float64
        )
        if not np.all(y_lin > 0):
            raise SurrogateUnavailable(
                f"target {target} has non-positive values; cannot fit in "
                f"log space"
            )
        y = np.log(y_lin / anchors)
        heads[target] = _fit_head(A, y, keys, fams)
    for target in OPTIONAL_TARGETS:
        if any(target not in t for _b, t in rows):
            continue
        y_lin = np.array([t[target] for _b, t in rows], dtype=np.float64)
        anchors = np.array(
            [b.anchors[target] for b, _t in rows], dtype=np.float64
        )
        mask = y_lin > 0
        if int(mask.sum()) < 4:
            continue
        y = np.log(y_lin[mask] / anchors[mask])
        heads[target] = _fit_head(
            A[mask],
            y,
            [k for k, m in zip(keys, mask) if m],
            [f for f, m in zip(fams, mask) if m],
        )

    info = dict(meta or {})
    info.setdefault("rows", n)
    info.setdefault("faulted_rows", 0)
    return SurrogateModel(
        feature_names=FEATURE_NAMES,
        mean=mean.tolist(),
        std=std.tolist(),
        heads=heads,
        meta=info,
    )


def _group_means(y, labels) -> Dict[str, float]:
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for value, label in zip(y, labels):
        sums[label] = sums.get(label, 0.0) + float(value)
        counts[label] = counts.get(label, 0) + 1
    return {label: sums[label] / counts[label] for label in sums}


def _fit_head(A, y, keys, fams) -> Dict[str, object]:
    """One head: per-key friction means + ridge over the residual, with
    tiered leave-one-out bands."""
    np = _np
    n, p = A.shape

    key_corr = _group_means(y, keys)
    fam_corr = _group_means(y, fams)
    global_corr = float(y.mean())
    resid = y - np.array([key_corr[k] for k in keys])

    # -- ridge on the within-key residual (lambda by closed-form LOO) ---
    penalty = np.eye(p)
    penalty[0, 0] = 0.0  # never shrink the intercept
    best = None
    for lam in _LAMBDA_GRID:
        M = A.T @ A + lam * penalty
        try:
            Minv_At = np.linalg.solve(M, A.T)
        except np.linalg.LinAlgError:  # pragma: no cover - grid keeps M PD
            continue
        w = Minv_At @ resid
        fitted = A @ w
        leverage = np.clip(
            np.einsum("ij,ji->i", A, Minv_At), 0.0, 1.0 - 1e-9
        )
        loo_resid = (resid - fitted) / (1.0 - leverage)
        score = float(np.abs(np.expm1(loo_resid)).mean())
        if best is None or score < best[0]:
            best = (score, lam, w, fitted)
    if best is None:  # pragma: no cover - defensive
        raise SurrogateUnavailable("ridge fit failed for every lambda")
    _score, lam, w, ridge_pred = best

    # -- full-pipeline in-sample error ----------------------------------
    key_count: Dict[str, int] = {}
    fam_count: Dict[str, int] = {}
    for k in keys:
        key_count[k] = key_count.get(k, 0) + 1
    for f in fams:
        fam_count[f] = fam_count.get(f, 0) + 1
    pred_full = np.array([key_corr[k] for k in keys]) + ridge_pred
    insample_rel = np.abs(np.expm1(pred_full - y))

    # -- tiered LOO: drop row i from its correction tier (the ridge stage
    #    stays fixed — the band inflation absorbs that mild optimism) ----
    key_sums = {k: 0.0 for k in key_corr}
    fam_sums = {f: 0.0 for f in fam_corr}
    for value, k, f in zip(y, keys, fams):
        key_sums[k] += float(value)
        fam_sums[f] += float(value)
    total = float(y.sum())
    tier_errors: Dict[int, list] = {0: [], 1: [], 2: []}
    for i in range(n):
        yi = float(y[i])
        k, f = keys[i], fams[i]
        if key_count[k] > 1:
            corr = (key_sums[k] - yi) / (key_count[k] - 1)
            tier = 0
        elif fam_count[f] > 1:
            corr = (fam_sums[f] - yi) / (fam_count[f] - 1)
            tier = 1
        elif n > 1:
            corr = (total - yi) / (n - 1)
            tier = 2
        else:  # pragma: no cover - fit() requires n >= 4
            corr = 0.0
            tier = 2
        err = abs(math.expm1(corr + float(ridge_pred[i]) - yi))
        tier_errors[tier].append(err)

    # a tier's band covers its own errors and every tighter tier's; a
    # missing tier inherits the next tighter one's band
    band_key = _band(tier_errors[0])
    band_family = max(band_key, _band(tier_errors[1]))
    band_global = max(band_family, _band(tier_errors[2]))
    # in-sample errors on trained keys must sit inside the key band too
    band_key = max(band_key, _band(insample_rel.tolist()))
    band_family = max(band_family, band_key)
    band_global = max(band_global, band_family)

    loo_all = [e for errs in tier_errors.values() for e in errs]
    return {
        "weights": w.tolist(),
        "lambda": float(lam),
        "key_corr": {k: float(v) for k, v in key_corr.items()},
        "family_corr": {f: float(v) for f, v in fam_corr.items()},
        "global_corr": global_corr,
        "band_key_rel": band_key,
        "band_family_rel": band_family,
        "band_global_rel": band_global,
        "loo_mean_rel": (
            float(sum(loo_all) / len(loo_all)) if loo_all else 0.0
        ),
        "loo_max_rel": float(max(loo_all)) if loo_all else 0.0,
        "insample_mean_rel": float(insample_rel.mean()),
        "insample_max_rel": float(insample_rel.max()),
    }


def _band(errors) -> float:
    if not errors:
        return _BAND_FLOOR
    return max(_BAND_FLOOR, max(errors) * _BAND_INFLATION)


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------
def model_path() -> Path:
    """Location of the trained model: ``<cache-dir>/surrogate/model.json``."""
    return sim_cache.cache_dir() / "surrogate" / "model.json"


def save_model(model: SurrogateModel, path: Optional[Path] = None) -> Path:
    """Atomically write ``model`` to disk (default: :func:`model_path`)."""
    path = Path(path) if path is not None else model_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(model.to_json())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_model(path: Optional[Path] = None) -> SurrogateModel:
    """Load the trained model; :class:`SurrogateUnavailable` if absent."""
    path = Path(path) if path is not None else model_path()
    try:
        text = path.read_text()
    except OSError:
        raise SurrogateUnavailable(
            "no trained surrogate model found; run 'repro surrogate train' "
            "after warming the result cache (e.g. 'repro experiment summary')"
        ) from None
    try:
        return SurrogateModel.from_json(text)
    except SurrogateUnavailable:
        raise
    except Exception as exc:
        raise SurrogateUnavailable(
            f"surrogate model at {path} is unreadable ({exc}); retrain with "
            f"'repro surrogate train'"
        ) from None
