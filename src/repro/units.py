"""Unit helpers and conversion constants.

All internal quantities use SI base units: seconds, bytes, hertz, joules and
watts.  These helpers exist so that configuration files read like the
hardware datasheets they are derived from (``2 * GHZ``, ``59 * GB``) instead
of opaque exponents.

Convention (enforced by ``tests/test_units_config.py``): data **sizes** are
binary — ``KB``/``MB``/``GB`` are powers of 1024, as capacities are
specified in memory datasheets — while **bandwidths** are decimal —
``KB_S``/``MB_S``/``GB_S`` are powers of 1000, as link and DRAM
bandwidths are customarily quoted.  Never write a capacity with a ``_S``
constant (or vice versa), and never spell either as a raw exponent: a
mixed site is off by ~7% (GB vs GB_S) and silently skews bandwidth and
energy math.
"""

from __future__ import annotations

# --- frequency -------------------------------------------------------------
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# --- data size (binary) ----------------------------------------------------
KB = 1024
MB = 1024**2
GB = 1024**3
TB = 1024**4

# Bandwidths are customarily quoted in decimal units.
KB_S = 1e3
MB_S = 1e6
GB_S = 1e9

# --- time ------------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3

# --- energy ----------------------------------------------------------------
PJ = 1e-12
NJ = 1e-9
UJ = 1e-6
MJ = 1e-3

# --- compute ---------------------------------------------------------------
GFLOPS = 1e9
TFLOPS = 1e12

FLOAT32_BYTES = 4


def mm2(value: float) -> float:
    """Identity helper marking a value as an area in square millimetres."""
    return value


def seconds_per_cycle(frequency_hz: float) -> float:
    """Duration of one clock cycle at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return 1.0 / frequency_hz
