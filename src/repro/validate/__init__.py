"""Validation layer: runtime invariant checker + paper-fidelity gate.

Two independent defenses against silent accounting drift:

* :mod:`repro.validate.invariants` asserts conservation/consistency laws
  over every validated run (``api.simulate(..., validate=True)``,
  ``repro run --validate``, ``REPRO_VALIDATE=1``), raising a structured
  :class:`~repro.errors.InvariantViolation` naming the broken law and the
  offending op/device.
* :mod:`repro.validate.golden` pins the paper's reported speedup/energy
  ratios (Figs 8/9, Table I) with explicit per-figure tolerances, checked
  by ``repro validate`` and ``tools/check_fidelity.py`` in CI.

See ``docs/architecture.md`` §11 for the invariant list and the golden
tolerance policy.
"""

from .golden import (
    BANDS_BY_NAME,
    EVAL_MODELS,
    FAST_MODELS,
    Finding,
    GOLDEN_BANDS,
    GoldenBand,
    evaluate,
    failures,
)
from .invariants import (
    RESULT_INVARIANTS,
    SIMULATION_INVARIANTS,
    check_cache_equivalence,
    check_result,
    check_simulation,
    iter_result_violations,
    iter_simulation_violations,
)

__all__ = [
    "BANDS_BY_NAME",
    "EVAL_MODELS",
    "FAST_MODELS",
    "Finding",
    "GOLDEN_BANDS",
    "GoldenBand",
    "evaluate",
    "failures",
    "RESULT_INVARIANTS",
    "SIMULATION_INVARIANTS",
    "check_cache_equivalence",
    "check_result",
    "check_simulation",
    "iter_result_violations",
    "iter_simulation_violations",
]
