"""Paper-fidelity gate: golden expected values with explicit tolerances.

The paper's evaluation commits to *relative* numbers — speedups and
energy ratios between the five evaluated systems (Figs 8/9) and the
operation-profiling shares behind the offload selection (Table I).
Absolute times/energies are not comparable (the authors measured
RTL-synthesized hardware; we simulate a calibrated model), so the gate
checks the ratios the paper's text commits to, within documented bands.

Provenance and tolerance policy
-------------------------------
Each :class:`GoldenBand` records the paper's published range (``paper``,
verbatim from the text/figures) and the *gate* band actually enforced
(``lo``/``hi``).  Where the calibrated substrate is known to deviate, the
gate band widens the paper's range and the deviation is documented in
``EXPERIMENTS.md`` (e.g. VGG-19's CPU speedup lands marginally above the
paper's "up to ~28x", so the gate allows up to 40x).  Tightening a band
requires re-running ``tools/check_fidelity.py``; loosening one requires a
documented calibration argument — tolerances are part of the repo's
review surface, not tunable at runtime.

:func:`evaluate` runs the gate against simulation results (cached — a
warm cache makes the whole gate near-instant) and returns one
:class:`Finding` per (band, model); ``repro validate`` and
``tools/check_fidelity.py`` render them and fail on any miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: Models measured by the figure-8/9 experiments, in figure order.
EVAL_MODELS = ("vgg-19", "alexnet", "dcgan", "resnet-50", "inception-v3")

#: The subset used by fast gates (CI smoke, tests): the three small
#: models, matching ``tests/test_paper_bands.py``.
FAST_MODELS = ("vgg-19", "alexnet", "dcgan")

#: Models characterized in Table I.
TABLE1_MODELS = ("vgg-19", "alexnet", "dcgan")


@dataclass(frozen=True)
class GoldenBand:
    """One golden expectation: a paper claim and its enforced band."""

    figure: str  #: "fig8" | "fig9" | "table1"
    name: str  #: stable check id (used in reports and tests)
    claim: str  #: the paper's wording
    paper: str  #: the paper-reported value/range, verbatim
    lo: Optional[float]  #: enforced lower bound (None = unbounded)
    hi: Optional[float]  #: enforced upper bound (None = unbounded)

    def admits(self, value: float) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True


@dataclass(frozen=True)
class Finding:
    """One measured value checked against one golden band."""

    band: GoldenBand
    subject: str  #: model (or model/op) the measurement belongs to
    measured: float
    ok: bool

    def render(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        lo = "-inf" if self.band.lo is None else f"{self.band.lo:g}"
        hi = "+inf" if self.band.hi is None else f"{self.band.hi:g}"
        return (
            f"[{status}] {self.band.figure}/{self.band.name} "
            f"{self.subject}: {self.measured:.3f} in [{lo}, {hi}]"
        )


GOLDEN_BANDS: Tuple[GoldenBand, ...] = (
    # ------------------------------------------------------------- Fig 8
    GoldenBand(
        "fig8", "pim-speedup-over-cpu",
        "PIM-based designs improve over the CPU by 19% to ~28x",
        paper="1.19x .. ~28x", lo=1.19, hi=40.0,
    ),
    GoldenBand(
        "fig8", "hetero-speedup-over-prog",
        "Hetero PIM outperforms Progr PIM by 2.5x-23x",
        paper="2.5x .. 23x", lo=2.4, hi=23.0,
    ),
    GoldenBand(
        "fig8", "hetero-speedup-over-fixed",
        "Hetero PIM outperforms Fixed PIM by 1.4x-5.7x",
        paper="1.4x .. 5.7x", lo=1.3, hi=5.7,
    ),
    GoldenBand(
        "fig8", "gpu-parity-vgg",
        "Hetero PIM is within ~10% of the GPU on VGG-19",
        paper="~0.9x .. ~1.1x", lo=0.85, hi=1.25,
    ),
    GoldenBand(
        "fig8", "hetero-beats-gpu-resnet",
        "ResNet-50 (working set > GPU memory) is faster on Hetero PIM",
        paper="> 1x", lo=1.0, hi=None,
    ),
    GoldenBand(
        "fig8", "gpu-beats-hetero-dcgan",
        "DCGAN (small model) is faster on the GPU",
        paper="< 1x", lo=None, hi=1.0,
    ),
    # ------------------------------------------------------------- Fig 9
    GoldenBand(
        "fig9", "hetero-energy-vs-cpu",
        "Hetero PIM uses 3x-24x less dynamic energy than the CPU",
        paper="3x .. 24x", lo=3.0, hi=30.0,
    ),
    GoldenBand(
        "fig9", "hetero-energy-vs-gpu",
        "Hetero PIM uses 1.3x-5x less dynamic energy than the GPU",
        paper="1.3x .. 5x", lo=1.3, hi=6.0,
    ),
    GoldenBand(
        "fig9", "prog-pim-most-dynamic-energy",
        "Progr PIM draws the highest dynamic energy of all configurations",
        paper="max of all configs", lo=1.0, hi=None,
    ),
    # ----------------------------------------------------------- Table I
    GoldenBand(
        "table1", "top5-ci-coverage-vgg",
        "The top-5 compute-intensive ops consume >95% of VGG-19 step time",
        paper="> 0.95", lo=0.95, hi=1.0,
    ),
    GoldenBand(
        "table1", "top5-mi-coverage",
        "The top-5 memory-intensive ops cover ~>=90% of main-memory accesses",
        paper=">= 0.98 (we measure >= 0.90)", lo=0.90, hi=1.0,
    ),
    GoldenBand(
        "table1", "conv-invocations-vgg-19",
        "VGG-19 Conv2D/Conv2DBackpropFilter/Conv2DBackpropInput run "
        "16/16/15 times per step",
        paper="16/16/15", lo=0.0, hi=0.0,  # measured-minus-expected == 0
    ),
    GoldenBand(
        "table1", "conv-invocations-alexnet",
        "AlexNet Conv2D/Conv2DBackpropFilter/Conv2DBackpropInput run "
        "5/5/4 times per step",
        paper="5/5/4", lo=0.0, hi=0.0,
    ),
)

#: Index by (figure, name) for tests and tooling.
BANDS_BY_NAME: Dict[Tuple[str, str], GoldenBand] = {
    (b.figure, b.name): b for b in GOLDEN_BANDS
}

_CONV_INVOCATIONS = {
    "vgg-19": {"Conv2D": 16, "Conv2DBackpropFilter": 16, "Conv2DBackpropInput": 15},
    "alexnet": {"Conv2D": 5, "Conv2DBackpropFilter": 5, "Conv2DBackpropInput": 4},
}


def _band(figure: str, name: str) -> GoldenBand:
    return BANDS_BY_NAME[(figure, name)]


def evaluate(
    models: Iterable[str] = FAST_MODELS,
    run: Optional[Callable] = None,
) -> List[Finding]:
    """Run the full fidelity gate over ``models``; returns all findings.

    ``run(model, config) -> RunResult`` defaults to the cached experiment
    runner (:func:`repro.experiments.common.run_model_on`).  Figure
    checks bound to a specific model (ResNet-50/DCGAN GPU crossover,
    VGG GPU parity) only run when that model is in ``models``.
    """
    from ..experiments.common import run_model_on
    from ..profiling import WorkloadProfiler
    from ..api import cached_graph

    run = run if run is not None else run_model_on
    models = tuple(models)
    findings: List[Finding] = []

    results = {
        (m, c): run(m, c)
        for m in models
        for c in ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim")
    }

    # ------------------------------------------------------------- Fig 8
    for model in models:
        cpu_t = results[(model, "cpu")].step_time_s
        hetero_t = results[(model, "hetero-pim")].step_time_s
        band = _band("fig8", "pim-speedup-over-cpu")
        for cfg in ("prog-pim", "fixed-pim", "hetero-pim"):
            speedup = cpu_t / results[(model, cfg)].step_time_s
            findings.append(
                Finding(band, f"{model}/{cfg}", speedup, band.admits(speedup))
            )
        for cfg, name in (
            ("prog-pim", "hetero-speedup-over-prog"),
            ("fixed-pim", "hetero-speedup-over-fixed"),
        ):
            band = _band("fig8", name)
            ratio = results[(model, cfg)].step_time_s / hetero_t
            findings.append(Finding(band, model, ratio, band.admits(ratio)))
    for model, name in (
        ("vgg-19", "gpu-parity-vgg"),
        ("resnet-50", "hetero-beats-gpu-resnet"),
        ("dcgan", "gpu-beats-hetero-dcgan"),
    ):
        if model not in models:
            continue
        band = _band("fig8", name)
        ratio = (
            results[(model, "gpu")].step_time_s
            / results[(model, "hetero-pim")].step_time_s
        )
        findings.append(Finding(band, model, ratio, band.admits(ratio)))

    # ------------------------------------------------------------- Fig 9
    for model in models:
        hetero_e = results[(model, "hetero-pim")].step_dynamic_energy_j
        for cfg, name in (
            ("cpu", "hetero-energy-vs-cpu"),
            ("gpu", "hetero-energy-vs-gpu"),
        ):
            band = _band("fig9", name)
            ratio = results[(model, cfg)].step_dynamic_energy_j / hetero_e
            findings.append(Finding(band, model, ratio, band.admits(ratio)))
        band = _band("fig9", "prog-pim-most-dynamic-energy")
        prog_e = results[(model, "prog-pim")].step_dynamic_energy_j
        rival = max(
            results[(model, cfg)].step_dynamic_energy_j
            for cfg in ("gpu", "fixed-pim", "hetero-pim")
        )
        ratio = prog_e / rival
        findings.append(Finding(band, model, ratio, band.admits(ratio)))

    # ----------------------------------------------------------- Table I
    profiler = WorkloadProfiler()
    for model in models:
        if model not in TABLE1_MODELS:
            continue
        profile = profiler.profile(cached_graph(model))
        if model == "vgg-19":
            band = _band("table1", "top5-ci-coverage-vgg")
            coverage = sum(t.time_share for t in profile.top_compute(5))
            findings.append(Finding(band, model, coverage, band.admits(coverage)))
        band = _band("table1", "top5-mi-coverage")
        coverage = sum(t.memory_share for t in profile.top_memory(5))
        findings.append(Finding(band, model, coverage, band.admits(coverage)))
        expected = _CONV_INVOCATIONS.get(model)
        if expected:
            band = _band("table1", f"conv-invocations-{model}")
            by_type = {t.op_type: t.invocations for t in profile.by_type}
            drift = float(
                sum(
                    abs(by_type.get(op_type, 0) - count)
                    for op_type, count in expected.items()
                )
            )
            findings.append(Finding(band, model, drift, band.admits(drift)))
    return findings


def failures(findings: Iterable[Finding]) -> List[Finding]:
    return [f for f in findings if not f.ok]
