"""Runtime invariant checker: conservation laws over simulation output.

An analytical simulator is only trustworthy when its accounting is
machine-checked: a silent bookkeeping bug (a device busy-integral counted
twice, an energy component dropped, a task started before its inputs
exist) shifts the headline numbers without failing any test.  This module
asserts the laws every run must obey:

**Result-level** (:func:`check_result` — works on any
:class:`~repro.sim.results.RunResult`, cached or fresh):

* ``busy-fraction-range`` — per-device busy fraction in [0, 1];
* ``occupancy-conservation`` — the fixed-pool time-at-occupancy histogram
  has non-negative bins and sums to the makespan;
* ``energy-conservation`` — the per-device energy components sum to the
  dynamic total, every component is non-negative and finite, and the
  breakdown's makespan equals the run's;
* ``time-breakdown-conservation`` — operation + data-movement + sync time
  equals the makespan;
* ``step-accounting`` — steps >= 1, positive step time, a makespan that
  covers at least one step, events processed > 0;
* ``queue-wait-sane`` — queue waits are non-negative, finite, and bounded
  by total queueing capacity-time.

**Live-simulation level** (:func:`check_simulation` — needs the
:class:`~repro.sim.simulation.Simulation` object after ``run()``):

* ``dependence-order`` — no task starts before every dependency ends;
* ``device-quiescence`` — at completion every slot device is idle, the
  fixed pool holds no allocations, no duty window is open, and the event
  engine has drained;
* ``timeline-agreement`` — the recorded timeline agrees with the
  scheduler's started-task registers, per device.

**Cache level** (:func:`check_cache_equivalence`): a freshly computed
result and its cached serialization round-trip are identical.

Checkers come in two forms: ``iter_*`` generators yield every
:class:`~repro.errors.InvariantViolation` found (used by tests and the
CLI to report all failures), and ``check_*`` wrappers raise the first.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

from ..errors import InvariantViolation
from ..sim.results import RunResult

#: Relative tolerance for conservation sums.  Accounting integrals are
#: built from the same float additions that produce the totals, so they
#: agree to ~1e-15 relative; 1e-9 leaves room for long runs while still
#: catching any real accounting bug (which shifts sums by whole events).
REL_TOL = 1e-9

#: Absolute floor for comparisons around zero (sub-nanosecond residue).
ABS_TOL = 1e-12

#: Invariant names asserted by :func:`iter_result_violations`.
RESULT_INVARIANTS = (
    "busy-fraction-range",
    "occupancy-conservation",
    "energy-conservation",
    "time-breakdown-conservation",
    "step-accounting",
    "queue-wait-sane",
)

#: Invariant names asserted by :func:`iter_simulation_violations`.
SIMULATION_INVARIANTS = (
    "dependence-order",
    "device-quiescence",
    "timeline-agreement",
)


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def _finite(value: float) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


# ---------------------------------------------------------------------------
# result-level invariants
# ---------------------------------------------------------------------------
def iter_result_violations(result: RunResult) -> Iterator[InvariantViolation]:
    """Yield every result-level invariant violation in ``result``."""
    yield from _busy_fraction_range(result)
    yield from _occupancy_conservation(result)
    yield from _energy_conservation(result)
    yield from _time_breakdown_conservation(result)
    yield from _step_accounting(result)
    yield from _queue_wait_sane(result)


def _busy_fraction_range(result: RunResult) -> Iterator[InvariantViolation]:
    for device, fraction in (result.device_busy_fraction or {}).items():
        if not _finite(fraction):
            yield InvariantViolation(
                "busy-fraction-range", device, f"non-finite fraction {fraction!r}"
            )
        elif not -ABS_TOL <= fraction <= 1.0 + REL_TOL:
            yield InvariantViolation(
                "busy-fraction-range",
                device,
                f"busy fraction {fraction!r} outside [0, 1]",
            )
    util = result.fixed_pim_utilization
    if not _finite(util) or not -ABS_TOL <= util <= 1.0 + REL_TOL:
        yield InvariantViolation(
            "busy-fraction-range",
            "fixed_pim_utilization",
            f"utilization {util!r} outside [0, 1]",
        )


def _occupancy_conservation(result: RunResult) -> Iterator[InvariantViolation]:
    hist = result.bank_occupancy_hist_s
    if hist is None:
        return
    for i, value in enumerate(hist):
        if not _finite(value) or value < -ABS_TOL:
            yield InvariantViolation(
                "occupancy-conservation",
                f"bin[{i}]",
                f"negative or non-finite occupancy time {value!r}",
            )
            return
    total = sum(hist)
    # Fault/restore events may legally extend the pool's integration past
    # the (clamped) makespan; the engine's final clock bounds the drift.
    limit = result.makespan_s
    if result.faults is not None and result.metrics is not None:
        limit = max(limit, float(result.metrics.get("engine.now_s", limit)))
    if not (_close(total, result.makespan_s) or
            (result.faults is not None
             and result.makespan_s - ABS_TOL <= total <= limit * (1 + REL_TOL))):
        yield InvariantViolation(
            "occupancy-conservation",
            "bank_occupancy_hist_s",
            f"histogram sums to {total!r}, makespan is {result.makespan_s!r}",
        )


def _energy_conservation(result: RunResult) -> Iterator[InvariantViolation]:
    energy = result.energy
    for name, value in (
        ("dynamic_j", energy.dynamic_j),
        ("static_j", energy.static_j),
        ("memory_j", energy.memory_j),
    ):
        if not _finite(value) or value < 0:
            yield InvariantViolation(
                "energy-conservation", name, f"component {value!r} not in [0, inf)"
            )
            return
    for device, value in energy.by_device.items():
        if not _finite(value) or value < 0:
            yield InvariantViolation(
                "energy-conservation",
                f"by_device[{device}]",
                f"component {value!r} not in [0, inf)",
            )
            return
    device_sum = sum(energy.by_device.values())
    if not _close(device_sum, energy.dynamic_j):
        yield InvariantViolation(
            "energy-conservation",
            "by_device",
            f"per-device energies sum to {device_sum!r}, "
            f"dynamic total is {energy.dynamic_j!r}",
        )
    if not _close(energy.makespan_s, result.makespan_s):
        yield InvariantViolation(
            "energy-conservation",
            "energy.makespan_s",
            f"energy integrated over {energy.makespan_s!r}, "
            f"run makespan is {result.makespan_s!r}",
        )


def _time_breakdown_conservation(result: RunResult) -> Iterator[InvariantViolation]:
    b = result.breakdown
    for name, value in (
        ("operation_s", b.operation_s),
        ("data_movement_s", b.data_movement_s),
        ("sync_s", b.sync_s),
    ):
        if not _finite(value) or value < -ABS_TOL:
            yield InvariantViolation(
                "time-breakdown-conservation",
                name,
                f"bucket {value!r} negative or non-finite",
            )
            return
    if not _close(b.total_s, result.makespan_s):
        yield InvariantViolation(
            "time-breakdown-conservation",
            "breakdown",
            f"buckets sum to {b.total_s!r}, makespan is {result.makespan_s!r}",
        )


def _step_accounting(result: RunResult) -> Iterator[InvariantViolation]:
    if result.steps < 1:
        yield InvariantViolation(
            "step-accounting", "steps", f"steps {result.steps!r} < 1"
        )
        return
    if not _finite(result.step_time_s) or result.step_time_s <= 0:
        yield InvariantViolation(
            "step-accounting",
            "step_time_s",
            f"step time {result.step_time_s!r} not positive",
        )
    if not _finite(result.makespan_s) or result.makespan_s <= 0:
        yield InvariantViolation(
            "step-accounting",
            "makespan_s",
            f"makespan {result.makespan_s!r} not positive",
        )
    elif result.step_time_s > result.makespan_s * (1 + REL_TOL):
        # steady-state step time can never exceed the whole run
        yield InvariantViolation(
            "step-accounting",
            "step_time_s",
            f"step time {result.step_time_s!r} exceeds "
            f"makespan {result.makespan_s!r}",
        )
    if result.events_processed <= 0:
        yield InvariantViolation(
            "step-accounting",
            "events_processed",
            f"{result.events_processed!r} events processed",
        )


def _queue_wait_sane(result: RunResult) -> Iterator[InvariantViolation]:
    for device, wait in (result.queue_wait_s or {}).items():
        if not _finite(wait) or wait < -ABS_TOL:
            yield InvariantViolation(
                "queue-wait-sane",
                device,
                f"queue wait {wait!r} negative or non-finite",
            )


def check_result(result: RunResult) -> RunResult:
    """Raise the first result-level :class:`InvariantViolation`; else
    return ``result`` (so call sites can chain)."""
    for violation in iter_result_violations(result):
        raise violation
    return result


# ---------------------------------------------------------------------------
# live-simulation invariants
# ---------------------------------------------------------------------------
def iter_simulation_violations(sim, result: RunResult) -> Iterator[InvariantViolation]:
    """Yield live-simulation violations (``sim`` must have completed
    :meth:`~repro.sim.simulation.Simulation.run`)."""
    yield from _dependence_order(sim)
    yield from _device_quiescence(sim)
    yield from _timeline_agreement(sim)


def _dependence_order(sim) -> Iterator[InvariantViolation]:
    if sim.timeline is None:
        return
    end_by_uid = {e.uid: e.end_s for e in sim.timeline.entries}
    start_by_uid = {e.uid: e.start_s for e in sim.timeline.entries}
    for entry in sim.timeline.entries:
        if entry.start_s < entry.ready_s - ABS_TOL:
            yield InvariantViolation(
                "dependence-order",
                entry.uid,
                f"started at {entry.start_s!r} before ready at {entry.ready_s!r}",
            )
    for task in sim._tasks.values():
        for dep_uid in task.dependents:
            dep_start = start_by_uid.get(dep_uid)
            task_end = end_by_uid.get(task.uid)
            if dep_start is None or task_end is None:
                continue
            if dep_start < task_end - ABS_TOL:
                yield InvariantViolation(
                    "dependence-order",
                    dep_uid,
                    f"started at {dep_start!r} before its dependency "
                    f"{task.uid} completed at {task_end!r}",
                )


def _device_quiescence(sim) -> Iterator[InvariantViolation]:
    for device in (sim.cpu, sim.gpu, sim.prog):
        if device.busy_slots != 0:
            yield InvariantViolation(
                "device-quiescence",
                device.name,
                f"{device.busy_slots} slot(s) still busy at completion",
            )
    if sim.fixed.pool.busy_units != 0:
        yield InvariantViolation(
            "device-quiescence",
            "fixed",
            f"{sim.fixed.pool.busy_units} pool unit(s) still allocated",
        )
    if sim.fixed._window_count != 0:
        yield InvariantViolation(
            "device-quiescence",
            "fixed",
            f"{sim.fixed._window_count} duty window(s) still open",
        )
    if not sim.engine.drained:
        yield InvariantViolation(
            "device-quiescence",
            "engine",
            f"{sim.engine.pending_events} event(s) still pending",
        )
    undone = [t.uid for t in sim._tasks.values() if not t.done]
    if undone:
        yield InvariantViolation(
            "device-quiescence",
            "scheduler",
            f"{len(undone)} unfinished task(s), e.g. {sorted(undone)[:3]}",
        )


def _timeline_agreement(sim) -> Iterator[InvariantViolation]:
    if sim.timeline is None:
        return
    recorded: dict = {}
    for entry in sim.timeline.entries:
        recorded[entry.device] = recorded.get(entry.device, 0) + 1
    started = dict(sim._tasks_started)
    if sim._injector is None:
        agree = recorded == started
    else:
        # fault recovery restarts tasks on another device: a degraded task
        # is counted started on both, but finishes (and is recorded) once
        agree = all(recorded.get(d, 0) <= started.get(d, 0) for d in recorded)
    if not agree:
        yield InvariantViolation(
            "timeline-agreement",
            "timeline",
            f"timeline records {recorded!r} tasks per device, the "
            f"scheduler's started registers say {started!r}",
        )


def check_simulation(sim, result: RunResult) -> RunResult:
    """Run result- and simulation-level checks; raise the first violation."""
    check_result(result)
    for violation in iter_simulation_violations(sim, result):
        raise violation
    return result


# ---------------------------------------------------------------------------
# cache equivalence
# ---------------------------------------------------------------------------
def check_cache_equivalence(
    fresh: RunResult, cached: Optional[RunResult], source: str = "cache"
) -> None:
    """Assert a freshly computed result matches its cached counterpart.

    ``cached`` may be None (nothing to compare — a cold cache).  The
    comparison is over the canonical dict form, the exact bytes both the
    disk tier and the artifacts serialize.
    """
    if cached is None:
        return
    if fresh.to_dict() != cached.to_dict():
        fresh_d, cached_d = fresh.to_dict(), cached.to_dict()
        fields = sorted(
            k for k in fresh_d if fresh_d.get(k) != cached_d.get(k)
        )
        raise InvariantViolation(
            "cache-equivalence",
            source,
            f"cached result differs from fresh computation in {fields!r}",
        )
