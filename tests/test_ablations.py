"""Design-choice ablation sweeps."""

import pytest

from repro.experiments import ablations


class TestSubkernelGranularity:
    @pytest.fixture(scope="class")
    def sweep(self):
        return ablations.sweep_subkernel_granularity(
            "dcgan", quotas=(10e6, 1e12)
        )

    def test_rc_benefit_grows_with_finer_granularity(self, sweep):
        fine_rc, fine_no = sweep[10e6]
        coarse_rc, coarse_no = sweep[1e12]
        fine_gap = fine_no.step_time_s / fine_rc.step_time_s
        coarse_gap = coarse_no.step_time_s / coarse_rc.step_time_s
        assert fine_gap > coarse_gap
        assert fine_gap > 1.2

    def test_rc_time_is_granularity_insensitive(self, sweep):
        """Cheap in-stack launches make granularity nearly free with RC."""
        fine_rc, _ = sweep[10e6]
        coarse_rc, _ = sweep[1e12]
        assert fine_rc.step_time_s < 1.5 * coarse_rc.step_time_s


class TestPoolSizeSweep:
    def test_more_units_faster_but_lower_utilization(self):
        sweep = ablations.sweep_fixed_units("dcgan", unit_counts=(111, 888))
        small, big = sweep[111], sweep[888]
        assert big.step_time_s < small.step_time_s
        assert big.fixed_pim_utilization < small.fixed_pim_utilization

    def test_diminishing_returns(self):
        sweep = ablations.sweep_fixed_units(
            "dcgan", unit_counts=(111, 222, 444)
        )
        t = [sweep[u].step_time_s for u in (111, 222, 444)]
        gain1 = t[0] / t[1]
        gain2 = t[1] / t[2]
        assert gain1 > gain2  # doubling helps less the second time


class TestFallbackLimit:
    def test_strict_limit_changes_schedule(self):
        sweep = ablations.sweep_fallback_limit("dcgan", limits=(1.0, 4.0))
        strict, relaxed = sweep[1.0], sweep[4.0]
        # forbidding host stealing shifts work off the CPU
        assert strict.usage.cpu_busy_s <= relaxed.usage.cpu_busy_s + 1e-9


class TestCoverageAndDepth:
    def test_sweeps_run_and_stay_consistent(self):
        cov = ablations.sweep_selection_coverage("dcgan", coverages=(0.5, 0.99))
        assert all(r.step_time_s > 0 for r in cov.values())
        depth = ablations.sweep_pipeline_depth("dcgan", depths=(0, 2))
        assert all(r.step_time_s > 0 for r in depth.values())


class TestRendering:
    def test_format_sweep(self):
        sweep = ablations.sweep_fixed_units("dcgan", unit_counts=(444,))
        text = ablations.format_sweep("pool", sweep, "units")
        assert "444" in text and "Step time" in text
