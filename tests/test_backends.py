"""Hardware-backend registry, rival backends, and SimulateOptions.

The pinned digests in ``GOLDEN_DIGESTS`` are sha256 hashes of
``RunResult.to_json()`` captured on the pre-registry codebase — the
default ``hmc-hetero`` backend must keep producing byte-identical
artifacts through the registry refactor.
"""

import hashlib
import json

import pytest

from repro import api
from repro.errors import (
    BackendError,
    DuplicateBackendError,
    ReproError,
    UnknownBackendError,
)
from repro.hardware import registry
from repro.hardware.registry import BackendDescriptor, HardwareBackend
from repro.obs.report import RunReport


@pytest.fixture(autouse=True)
def no_disk_cache(monkeypatch):
    """Golden digests were pinned cache-off; keep runs hermetic."""
    monkeypatch.setenv("REPRO_CACHE", "0")


BUILTIN_BACKENDS = ("gradpim", "hmc-hetero", "neurotrainer")

#: (model, configuration, steps) -> sha256 of RunResult.to_json() on the
#: pre-registry codebase (commit 19185e3).
GOLDEN_DIGESTS = {
    ("alexnet", "cpu", 2):
        "1e00d15f6a5f813c1eb7e11de909de60f3e6a022d421eef84294705dbf1871c6",
    ("alexnet", "gpu", 2):
        "467b1f92c42ceb93da9491a9332e752be2f73f9025e8d1a446602ce4bd9e2c19",
    ("alexnet", "prog-pim", 2):
        "030d62ad433406b29fcf0870f9f184c3e19619ecb32dfad2ac25a5fca75e0f9e",
    ("alexnet", "fixed-pim", 2):
        "2f180bb21746ae0f461d400867a41092cbad9f106f378e04f156f8779824bc18",
    ("alexnet", "hetero-pim", 2):
        "43593520489f4b6d27b98fb002c5dace49d16758dd18a06597e9d222bfa7f01e",
    ("alexnet", "neurocube", 2):
        "a9518af237c2f218c84573f76e6a4f457eb993e3c0aa9147af1b13ca1d1ce613",
    ("dcgan", "hetero-pim", 3):
        "bb02362e449d429a6a34ba7f155bc52198b8a8b47161f76e5c3d7bdb729724e0",
}


class TestRegistry:
    def test_builtins_registered(self):
        assert registry.list_backends() == BUILTIN_BACKENDS
        assert api.list_backends() == BUILTIN_BACKENDS

    def test_get_unknown_lists_available(self):
        with pytest.raises(UnknownBackendError) as exc:
            registry.get("gradpmi")
        assert exc.value.available == BUILTIN_BACKENDS
        for name in BUILTIN_BACKENDS:
            assert name in str(exc.value)

    def test_duplicate_registration_rejected(self):
        existing = type(registry.get("hmc-hetero"))
        with pytest.raises(DuplicateBackendError):
            registry.register(existing)

    def test_register_rejects_non_backends(self):
        with pytest.raises(BackendError):
            registry.register(object())

    def test_unregister_roundtrip(self):
        class Probe(HardwareBackend):
            name = "probe-backend"

            def describe(self):
                return BackendDescriptor(
                    name=self.name,
                    description="test probe",
                    device_kinds=("cpu",),
                    placement="none",
                    configurations=("probe",),
                    default_configuration="probe",
                )

            def build(self, configuration=None, base=None):
                raise NotImplementedError

        registry.register(Probe)
        try:
            assert "probe-backend" in registry.list_backends()
            assert isinstance(registry.get("probe-backend"), Probe)
        finally:
            registry.unregister("probe-backend")
        assert "probe-backend" not in registry.list_backends()

    def test_build_tags_system_config(self):
        for name in BUILTIN_BACKENDS:
            config, policy = registry.build(name)
            assert config.backend == name, name
            assert policy.name


class TestDescriptors:
    def test_json_round_trip(self):
        for name in BUILTIN_BACKENDS:
            desc = registry.get(name).describe()
            assert desc.name == name
            clone = BackendDescriptor.from_json(desc.to_json())
            assert clone == desc
            # and through plain json too (CI inspects artifacts this way)
            assert BackendDescriptor.from_dict(
                json.loads(desc.to_json())
            ) == desc

    def test_default_configuration_is_listed(self):
        for name in BUILTIN_BACKENDS:
            desc = registry.get(name).describe()
            assert desc.default_configuration in desc.configurations


class TestRivalBackends:
    @pytest.mark.parametrize("backend", ("gradpim", "neurotrainer"))
    def test_simulates_and_reports_backend(self, backend):
        report = api.simulate(
            "dcgan", steps=1, backend=backend, validate=True
        )
        assert report.backend == backend
        assert report.options["backend"] == backend
        assert report.result.step_time_s > 0
        assert report.result.step_dynamic_energy_j > 0

    def test_gradpim_runs_optimizer_in_dram(self):
        config, policy = registry.build("gradpim")
        assert config.fixed_pim.n_units == 16  # one unit per bank group
        assert policy.uses_gpu
        report = api.simulate("alexnet", steps=1, backend="gradpim")
        busy = report.result.device_busy_fraction
        assert busy["fixed"] > 0  # optimizer updates ran in-DRAM
        assert busy["gpu"] > 0  # fwd/bwd stayed on the accelerator
        assert busy.get("prog", 0.0) == 0

    def test_neurotrainer_runs_everything_in_module(self):
        config, policy = registry.build("neurotrainer")
        assert config.prog_pim.n_pims == 16  # one PE group per vault
        assert not policy.uses_gpu
        report = api.simulate("alexnet", steps=1, backend="neurotrainer")
        busy = report.result.device_busy_fraction
        assert busy["prog"] > 0
        assert busy.get("gpu", 0.0) == 0
        assert busy.get("fixed", 0.0) == 0

    def test_backends_do_not_share_cached_results(self):
        hetero = api.simulate("dcgan", steps=1)
        grad = api.simulate("dcgan", steps=1, backend="gradpim")
        assert hetero.result.to_json() != grad.result.to_json()


class TestDefaultBackendByteIdentity:
    @pytest.mark.parametrize(
        "model,config,steps",
        sorted(GOLDEN_DIGESTS),
        ids=lambda v: str(v),
    )
    def test_golden_digest(self, model, config, steps):
        report = api.simulate(model, config, steps=steps)
        digest = hashlib.sha256(
            report.result.to_json().encode()
        ).hexdigest()
        assert digest == GOLDEN_DIGESTS[(model, config, steps)], (
            f"{model}/{config}/{steps}: the registry refactor changed the "
            "default backend's artifact bytes"
        )


class TestSimulateOptions:
    def test_options_object_equals_legacy_kwargs(self):
        legacy = api.simulate("dcgan", steps=1, backend="gradpim")
        opted = api.simulate(
            "dcgan",
            steps=1,
            options=api.SimulateOptions(backend="gradpim"),
        )
        assert legacy.result.to_json() == opted.result.to_json()
        assert legacy.options == opted.options

    def test_explicit_kwargs_override_options(self):
        opts = api.SimulateOptions(backend="gradpim", validate=False)
        report = api.simulate(
            "dcgan", steps=1, options=opts, backend="hmc-hetero"
        )
        assert report.backend == "hmc-hetero"

    def test_resolved_options_recorded(self):
        report = api.simulate("dcgan", steps=1, validate=True)
        opts = report.options
        assert opts["backend"] == "hmc-hetero"
        assert opts["config"] == "hetero-pim"
        assert opts["steps"] == 1
        assert opts["validate"] is True
        assert opts["surrogate"] is False
        assert opts["faults"] is False

    def test_options_survive_report_round_trip(self):
        report = api.simulate("dcgan", steps=1, backend="neurotrainer")
        clone = RunReport.from_json(report.to_json())
        assert clone.options == report.options
        assert clone.backend == "neurotrainer"

    def test_pre_options_reports_default_backend(self):
        report = api.simulate("dcgan", steps=1)
        data = json.loads(report.to_json())
        del data["options"]  # a v4 report never recorded options
        vintage = RunReport.from_dict(data)
        assert vintage.options is None
        assert vintage.backend == "hmc-hetero"


class TestCompareExperiment:
    def test_small_grid_payload_validates(self):
        from repro.experiments import compare

        result = compare.run(models=("dcgan",), steps=1)
        data = compare.validate_payload(compare.payload(result))
        assert data["reference_backend"] == "hmc-hetero"
        assert set(data["backends"]) == set(compare.COMPARE_BACKENDS)
        for cell in data["cells"]:
            if cell["backend"] == "hmc-hetero":
                assert cell["time_vs_hetero"] == 1.0

    def test_reference_backend_required(self):
        from repro.experiments import compare

        with pytest.raises(ReproError):
            compare.run(models=("dcgan",), backends=("gradpim",), steps=1)

    def test_validate_rejects_missing_cells(self):
        from repro.experiments import compare

        result = compare.run(models=("dcgan",), steps=1)
        data = compare.payload(result)
        data["cells"] = data["cells"][:-1]
        with pytest.raises(ReproError):
            compare.validate_payload(data)


class TestCli:
    def test_unknown_backend_friendly_error(self, capsys):
        from repro.cli import main

        assert main(["run", "alexnet", "--backend", "gradpmi"]) == 1
        err = capsys.readouterr().err
        assert "gradpmi" in err
        assert "gradpim" in err  # suggests the registered names
        assert "Traceback" not in err

    def test_run_on_rival_backend(self, capsys):
        from repro.cli import main

        assert main(["run", "dcgan", "--backend", "gradpim",
                     "--steps", "1"]) == 0
        assert "GradPIM" in capsys.readouterr().out

    def test_backends_listing(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_BACKENDS:
            assert name in out
