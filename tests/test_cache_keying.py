"""Cache keying regressions: cost tables, fingerprints, no leakage.

The vectorized cost table and the result cache are both memoized across
runs; every behavioural knob of a run must reach their keys, or a sweep
(frequency scaling, PIM counts, fault seeds) silently serves one
configuration's numbers for another.
"""

import pytest

from repro.baselines import build_configuration
from repro.config import default_config
from repro.faults import FaultSpec
from repro.nn.models import build_model
from repro.sim import cache as sim_cache
from repro.sim.optable import cost_table
from repro.sim.simulation import Simulation


def _prepared(config_name="hetero-pim", base=None):
    config, policy = build_configuration(config_name, base)
    graph = build_model("alexnet")
    policy.prepare(graph, config)
    return graph, policy, config


class TestCostTableKeying:
    def test_same_run_reuses_the_table(self):
        graph, policy, config = _prepared()
        assert cost_table(graph, policy, config) is cost_table(
            graph, policy, config
        )

    def test_frequency_scale_gets_its_own_table(self):
        graph, policy, config = _prepared()
        scaled = config.with_frequency_scale(0.5)
        policy.prepare(graph, scaled)
        try:
            slow = cost_table(graph, policy, scaled)
        finally:
            policy.prepare(graph, config)
        fast = cost_table(graph, policy, config)
        assert slow is not fast
        op = graph.ops[0]
        assert slow.est[("fixed", id(op))] != fast.est[("fixed", id(op))]

    def test_prog_pim_count_gets_its_own_table(self):
        graph, policy, config = _prepared()
        base = default_config().with_prog_pims(4)
        graph2, policy2, shrunk = _prepared(base=base)
        assert cost_table(graph, policy, config) is not cost_table(
            graph2, policy2, shrunk
        )

    def test_distinct_graphs_never_share_tables(self):
        g1, p1, c1 = _prepared()
        g2, p2, c2 = _prepared()
        assert cost_table(g1, p1, c1) is not cost_table(g2, p2, c2)


class TestBackendKeying:
    """The backend tag must split every memoization layer: two backends
    with numerically identical sub-configs never share keys."""

    def test_backend_tag_splits_the_fingerprint(self):
        graph, policy, config = _prepared()
        retagged = config.with_backend("other-backend")
        assert sim_cache.run_fingerprint(
            graph, policy, config
        ) != sim_cache.run_fingerprint(graph, policy, retagged)

    def test_backend_tag_splits_the_cost_table(self):
        graph, policy, config = _prepared()
        retagged = config.with_backend("other-backend")
        policy.prepare(graph, retagged)
        try:
            other = cost_table(graph, policy, retagged)
        finally:
            policy.prepare(graph, config)
        assert cost_table(graph, policy, config) is not other

    def test_backend_tag_splits_the_surrogate_key(self):
        pytest.importorskip("numpy")
        from repro.surrogate.features import featurize

        graph, policy, config = _prepared()
        bundle = featurize(graph, policy, config)
        retagged = config.with_backend("other-backend")
        policy.prepare(graph, retagged)
        try:
            other = featurize(graph, policy, retagged)
        finally:
            policy.prepare(graph, config)
        assert bundle.family != other.family
        assert bundle.key != other.key
        assert config.backend in bundle.family
        assert "other-backend" in other.family


class TestRunFingerprint:
    def test_config_knobs_change_the_fingerprint(self):
        graph, policy, config = _prepared()
        fp = sim_cache.run_fingerprint(graph, policy, config)
        scaled = config.with_frequency_scale(0.5)
        shrunk = default_config().with_prog_pims(4)
        assert sim_cache.run_fingerprint(graph, policy, scaled) != fp
        assert sim_cache.run_fingerprint(graph, policy, shrunk) != fp
        assert sim_cache.run_fingerprint(graph, policy, config, steps=7) != fp

    def test_fault_spec_changes_the_fingerprint(self):
        graph, policy, config = _prepared("fixed-pim")
        fp_clean = sim_cache.run_fingerprint(graph, policy, config)
        spec_a = FaultSpec.generate(seed=1, horizon_s=0.05, n_events=2)
        spec_b = FaultSpec.generate(seed=2, horizon_s=0.05, n_events=2)
        fp_a = sim_cache.run_fingerprint(graph, policy, config, faults=spec_a)
        fp_b = sim_cache.run_fingerprint(graph, policy, config, faults=spec_b)
        assert len({fp_clean, fp_a, fp_b}) == 3

    def test_identical_fault_specs_share_a_fingerprint(self):
        graph, policy, config = _prepared("fixed-pim")
        spec_a = FaultSpec.generate(seed=1, horizon_s=0.05, n_events=2)
        spec_b = FaultSpec.generate(seed=1, horizon_s=0.05, n_events=2)
        assert sim_cache.run_fingerprint(
            graph, policy, config, faults=spec_a
        ) == sim_cache.run_fingerprint(graph, policy, config, faults=spec_b)


class TestNoCrossRunLeakage:
    def test_scaled_run_does_not_contaminate_the_default(self):
        """A frequency-scaled sweep point run in between must leave the
        default configuration's result byte-identical."""
        graph, policy, config = _prepared()
        before = Simulation(graph, policy, config=config, steps=1).run()

        scaled_cfg = config.with_frequency_scale(0.5)
        g2, p2, _ = _prepared()
        p2.prepare(g2, scaled_cfg)
        scaled = Simulation(g2, p2, config=scaled_cfg, steps=1).run()
        assert scaled.step_time_s != before.step_time_s

        g3, p3, c3 = _prepared()
        after = Simulation(g3, p3, config=c3, steps=1).run()
        assert after.to_json() == before.to_json()

    def test_faulted_run_does_not_contaminate_the_clean_one(self):
        graph, policy, config = _prepared("fixed-pim")
        clean = Simulation(graph, policy, config=config, steps=1).run()
        spec = FaultSpec.generate(
            seed=3,
            horizon_s=0.05,
            n_events=2,
            pool_units=config.fixed_pim.n_units,
            prog_pims=config.prog_pim.n_pims,
        )
        g2, p2, c2 = _prepared("fixed-pim")
        Simulation(g2, p2, config=c2, steps=1, faults=spec).run()
        g3, p3, c3 = _prepared("fixed-pim")
        again = Simulation(g3, p3, config=c3, steps=1).run()
        assert again.to_json() == clean.to_json()
