"""Command-line interface."""

import pytest

from repro.cli import main


class TestListing:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg-19" in out and "word2vec" in out

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "hetero-pim" in out and "neurocube" in out


class TestRun:
    def test_run_default(self, capsys):
        assert main(["run", "dcgan"]) == 0
        out = capsys.readouterr().out
        assert "Hetero PIM" in out
        assert "step time" in out
        assert "pool utilization" in out

    def test_run_other_config(self, capsys):
        assert main(["run", "dcgan", "--config", "cpu", "--steps", "1"]) == 0
        assert "CPU" in capsys.readouterr().out

    def test_run_neurocube(self, capsys):
        assert main(["run", "dcgan", "--config", "neurocube"]) == 0
        assert "Neurocube" in capsys.readouterr().out

    def test_run_frequency_scale(self, capsys):
        assert main(["run", "dcgan", "--frequency-scale", "2"]) == 0
        assert "PLL 2x" in capsys.readouterr().out

    def test_run_with_timeline(self, capsys):
        assert main(["run", "dcgan", "--timeline"]) == 0
        assert "timeline:" in capsys.readouterr().out

    def test_run_custom_batch(self, capsys):
        assert main(["run", "dcgan", "--batch-size", "8"]) == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "lenet"])

    def test_zero_steps_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "dcgan", "--steps", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_negative_steps_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "dcgan", "--steps", "-3"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_run_trace_out(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["run", "dcgan", "--steps", "1",
                     "--trace-out", str(out_file)]) == 0
        assert "trace" in capsys.readouterr().out
        from repro.obs import validate_chrome_trace

        assert validate_chrome_trace(out_file)

    def test_run_reports_device_busy(self, capsys):
        assert main(["run", "dcgan", "--steps", "1"]) == 0
        assert "device busy" in capsys.readouterr().out


class TestProfile:
    def test_profile(self, capsys):
        assert main(["profile", "dcgan", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Conv2DBackpropFilter" in out


class TestTrace:
    def test_trace_export(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main(["trace", "dcgan", str(out_file), "--steps", "1"]) == 0
        assert out_file.exists()
        assert "task records" in capsys.readouterr().out

    def test_trace_steps_validated(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "dcgan", "t.json", "--steps", "-1"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_trace_chrome_format(self, tmp_path, capsys):
        out_file = tmp_path / "chrome.json"
        assert main(["trace", "dcgan", str(out_file), "--steps", "1",
                     "--format", "chrome", "--config", "cpu"]) == 0
        assert "trace events" in capsys.readouterr().out
        from repro.obs import validate_chrome_trace

        events = validate_chrome_trace(out_file)
        lanes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "cpu" in lanes and "gpu" not in lanes


class TestExperiment:
    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Conv2DBackpropFilter" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])
