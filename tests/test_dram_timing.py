"""DRAM timing model: the configured bandwidth is derivable, not magic."""

import pytest

from repro.config import StackConfig, default_config
from repro.errors import HardwareConfigError
from repro.hardware.dram_timing import DramBandwidthModel, DramTimings


class TestTimings:
    def test_row_cycle_time(self):
        t = DramTimings()
        assert t.t_rc_ns == pytest.approx(t.t_ras_ns + t.t_rp_ns)

    def test_invalid_timings_rejected(self):
        with pytest.raises(HardwareConfigError):
            DramTimings(t_rcd_ns=0)
        with pytest.raises(HardwareConfigError):
            DramTimings(row_bytes=16, burst_bytes=64)


class TestBandwidthDerivation:
    @pytest.fixture()
    def model(self):
        return DramBandwidthModel(default_config().stack)

    def test_peak_bank_rate_is_ddr(self, model):
        # 16-byte bus, DDR at 312.5 MHz -> 10 GB/s per bank
        assert model.peak_bank_bandwidth == pytest.approx(10e9)

    def test_configured_bandwidth_is_consistent(self, model):
        """The headline check: StackConfig promises no more than the
        timing parameters can deliver."""
        assert model.consistency_ratio() <= 1.0 + 1e-9
        assert model.consistency_ratio() > 0.8  # and is not wildly sandbagged

    def test_streaming_beats_random(self, model):
        assert model.streaming_bank_bandwidth() > model.random_bank_bandwidth()

    def test_interleaving_hides_turnarounds(self):
        stack = default_config().stack
        serial = DramBandwidthModel(stack, DramTimings(interleave_ways=1))
        overlapped = DramBandwidthModel(stack, DramTimings(interleave_ways=4))
        assert (
            overlapped.streaming_bank_bandwidth()
            > serial.streaming_bank_bandwidth()
        )
        # with enough interleaving the TSV bus is the only limit
        assert overlapped.streaming_bank_bandwidth() == pytest.approx(
            overlapped.peak_bank_bandwidth
        )

    def test_effective_bandwidth_blend(self, model):
        pure_stream = model.effective_stack_bandwidth(1.0)
        pure_random = model.effective_stack_bandwidth(0.0)
        mixed = model.effective_stack_bandwidth(0.5)
        assert pure_random < mixed < pure_stream

    def test_invalid_hit_fraction_rejected(self, model):
        with pytest.raises(HardwareConfigError):
            model.effective_stack_bandwidth(1.5)

    def test_bandwidth_does_not_follow_pll(self):
        """DRAM arrays are not on the logic PLL (Figure 11's sublinearity)."""
        base = DramBandwidthModel(StackConfig())
        scaled = DramBandwidthModel(StackConfig(frequency_scale=4.0))
        assert base.peak_bank_bandwidth == scaled.peak_bank_bandwidth
