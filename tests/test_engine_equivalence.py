"""Vectorized engine ≡ scalar oracle, swept with Hypothesis.

The vectorized hot path (``repro.sim.optable`` cost table + heap-parking
drain) must be a pure performance transformation: for any graph, policy,
config and fault spec, the full result record — every field, via
canonical JSON — must match the original scalar engine
(``REPRO_ENGINE=scalar``) exactly, not approximately.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import build_configuration
from repro.faults import FaultSpec
from repro.nn.layers import GraphBuilder
from repro.sim.simulation import Simulation

CONFIGS = ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim")


@st.composite
def small_training_graph(draw):
    batch = draw(st.integers(min_value=1, max_value=8))
    b = GraphBuilder("equiv-model", batch_size=batch)
    if draw(st.booleans()):
        side = draw(st.sampled_from([4, 8]))
        x = b.input((batch, side, side, draw(st.integers(1, 4))))
        x = b.conv2d(x, draw(st.integers(1, 8)), (3, 3), name="conv0")
        x = b.flatten(x)
    else:
        x = b.input((batch, draw(st.integers(2, 32))))
    for i in range(draw(st.integers(1, 3))):
        x = b.dense(x, draw(st.integers(2, 64)), name=f"fc{i}")
    classes = draw(st.integers(2, 8))
    x = b.dense(x, classes, activation=None, name="logits")
    b.softmax_loss(x, classes)
    return b.finish()


def _run(graph, config_name, steps, faults, engine):
    """One simulation under the given engine ('vector' or 'scalar')."""
    config, policy = build_configuration(config_name)
    prior = os.environ.get("REPRO_ENGINE")
    if engine == "scalar":
        os.environ["REPRO_ENGINE"] = "scalar"
    else:
        os.environ.pop("REPRO_ENGINE", None)
    try:
        return Simulation(
            graph, policy, config=config, steps=steps, faults=faults
        ).run()
    finally:
        if prior is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = prior


@given(
    graph=small_training_graph(),
    config_name=st.sampled_from(CONFIGS),
    steps=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_vectorized_matches_scalar_fault_free(graph, config_name, steps):
    vec = _run(graph, config_name, steps, None, "vector")
    sca = _run(graph, config_name, steps, None, "scalar")
    assert vec.to_json() == sca.to_json()


@given(
    graph=small_training_graph(),
    config_name=st.sampled_from(("fixed-pim", "hetero-pim")),
    fault_seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_events=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_vectorized_matches_scalar_with_faults(
    graph, config_name, fault_seed, n_events
):
    config, _policy = build_configuration(config_name)
    faults = FaultSpec.generate(
        seed=fault_seed,
        horizon_s=0.05,
        n_events=n_events,
        pool_units=config.fixed_pim.n_units,
        prog_pims=config.prog_pim.n_pims,
    )
    vec = _run(graph, config_name, 2, faults, "vector")
    sca = _run(graph, config_name, 2, faults, "scalar")
    assert vec.to_json() == sca.to_json()
