"""Vectorized engine ≡ scalar oracle, swept with Hypothesis.

The vectorized hot path (``repro.sim.optable`` cost table + heap-parking
drain) must be a pure performance transformation: for any graph, policy,
config and fault spec, the full result record — every field, via
canonical JSON — must match the original scalar engine
(``REPRO_ENGINE=scalar``) exactly, not approximately.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import build_configuration
from repro.faults import FaultSpec
from repro.nn.layers import GraphBuilder
from repro.nn.models import build_model
from repro.sim.simulation import Simulation

CONFIGS = ("cpu", "gpu", "prog-pim", "fixed-pim", "hetero-pim")

#: One representative per new workload family (attention / message
#: passing / sparse embedding) — the optable must stay a pure performance
#: transformation over their op vocabulary too.
MODERN_MODELS = ("transformer", "gnn", "embedrec")


@st.composite
def small_training_graph(draw):
    batch = draw(st.integers(min_value=1, max_value=8))
    b = GraphBuilder("equiv-model", batch_size=batch)
    flavor = draw(
        st.sampled_from(("cnn", "mlp", "attention", "gnn", "embedding"))
    )
    if flavor == "cnn":
        side = draw(st.sampled_from([4, 8]))
        x = b.input((batch, side, side, draw(st.integers(1, 4))))
        x = b.conv2d(x, draw(st.integers(1, 8)), (3, 3), name="conv0")
        x = b.flatten(x)
    elif flavor == "attention":
        seq = draw(st.sampled_from([2, 4]))
        dm = draw(st.sampled_from([4, 8]))
        x = b.input((batch * seq, dm))
        q = b.dense(x, dm, activation=None, name="q")
        k = b.dense(x, dm, activation=None, name="k")
        v = b.dense(x, dm, activation=None, name="v")
        qh = b.reshape(q, (batch, seq, dm), name="qh")
        kh = b.reshape(k, (batch, seq, dm), name="kh")
        vh = b.reshape(v, (batch, seq, dm), name="vh")
        scores = b.batch_matmul(qh, kh, transpose_b=True, name="scores")
        weights = b.softmax(scores, name="attn")
        weights = b.dropout(weights, name="attn_drop")
        ctx = b.batch_matmul(weights, vh, name="ctx")
        x = b.reshape(ctx, (batch * seq, dm), name="merge")
        x = b.layer_norm(x, name="ln")
    elif flavor == "gnn":
        nodes = batch * 2
        edges = nodes * draw(st.integers(1, 3))
        feat = draw(st.sampled_from([2, 4]))
        h = b.input((nodes, feat))
        src = b.input((edges,), name="src")
        dst = b.input((edges,), name="dst")
        msgs = b.gather(h, src, name="gather0")
        agg = b.segment_sum(msgs, dst, nodes, name="agg0")
        x = b.concat([h, agg], name="combine")
    elif flavor == "embedding":
        ids = b.input((batch * 2,), name="ids")
        emb = b.embedding_lookup(
            draw(st.sampled_from([16, 64])), 4, ids, name="emb",
            sparse_update=draw(st.booleans()),
        )
        x = b.reshape(emb, (batch, 8), name="pool")
    else:
        x = b.input((batch, draw(st.integers(2, 32))))
    for i in range(draw(st.integers(1, 3))):
        x = b.dense(x, draw(st.integers(2, 64)), name=f"fc{i}")
    classes = draw(st.integers(2, 8))
    x = b.dense(x, classes, activation=None, name="logits")
    b.softmax_loss(x, classes)
    return b.finish()


def _run(graph, config_name, steps, faults, engine):
    """One simulation under the given engine ('vector' or 'scalar')."""
    config, policy = build_configuration(config_name)
    prior = os.environ.get("REPRO_ENGINE")
    if engine == "scalar":
        os.environ["REPRO_ENGINE"] = "scalar"
    else:
        os.environ.pop("REPRO_ENGINE", None)
    try:
        return Simulation(
            graph, policy, config=config, steps=steps, faults=faults
        ).run()
    finally:
        if prior is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = prior


@given(
    graph=small_training_graph(),
    config_name=st.sampled_from(CONFIGS),
    steps=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_vectorized_matches_scalar_fault_free(graph, config_name, steps):
    vec = _run(graph, config_name, steps, None, "vector")
    sca = _run(graph, config_name, steps, None, "scalar")
    assert vec.to_json() == sca.to_json()


@given(
    graph=small_training_graph(),
    config_name=st.sampled_from(("fixed-pim", "hetero-pim")),
    fault_seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_events=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_vectorized_matches_scalar_with_faults(
    graph, config_name, fault_seed, n_events
):
    config, _policy = build_configuration(config_name)
    faults = FaultSpec.generate(
        seed=fault_seed,
        horizon_s=0.05,
        n_events=n_events,
        pool_units=config.fixed_pim.n_units,
        prog_pims=config.prog_pim.n_pims,
    )
    vec = _run(graph, config_name, 2, faults, "vector")
    sca = _run(graph, config_name, 2, faults, "scalar")
    assert vec.to_json() == sca.to_json()


@pytest.mark.parametrize("model", MODERN_MODELS)
@pytest.mark.parametrize("config_name", ("cpu", "hetero-pim"))
def test_modern_zoo_models_match_scalar(model, config_name):
    graph = build_model(model)
    vec = _run(graph, config_name, 1, None, "vector")
    sca = _run(graph, config_name, 1, None, "scalar")
    assert vec.to_json() == sca.to_json()
